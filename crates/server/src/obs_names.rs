//! The service's observability taxonomy: every metric name `spa-server`
//! records into its per-instance registry.
//!
//! Engine-side names (`core.*`, see [`spa_core::obs_names`]) live in the
//! process-global registry; the `metrics` protocol request merges both
//! into one snapshot. The namespaces are disjoint by construction.

/// Counter: submissions answered from the completed-result cache.
pub const CACHE_HITS: &str = "server.cache.hits";
/// Counter: submissions that reserved the cache key and executed.
pub const CACHE_MISSES: &str = "server.cache.misses";
/// Counter: submissions coalesced onto an identical in-flight job
/// (single-flight waits).
pub const CACHE_JOINED: &str = "server.cache.joined";
/// Gauge: jobs currently waiting in the bounded queue.
pub const QUEUE_DEPTH: &str = "server.queue.depth";
/// Timing histogram: wall-clock latency of job execution, dequeue to
/// terminal state.
pub const JOB_LATENCY: &str = "server.job.latency";
/// Counter: completed results recovered from the durable store at
/// startup (snapshot + journal replay).
pub const STORE_REPLAYED: &str = "server.store.replayed";
/// Counter: store files whose unreadable tail (or, on a version
/// mismatch, whole body) was discarded during recovery.
pub const STORE_TRUNCATED: &str = "server.store.truncated";
/// Counter: best-effort durable-store writes (append/compaction) that
/// failed; the in-memory cache still serves the result.
pub const STORE_ERRORS: &str = "server.store.errors";
/// Counter: jobs that aborted with a typed `deadline exceeded` failure.
pub const JOBS_EXPIRED: &str = "server.jobs.expired";
/// Counter: jobs requeued after their worker panicked or hung.
pub const JOBS_REQUEUED: &str = "server.jobs.requeued";
/// Counter: worker threads (re)spawned by the supervisor to replace a
/// dead or hung one.
pub const WORKERS_RESTARTED: &str = "server.workers.restarted";
/// Counter: socket-option failures (`TCP_NODELAY`, read timeout) on
/// accepted connections.
pub const CONN_SOCKOPT_ERRORS: &str = "server.conn.sockopt_errors";
/// Counter: streaming-job checkpoints journaled (one per folded round).
pub const STREAM_CHECKPOINTS: &str = "server.stream.checkpoints";
/// Counter: streaming checkpoints recovered from the checkpoint journal
/// at startup (live, after last-wins and tombstones).
pub const STREAM_RECOVERED: &str = "server.stream.recovered";
/// Counter: streaming jobs seeded from a journaled checkpoint instead
/// of starting their seed stream from scratch.
pub const STREAM_RESUMED: &str = "server.stream.resumed";
