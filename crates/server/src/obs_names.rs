//! The service's observability taxonomy: every metric name `spa-server`
//! records into its per-instance registry.
//!
//! Engine-side names (`core.*`, see [`spa_core::obs_names`]) live in the
//! process-global registry; the `metrics` protocol request merges both
//! into one snapshot. The namespaces are disjoint by construction.

/// Counter: submissions answered from the completed-result cache.
pub const CACHE_HITS: &str = "server.cache.hits";
/// Counter: submissions that reserved the cache key and executed.
pub const CACHE_MISSES: &str = "server.cache.misses";
/// Counter: submissions coalesced onto an identical in-flight job
/// (single-flight waits).
pub const CACHE_JOINED: &str = "server.cache.joined";
/// Gauge: jobs currently waiting in the bounded queue.
pub const QUEUE_DEPTH: &str = "server.queue.depth";
/// Timing histogram: wall-clock latency of job execution, dequeue to
/// terminal state.
pub const JOB_LATENCY: &str = "server.job.latency";
