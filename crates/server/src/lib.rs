#![warn(missing_docs)]

//! # spa-server — a long-running SMC evaluation service
//!
//! `spa-server` turns the SPA pipeline into a service: a daemon that
//! accepts statistical-evaluation jobs over a JSON-lines TCP protocol,
//! schedules them on a bounded worker pool, and answers repeated
//! questions from a content-addressed result cache.
//!
//! The pieces, bottom-up:
//!
//! * [`spec`] — the [`JobSpec`](spec::JobSpec) wire type (benchmark,
//!   system, noise, metric, interval-or-hypothesis mode, `C`/`F`,
//!   seeds) and its [canonical cache key](spec::canonical_key).
//! * [`protocol`] — JSON-lines framing plus the [`Request`] /
//!   [`Response`] message set: submissions stream `accepted →
//!   progress* → report|failed`.
//! * [`cache`] — the single-flight result cache: an identical
//!   submission either hits a completed result, joins the in-flight
//!   job's event stream, or reserves the key and executes.
//! * [`store`] — the crash-safe durable store behind the cache: a
//!   CRC-framed append-only journal plus an atomically-renamed
//!   snapshot, replayed (and truncated at the first corrupt record) on
//!   startup.
//! * [`exec`] — job execution: fault-tolerant simulator sampling
//!   (PR 1's retry machinery), round-partitioned seed streams, the
//!   bias-free parallel hypothesis runner built on
//!   [`spa_core::rounds`], and the anytime-valid streaming runner
//!   built on [`spa_core::seq`] — live interval snapshots every round,
//!   checkpointed for preempt/resume.
//! * [`server`] — the daemon: accept/handler threads, the bounded job
//!   queue with typed backpressure, per-job deadlines and per-client
//!   quotas, a supervisor that requeues jobs whose workers panic or
//!   hang, counters, and drain-then-exit shutdown.
//! * [`chaos`] — seeded fault injection (worker kills and stalls at
//!   round boundaries) for the crash-recovery test suite.
//! * [`client`] — blocking helpers (`submit`/`watch`/`status`/
//!   `shutdown`) the CLI and tests use, with timeouts and bounded
//!   reconnect-with-backoff.
//!
//! # Example
//!
//! ```no_run
//! use spa_server::spec::{JobSpec, ModeSpec};
//! use spa_server::{client, start, ServerConfig};
//! use spa_core::property::Direction;
//!
//! let handle = start(ServerConfig::default()).unwrap();
//! let addr = handle.addr().to_string();
//! let spec = JobSpec::new("blackscholes", ModeSpec::Interval {
//!     direction: Direction::AtMost,
//! });
//! let outcome = client::submit(&addr, &spec, |_event| {}).unwrap();
//! assert!(!outcome.cached);
//! handle.shutdown();
//! ```

pub mod cache;
pub mod chaos;
pub mod client;
mod error;
pub mod exec;
pub mod obs_names;
pub mod protocol;
pub mod server;
pub mod spec;
pub mod store;

pub use error::ServerError;
pub use protocol::{JobResult, MetricsReport, RejectReason, Request, Response, ServerStats};
pub use server::{start, ServerConfig, ServerHandle};
