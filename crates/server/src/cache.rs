//! The content-addressed result cache with single-flight semantics.
//!
//! Keys are canonical job-spec strings ([`crate::spec::canonical_key`]);
//! values are finished [`JobResult`]s. The cache distinguishes a
//! *completed* entry from an *in-flight reservation*: the first
//! submission of a key reserves it and executes; concurrent identical
//! submissions are told which job to join instead of sampling again
//! (single-flight — a key's simulation runs at most once, no matter how
//! many clients race). A failed or cancelled job releases its
//! reservation so a later submission can retry.
//!
//! This layer caches finished *statistics*; the expensive raw
//! *populations* underneath are cached on disk by `spa-bench`'s
//! versioned population cache, which interval jobs consult first — so
//! even a cold result cache (fresh server process) reuses any
//! simulation work a previous process already paid for.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::protocol::JobResult;

#[derive(Debug, Clone)]
enum Entry {
    InFlight { job: u64 },
    Done { result: JobResult },
}

/// What a submission should do with its key.
#[derive(Debug, Clone)]
pub enum Lookup {
    /// Completed result — answer immediately, no sampling.
    Hit(JobResult),
    /// An identical job is executing — subscribe to it.
    Joined {
        /// The in-flight job's id.
        job: u64,
    },
    /// The key is now reserved for the caller's job — execute it.
    Reserved,
}

/// The in-memory result cache.
#[derive(Debug, Default)]
pub struct ResultCache {
    entries: Mutex<HashMap<String, Entry>>,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up `key`; on a miss, atomically reserves it for `job`.
    pub fn lookup_or_reserve(&self, key: &str, job: u64) -> Lookup {
        let mut entries = self.entries.lock();
        match entries.get(key) {
            Some(Entry::Done { result }) => Lookup::Hit(result.clone()),
            Some(Entry::InFlight { job }) => Lookup::Joined { job: *job },
            None => {
                entries.insert(key.to_string(), Entry::InFlight { job });
                Lookup::Reserved
            }
        }
    }

    /// Publishes the finished result under `key`, replacing the
    /// reservation.
    pub fn complete(&self, key: &str, result: JobResult) {
        self.entries
            .lock()
            .insert(key.to_string(), Entry::Done { result });
    }

    /// Releases `key`'s reservation (failed or cancelled job) so a later
    /// submission retries instead of joining a corpse.
    pub fn invalidate(&self, key: &str) {
        self.entries.lock().remove(key);
    }

    /// Seeds the cache with completed results recovered from the durable
    /// store. Later entries win on duplicate keys (journal replay order:
    /// snapshot first, then newer appends), and recovered results never
    /// clobber an in-flight reservation — by the time jobs are running,
    /// startup preload is over anyway.
    pub fn preload(&self, recovered: impl IntoIterator<Item = (String, JobResult)>) {
        let mut entries = self.entries.lock();
        for (key, result) in recovered {
            entries.insert(key, Entry::Done { result });
        }
    }

    /// Snapshot of every completed entry, for durable-store compaction.
    pub fn completed_entries(&self) -> Vec<(String, JobResult)> {
        self.entries
            .lock()
            .iter()
            .filter_map(|(k, e)| match e {
                Entry::Done { result } => Some((k.clone(), result.clone())),
                Entry::InFlight { .. } => None,
            })
            .collect()
    }

    /// Number of completed entries.
    pub fn completed_len(&self) -> usize {
        self.entries
            .lock()
            .values()
            .filter(|e| matches!(e, Entry::Done { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spa_core::rounds::RoundsOutcome;

    fn result(tag: u64) -> JobResult {
        JobResult::Hypothesis {
            outcome: RoundsOutcome {
                outcome: None,
                rounds_used: tag,
                samples_used: tag * 4,
                last_confidence: 0.5,
            },
        }
    }

    #[test]
    fn first_submission_reserves() {
        let cache = ResultCache::new();
        assert!(matches!(cache.lookup_or_reserve("k", 1), Lookup::Reserved));
        // Identical concurrent submission joins job 1 instead of
        // re-reserving.
        match cache.lookup_or_reserve("k", 2) {
            Lookup::Joined { job } => assert_eq!(job, 1),
            other => panic!("{other:?}"),
        }
        // A different key reserves independently.
        assert!(matches!(cache.lookup_or_reserve("k2", 3), Lookup::Reserved));
    }

    #[test]
    fn completion_turns_joins_into_hits() {
        let cache = ResultCache::new();
        assert!(matches!(cache.lookup_or_reserve("k", 1), Lookup::Reserved));
        cache.complete("k", result(7));
        match cache.lookup_or_reserve("k", 2) {
            Lookup::Hit(JobResult::Hypothesis { outcome }) => {
                assert_eq!(outcome.rounds_used, 7);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(cache.completed_len(), 1);
    }

    #[test]
    fn invalidation_allows_retry() {
        let cache = ResultCache::new();
        assert!(matches!(cache.lookup_or_reserve("k", 1), Lookup::Reserved));
        cache.invalidate("k");
        // The failed reservation is gone: the next submission executes.
        assert!(matches!(cache.lookup_or_reserve("k", 2), Lookup::Reserved));
        assert_eq!(cache.completed_len(), 0);
    }

    #[test]
    fn preload_seeds_hits_and_later_duplicates_win() {
        let cache = ResultCache::new();
        cache.preload(vec![
            ("k".to_string(), result(1)),
            ("k2".to_string(), result(2)),
            // Replay order: a newer journal append supersedes the
            // snapshot's copy of the same key.
            ("k".to_string(), result(3)),
        ]);
        assert_eq!(cache.completed_len(), 2);
        match cache.lookup_or_reserve("k", 9) {
            Lookup::Hit(JobResult::Hypothesis { outcome }) => {
                assert_eq!(outcome.rounds_used, 3);
            }
            other => panic!("{other:?}"),
        }
        // Recovered results round-trip byte-identically through the
        // cache: what compaction reads back out is what went in.
        let snapshot = cache.completed_entries();
        let find = |key: &str| {
            serde_json::to_string(&snapshot.iter().find(|(k, _)| k == key).unwrap().1).unwrap()
        };
        assert_eq!(find("k"), serde_json::to_string(&result(3)).unwrap());
        assert_eq!(find("k2"), serde_json::to_string(&result(2)).unwrap());
    }

    #[test]
    fn completed_entries_skip_reservations() {
        let cache = ResultCache::new();
        assert!(matches!(cache.lookup_or_reserve("r", 1), Lookup::Reserved));
        cache.complete("d", result(4));
        let snapshot = cache.completed_entries();
        assert_eq!(snapshot.len(), 1);
        assert_eq!(snapshot[0].0, "d");
    }

    #[test]
    fn concurrent_reservations_are_single_flight() {
        let cache = std::sync::Arc::new(ResultCache::new());
        let mut handles = Vec::new();
        for i in 0..16u64 {
            let cache = cache.clone();
            handles.push(std::thread::spawn(move || {
                matches!(cache.lookup_or_reserve("k", i), Lookup::Reserved)
            }));
        }
        let reserved = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&r| r)
            .count();
        assert_eq!(reserved, 1, "exactly one thread may win the reservation");
    }
}
