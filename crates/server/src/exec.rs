//! Job execution: simulator-backed sampling with fault tolerance,
//! round-partitioned seed streams, and progress reporting.
//!
//! Both job modes consume the same deterministic seed stream
//! `seed_start, seed_start + 1, …`, partitioned into fixed rounds of
//! `round_size` executions ([`spa_core::rounds::round_seeds`]):
//!
//! * **Interval** jobs need a fixed sample count (Eq. 8), so rounds are
//!   just progress-sized chunks; the assembled sample vector is in seed
//!   order and therefore byte-identical to what a direct
//!   [`Spa::run`](spa_core::spa::Spa::run) with the same seeds collects.
//!   A usable population in `spa-bench`'s on-disk cache answers without
//!   simulating at all; a complete, failure-free fresh collection is
//!   stored back into that cache for the next process.
//! * **Hypothesis** jobs run Algorithm 1 under parallelism: worker
//!   threads claim round indices, execute whole rounds, and a shared
//!   [`RoundAggregator`] folds them in index order so the stopping rule
//!   never depends on thread scheduling (Bulychev et al.).
//! * **Streaming** jobs run the anytime-valid engine
//!   ([`spa_core::seq`]): the same round-partitioned seed stream, but
//!   each round's Bernoulli outcomes fold into a time-uniform
//!   confidence sequence, every round emits a live interval snapshot
//!   (over [`ProgressUpdate`]) and a resume checkpoint
//!   ([`ExecContext::on_checkpoint`]), and the job may stop at any
//!   time — width target, sample budget, or deadline — with a valid
//!   interval.
//! * **Property** jobs run the trace-to-verdict pipeline: traced
//!   executions, one STL verdict per trace, and the fixed-sample SMC
//!   test over the verdicts — delegated wholesale to
//!   [`spa_sim::check::run_check`] so the server, CLI, and library
//!   entry points share one code path.
//! * **Band** jobs collect exactly the population an interval job would
//!   (same Eq. 8 count, same seed order, same on-disk population-cache
//!   slot), then build one simultaneous DKW band
//!   ([`spa_core::band`]) and read every requested quantile CI and
//!   CVaR bound off it — a whole-CDF answer for one collection cost.
//!
//! Every execution goes through PR 1's fault machinery: the simulator
//! call is panic-isolated, failures are classified
//! ([`SampleError`](spa_core::fault::SampleError)), and each seed gets
//! `1 + retries` attempts at deterministically derived retry seeds
//! ([`derive_retry_seed`]) — a crashed simulation never kills a worker,
//! and a clean run is byte-identical to an infallible one.

use std::fmt;
use std::ops::Range;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use spa_bench::population::{load_cached, store_cache, Population, PopulationKey};
use spa_core::band::BandReport;
use spa_core::fault::{
    derive_retry_seed, FailureCounts, FallibleSampler, RetryPolicy, SampleBatch, SampleError,
};
use spa_core::min_samples::achievable_confidence;
use spa_core::obs_names;
use spa_core::property::{Direction, MetricProperty};
use spa_core::rounds::{round_seeds, RoundAggregator, RoundsOutcome};
use spa_core::seq::{AnytimeReport, AnytimeRun, Boundary, SeqSnapshot, StopReason};
use spa_core::smc::SmcEngine;
use spa_core::spa::Spa;
use spa_obs::metrics::global;
use spa_sim::batch::batch_map;
use spa_sim::check::run_check;
use spa_sim::machine::Machine;
use spa_sim::metrics::{ExecutionMetrics, Metric};
use spa_sim::pipeline::PropertySemantics;

use crate::protocol::JobResult;
use crate::spec::{ModeSpec, ValidatedJob};

/// A progress snapshot pushed to subscribed clients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressUpdate {
    /// Samples aggregated so far.
    pub samples: u64,
    /// Current Clopper–Pearson bound (see
    /// [`Response::Progress`](crate::protocol::Response::Progress)).
    pub confidence: f64,
    /// Rounds folded so far.
    pub rounds: u64,
    /// For streaming jobs, the anytime-valid interval after this round
    /// (`None` for the fixed-`N` modes).
    pub interval: Option<(f64, f64)>,
}

/// Why a job stopped without a result.
///
/// The typed variants drive server policy — a [`Deadline`] failure
/// counts under `server.jobs.expired` and is never retried, while a
/// cancellation is the server's own doing — and reach clients through
/// the failure message ([`Display`](fmt::Display)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The job's cancel flag was set (shutdown, or the job was requeued
    /// out from under this execution).
    Cancelled,
    /// The job's wall-clock deadline passed at a round boundary.
    Deadline,
    /// Anything else: simulator configuration error, unrecoverable
    /// sampling failure, statistical-engine error.
    Failed(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Cancelled => f.write_str("job cancelled"),
            ExecError::Deadline => f.write_str("deadline exceeded"),
            ExecError::Failed(detail) => f.write_str(detail),
        }
    }
}

impl std::error::Error for ExecError {}

/// Shorthand for the ubiquitous `map_err` into [`ExecError::Failed`].
fn failed(e: impl fmt::Display) -> ExecError {
    ExecError::Failed(e.to_string())
}

/// Execution context a worker hands to [`execute`].
pub struct ExecContext<'a> {
    /// Intra-job sampling threads.
    pub threads: usize,
    /// Set externally to abandon the job between rounds.
    pub cancel: &'a AtomicBool,
    /// Absolute wall-clock deadline, checked at round boundaries.
    pub deadline: Option<Instant>,
    /// Round-boundary hook, called with the round index before the
    /// cancel/deadline checks. The server beats the job's supervision
    /// heartbeat here (and the chaos layer injects faults); tests can
    /// pass `&|_| ()`.
    pub tick: &'a (dyn Fn(u64) + Sync),
    /// Progress sink (invoked between rounds, possibly from multiple
    /// threads — events arrive in aggregation order).
    pub progress: &'a (dyn Fn(ProgressUpdate) + Sync),
    /// Journaled anytime state a streaming job resumes from (`None`
    /// starts fresh; ignored by the fixed-`N` modes).
    pub resume: Option<SeqSnapshot>,
    /// Checkpoint sink for streaming jobs: called with the new
    /// [`SeqSnapshot`] after every folded round, before the progress
    /// event, so the journal is never behind what watchers saw.
    pub on_checkpoint: Option<&'a (dyn Fn(&SeqSnapshot) + Sync)>,
}

impl ExecContext<'_> {
    /// The round-boundary checkpoint: beats the tick hook, then aborts
    /// with a typed error if the job was cancelled or its deadline has
    /// passed. Called before every round (and once up front by modes
    /// without a server-side round loop).
    pub fn checkpoint(&self, round: u64) -> Result<(), ExecError> {
        (self.tick)(round);
        if self.cancel.load(Ordering::Relaxed) {
            return Err(ExecError::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(ExecError::Deadline);
        }
        Ok(())
    }
}

/// The simulator-backed sampler for one job: machine + metric.
///
/// Implements [`FallibleSampler`], so hypothesis rounds run through the
/// same trait PR 1's pipeline uses; interval collection additionally
/// keeps the full [`ExecutionMetrics`] so complete runs can be stored in
/// the population cache.
struct SimSampler<'m, 'w> {
    machine: &'m Machine<'w>,
    metric: Metric,
}

impl SimSampler<'_, '_> {
    /// One panic-isolated simulator execution.
    fn run_metrics(&self, seed: u64) -> Result<ExecutionMetrics, SampleError> {
        match std::panic::catch_unwind(AssertUnwindSafe(|| self.machine.run(seed))) {
            Ok(Ok(run)) => {
                let value = self.metric.extract(&run.metrics);
                if value.is_finite() {
                    Ok(run.metrics)
                } else {
                    Err(SampleError::InvalidMetric { value })
                }
            }
            Ok(Err(e)) => Err(SampleError::Crash {
                message: e.to_string(),
            }),
            Err(_) => Err(SampleError::Crash {
                message: "simulator panicked".into(),
            }),
        }
    }
}

impl FallibleSampler for SimSampler<'_, '_> {
    fn sample(&self, seed: u64) -> Result<f64, SampleError> {
        self.run_metrics(seed).map(|m| self.metric.extract(&m))
    }
}

/// Collects one round of seeds in parallel with per-seed retries.
///
/// An adapter over the sim crate's batch population engine
/// ([`batch_map`]): index `i` maps to the round's `i`-th seed, the
/// retry loop runs inside the per-index work function, and the engine
/// returns rows in index (= seed) order through its bounded channel.
/// Each seed gets up to [`RetryPolicy::max_attempts`] attempts at
/// deterministically derived seeds, so the output depends only on
/// `(attempt, seeds, policy)` — never on thread scheduling. Seeds whose
/// budget is exhausted are dropped and counted.
fn collect_round<T: Send>(
    seeds: Range<u64>,
    threads: usize,
    policy: &RetryPolicy,
    attempt: &(dyn Fn(u64) -> Result<T, SampleError> + Sync),
) -> (Vec<(u64, T)>, FailureCounts) {
    let _span = spa_obs::span!(obs_names::SPAN_COLLECT);
    let seeds: Vec<u64> = seeds.collect();
    global()
        .counter(obs_names::SAMPLES_REQUESTED)
        .add(seeds.len() as u64);
    let failures: Mutex<FailureCounts> = Mutex::new(FailureCounts::default());
    let workers = threads.clamp(1, seeds.len().max(1));
    let collected = batch_map(seeds.len() as u64, workers, |i| {
        let seed = seeds[i as usize];
        let mut local = FailureCounts::default();
        let mut collected = None;
        for k in 0..policy.max_attempts() {
            if k > 0 {
                local.retries += 1;
                let delay = policy.backoff_delay(seed, k);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
            match attempt(derive_retry_seed(seed, k)) {
                Ok(value) => {
                    collected = Some(value);
                    break;
                }
                Err(error) => local.record(&error),
            }
        }
        if collected.is_none() {
            local.abandoned_seeds += 1;
        }
        failures.lock().merge(&local);
        collected.map(|value| (seed, value))
    });
    // Seeds ascend within a round, so index order is seed order;
    // abandoned seeds (`None` slots) drop out here.
    let rows: Vec<(u64, T)> = collected.into_iter().flatten().collect();
    let counts = failures.into_inner();
    let registry = global();
    registry
        .counter(obs_names::SAMPLES_COLLECTED)
        .add(rows.len() as u64);
    registry.counter(obs_names::RETRIES).add(counts.retries);
    registry.counter(obs_names::PANICS).add(counts.crashes);
    (rows, counts)
}

/// Executes a validated job to a result.
///
/// # Errors
///
/// A typed [`ExecError`]: cancellation and deadline expiry are
/// distinguished variants (checked at round boundaries via
/// [`ExecContext::checkpoint`]); everything else — simulator
/// configuration error, unrecoverable sampling failure — carries a
/// human-readable description.
pub fn execute(vjob: &ValidatedJob, ctx: &ExecContext<'_>) -> Result<JobResult, ExecError> {
    let spec = &vjob.spec;
    let spa = Spa::builder()
        .confidence(spec.confidence)
        .proportion(spec.proportion)
        .batch_size(ctx.threads)
        .build()
        .map_err(failed)?;
    let policy = RetryPolicy::new(spec.retries.saturating_add(1));
    let workload = vjob.benchmark.workload();
    // Property jobs need per-run signal traces; the scalar modes keep
    // trace collection off so their executions (and caches) are
    // untouched by the pipeline work.
    let config = match &spec.mode {
        ModeSpec::Property { .. } => spec.system.variant().config().with_trace(),
        ModeSpec::Interval { .. }
        | ModeSpec::Hypothesis { .. }
        | ModeSpec::Streaming { .. }
        | ModeSpec::Band { .. } => spec.system.variant().config(),
    };
    let machine = Machine::new(config, &workload)
        .map_err(failed)?
        .with_variability(spec.noise.model().variability());
    let sampler = SimSampler {
        machine: &machine,
        metric: vjob.metric,
    };
    match &spec.mode {
        ModeSpec::Interval { direction } => {
            run_interval(vjob, ctx, &spa, &policy, &sampler, *direction)
        }
        ModeSpec::Hypothesis {
            direction,
            threshold,
            max_rounds,
        } => run_hypothesis(
            vjob,
            ctx,
            &policy,
            &sampler,
            MetricProperty::new(*direction, *threshold),
            *max_rounds,
        ),
        ModeSpec::Property { robustness, .. } => {
            run_property(vjob, ctx, &spa, &policy, &machine, *robustness)
        }
        ModeSpec::Streaming {
            direction,
            threshold,
            boundary,
            target_width,
            max_samples,
        } => run_streaming(
            vjob,
            ctx,
            &policy,
            &sampler,
            MetricProperty::new(*direction, *threshold),
            *boundary,
            *target_width,
            *max_samples,
        ),
        ModeSpec::Band {
            quantiles,
            cvar_alpha,
        } => run_band(vjob, ctx, &spa, &policy, &sampler, quantiles, *cvar_alpha),
    }
}

/// The confidence `n` collected samples can support, capped at the
/// requested level — the progress bound for interval jobs.
fn interval_bound(collected: u64, requested: f64, proportion: f64) -> f64 {
    if collected == 0 {
        return 0.0;
    }
    achievable_confidence(collected, proportion)
        .map(|c| c.min(requested))
        .unwrap_or(0.0)
}

fn run_interval(
    vjob: &ValidatedJob,
    ctx: &ExecContext<'_>,
    spa: &Spa,
    policy: &RetryPolicy,
    sampler: &SimSampler<'_, '_>,
    direction: Direction,
) -> Result<JobResult, ExecError> {
    let spec = &vjob.spec;
    let total = spa.required_samples();
    let rounds = total.div_ceil(spec.round_size);
    let key = PopulationKey {
        benchmark: vjob.benchmark,
        system: spec.system.variant(),
        noise: spec.noise.model(),
        count: total as usize,
        seed_start: spec.seed_start,
    };

    // Fast path: a previous process already simulated exactly this
    // population — answer from the versioned on-disk cache. Cache
    // *errors* (corrupt/stale files) fall through to regeneration.
    if let Ok(Some(pop)) = load_cached(key) {
        (ctx.progress)(ProgressUpdate {
            samples: total,
            confidence: spec.confidence,
            rounds,
            interval: None,
        });
        let batch = SampleBatch {
            samples: pop.metric(vjob.metric),
            failures: FailureCounts::default(),
            requested: total,
        };
        let report = spa.report_from_batch(batch, direction).map_err(failed)?;
        return Ok(JobResult::Interval { report });
    }

    // Fail fast if the final round would run the seed stream past
    // u64::MAX; rounds below can then unwrap safely.
    round_seeds(spec.seed_start, rounds - 1, spec.round_size).map_err(failed)?;

    // Not preallocated to `total`: a huge-C job may be cancelled after a
    // handful of rounds.
    let mut rows: Vec<(u64, ExecutionMetrics)> = Vec::new();
    let mut failures = FailureCounts::default();
    for r in 0..rounds {
        ctx.checkpoint(r)?;
        let all = round_seeds(spec.seed_start, r, spec.round_size)
            .expect("r < rounds was range-checked above");
        let seeds = all.start..all.end.min(spec.seed_start + total);
        let (chunk, counts) = collect_round(seeds, ctx.threads, policy, &|seed| {
            sampler.run_metrics(seed)
        });
        failures.merge(&counts);
        rows.extend(chunk);
        (ctx.progress)(ProgressUpdate {
            samples: rows.len() as u64,
            confidence: interval_bound(rows.len() as u64, spec.confidence, spec.proportion),
            rounds: r + 1,
            interval: None,
        });
    }

    // Rounds were collected in index order and each round is sorted by
    // seed, so `rows` is globally in seed order. A complete, clean
    // collection is exactly the population a figure harness would have
    // simulated — share it through the disk cache (best-effort).
    if rows.len() as u64 == total && failures.is_clean() {
        let population = Population {
            key,
            runs: rows.iter().map(|&(_, m)| m).collect(),
        };
        let _ = store_cache(&population);
    }

    let batch = SampleBatch {
        samples: rows.iter().map(|(_, m)| vjob.metric.extract(m)).collect(),
        failures,
        requested: total,
    };
    let report = spa.report_from_batch(batch, direction).map_err(failed)?;
    Ok(JobResult::Interval { report })
}

/// Executes a band-mode job: the interval mode's collection loop (same
/// Eq. 8 sample count, same round-partitioned seed stream, same
/// population-cache slot — a spec whose interval population is already
/// on disk never re-simulates) followed by one DKW band construction
/// answering every requested quantile and CVaR query at once.
///
/// The collection is seed-ordered and the quantile list is
/// canonicalized inside [`BandReport::from_batch`], so the report is
/// byte-identical across thread counts *and* across respelled quantile
/// lists.
fn run_band(
    vjob: &ValidatedJob,
    ctx: &ExecContext<'_>,
    spa: &Spa,
    policy: &RetryPolicy,
    sampler: &SimSampler<'_, '_>,
    quantiles: &[f64],
    cvar_alpha: Option<f64>,
) -> Result<JobResult, ExecError> {
    let spec = &vjob.spec;
    let total = spa.required_samples();
    let rounds = total.div_ceil(spec.round_size);
    let key = PopulationKey {
        benchmark: vjob.benchmark,
        system: spec.system.variant(),
        noise: spec.noise.model(),
        count: total as usize,
        seed_start: spec.seed_start,
    };

    // Fast path: reuse the on-disk population an interval job (or a
    // figure harness) already simulated for this exact spec.
    if let Ok(Some(pop)) = load_cached(key) {
        (ctx.progress)(ProgressUpdate {
            samples: total,
            confidence: spec.confidence,
            rounds,
            interval: None,
        });
        let batch = SampleBatch {
            samples: pop.metric(vjob.metric),
            failures: FailureCounts::default(),
            requested: total,
        };
        let report = BandReport::from_batch(&batch, spec.confidence, quantiles, cvar_alpha)
            .map_err(failed)?;
        return Ok(JobResult::Band { report });
    }

    // Fail fast if the final round would run the seed stream past
    // u64::MAX; rounds below can then unwrap safely.
    round_seeds(spec.seed_start, rounds - 1, spec.round_size).map_err(failed)?;

    let mut rows: Vec<(u64, ExecutionMetrics)> = Vec::new();
    let mut failures = FailureCounts::default();
    for r in 0..rounds {
        ctx.checkpoint(r)?;
        let all = round_seeds(spec.seed_start, r, spec.round_size)
            .expect("r < rounds was range-checked above");
        let seeds = all.start..all.end.min(spec.seed_start + total);
        let (chunk, counts) = collect_round(seeds, ctx.threads, policy, &|seed| {
            sampler.run_metrics(seed)
        });
        failures.merge(&counts);
        rows.extend(chunk);
        (ctx.progress)(ProgressUpdate {
            samples: rows.len() as u64,
            confidence: interval_bound(rows.len() as u64, spec.confidence, spec.proportion),
            rounds: r + 1,
            interval: None,
        });
    }

    // Same sharing rule as interval jobs: a complete, clean collection
    // is the population itself — store it for the next process.
    if rows.len() as u64 == total && failures.is_clean() {
        let population = Population {
            key,
            runs: rows.iter().map(|&(_, m)| m).collect(),
        };
        let _ = store_cache(&population);
    }

    let batch = SampleBatch {
        samples: rows.iter().map(|(_, m)| vjob.metric.extract(m)).collect(),
        failures,
        requested: total,
    };
    let report =
        BandReport::from_batch(&batch, spec.confidence, quantiles, cvar_alpha).map_err(failed)?;
    Ok(JobResult::Band { report })
}

/// Executes a property-mode job: a thin wrapper over the library's
/// [`run_check`], so the server's verdict is identical to what the CLI
/// and a direct library call produce for the same seed stream (the
/// `Spa` was built with `batch_size = ctx.threads`, and `run_check`'s
/// collection is index-deterministic, so the thread count never changes
/// the report).
///
/// Property populations are traced executions, not `ExecutionMetrics`
/// rows, so the on-disk population cache is bypassed; the server's
/// result cache still keys the finished report by the spec's canonical
/// formula rendering.
fn run_property(
    vjob: &ValidatedJob,
    ctx: &ExecContext<'_>,
    spa: &Spa,
    policy: &RetryPolicy,
    machine: &Machine<'_>,
    robustness: bool,
) -> Result<JobResult, ExecError> {
    let spec = &vjob.spec;
    // Property collection is delegated wholesale, so the one checkpoint
    // runs up front (heartbeat, cancel, deadline).
    ctx.checkpoint(0)?;
    let formula = vjob
        .property
        .as_ref()
        .ok_or_else(|| failed("property job without a validated formula"))?;
    let semantics = if robustness {
        PropertySemantics::Robustness
    } else {
        PropertySemantics::Boolean
    };
    let report = run_check(
        machine,
        formula,
        semantics,
        spa,
        spec.seed_start,
        None,
        policy,
    )
    .map_err(failed)?;
    (ctx.progress)(ProgressUpdate {
        samples: report.evaluated,
        confidence: interval_bound(report.evaluated, spec.confidence, spec.proportion),
        rounds: report.evaluated.div_ceil(spec.round_size.max(1)),
        interval: None,
    });
    Ok(JobResult::Property { report })
}

fn run_hypothesis(
    vjob: &ValidatedJob,
    ctx: &ExecContext<'_>,
    policy: &RetryPolicy,
    sampler: &SimSampler<'_, '_>,
    property: MetricProperty,
    max_rounds: u64,
) -> Result<JobResult, ExecError> {
    let spec = &vjob.spec;
    let engine = SmcEngine::new(spec.confidence, spec.proportion).map_err(failed)?;
    // Fail fast on seed-stream exhaustion instead of wrapping mid-run.
    round_seeds(
        spec.seed_start,
        max_rounds.saturating_sub(1),
        spec.round_size,
    )
    .map_err(failed)?;
    let aggregator = Mutex::new(RoundAggregator::new(engine, spec.round_size).map_err(failed)?);
    let next = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let aborted: Mutex<Option<ExecError>> = Mutex::new(None);
    let error: Mutex<Option<String>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..ctx.threads.max(1) {
            scope.spawn(|| loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let r = next.fetch_add(1, Ordering::Relaxed);
                if r >= max_rounds {
                    break;
                }
                // Round-boundary checkpoint: heartbeat + cancel +
                // deadline, on whichever thread claimed the round.
                if let Err(e) = ctx.checkpoint(r) {
                    *aborted.lock() = Some(e);
                    stop.store(true, Ordering::Relaxed);
                    break;
                }
                let seeds = round_seeds(spec.seed_start, r, spec.round_size)
                    .expect("r < max_rounds was range-checked above");
                // Round-level parallelism: each worker runs its round's
                // seeds itself (single-threaded within the round).
                let (chunk, counts) = collect_round(seeds, 1, policy, &|seed| sampler.sample(seed));
                if (chunk.len() as u64) < spec.round_size {
                    *error.lock() = Some(format!(
                        "round {r}: {} of {} executions failed permanently ({counts})",
                        spec.round_size - chunk.len() as u64,
                        spec.round_size,
                    ));
                    stop.store(true, Ordering::Relaxed);
                    break;
                }
                let outcomes: Vec<bool> = chunk
                    .iter()
                    .map(|&(_, value)| property.satisfies(value))
                    .collect();
                // Progress is emitted under the aggregator lock so the
                // event stream is monotone in folded rounds.
                let mut agg = aggregator.lock();
                match agg.submit(r, outcomes) {
                    Ok(concluded) => {
                        (ctx.progress)(ProgressUpdate {
                            samples: agg.samples_seen(),
                            confidence: agg.current_confidence(),
                            rounds: agg.rounds_folded(),
                            interval: None,
                        });
                        if concluded.is_some() {
                            stop.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                    Err(e) => {
                        *error.lock() = Some(e.to_string());
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            });
        }
    });
    if let Some(e) = aborted.into_inner() {
        return Err(e);
    }
    // Workers that all exhausted `max_rounds` before a late cancel never
    // hit a checkpoint — honour the flag here too.
    if ctx.cancel.load(Ordering::Relaxed) {
        return Err(ExecError::Cancelled);
    }
    if let Some(e) = error.into_inner() {
        return Err(ExecError::Failed(e));
    }
    let agg = aggregator.into_inner();
    Ok(JobResult::Hypothesis {
        outcome: RoundsOutcome {
            outcome: agg.outcome().copied(),
            rounds_used: agg.rounds_folded(),
            samples_used: agg.samples_seen(),
            last_confidence: agg.current_confidence(),
        },
    })
}

/// Executes a streaming (anytime-valid) job: rounds of parallel
/// sampling folded into a running confidence sequence
/// ([`AnytimeRun`]), with a checkpoint and a live interval snapshot
/// after every round.
///
/// A resume state in [`ExecContext::resume`] continues the
/// deterministic seed stream at `seed_start + n`, so a resumed run
/// draws exactly the seeds the uninterrupted run would have drawn —
/// resumption introduces no bias. A deadline expiring mid-stream is
/// *not* a failure here: the current interval is valid at any stopping
/// time, so the job completes with [`StopReason::Deadline`] and its
/// interval so far.
#[allow(clippy::too_many_arguments)]
fn run_streaming(
    vjob: &ValidatedJob,
    ctx: &ExecContext<'_>,
    policy: &RetryPolicy,
    sampler: &SimSampler<'_, '_>,
    property: MetricProperty,
    boundary: Boundary,
    target_width: Option<f64>,
    max_samples: u64,
) -> Result<JobResult, ExecError> {
    let spec = &vjob.spec;
    let sequence = boundary.sequence(spec.confidence).map_err(failed)?;
    let mut run = match ctx.resume {
        Some(state) => AnytimeRun::resume(sequence, state).map_err(failed)?,
        None => AnytimeRun::new(sequence),
    };
    // Fail fast if the stream could run the seed space past u64::MAX;
    // the per-round arithmetic below then stays in range.
    spec.seed_start
        .checked_add(max_samples)
        .ok_or_else(|| failed("seed stream exhausted: seed_start + max_samples overflows"))?;
    let mut failures = FailureCounts::default();
    let stop = loop {
        if let Some(width) = target_width {
            if run.reached(width) {
                global().counter(obs_names::SEQ_EARLY_STOPS).incr();
                break StopReason::TargetWidth;
            }
        }
        if run.samples() >= max_samples {
            break StopReason::MaxSamples;
        }
        let round = run.samples() / spec.round_size;
        match ctx.checkpoint(round) {
            Ok(()) => {}
            // The interval is valid at any stopping time, so an
            // expiring job reports what it has instead of failing.
            Err(ExecError::Deadline) => break StopReason::Deadline,
            Err(e) => return Err(e),
        }
        let take = spec.round_size.min(max_samples - run.samples());
        let first = spec.seed_start + run.samples();
        let (chunk, counts) = collect_round(first..first + take, ctx.threads, policy, &|seed| {
            sampler.sample(seed)
        });
        failures.merge(&counts);
        if (chunk.len() as u64) < take {
            // A permanently missing observation would desynchronize the
            // seed↔index correspondence that bias-free resume relies on.
            return Err(ExecError::Failed(format!(
                "round {round}: {} of {take} executions failed permanently ({counts})",
                take - chunk.len() as u64,
            )));
        }
        let outcomes: Vec<bool> = chunk
            .iter()
            .map(|&(_, value)| property.satisfies(value))
            .collect();
        let snapshot = run.observe(&outcomes);
        // Journal before announcing: the checkpoint is never behind
        // what a watcher saw.
        if let Some(sink) = ctx.on_checkpoint {
            sink(&snapshot);
        }
        (ctx.progress)(ProgressUpdate {
            samples: snapshot.n,
            confidence: spec.confidence,
            rounds: snapshot.n.div_ceil(spec.round_size),
            interval: Some((snapshot.lower, snapshot.upper)),
        });
    };
    let state = run.snapshot();
    Ok(JobResult::Streaming {
        report: AnytimeReport {
            boundary,
            confidence: spec.confidence,
            samples: state.n,
            successes: state.successes,
            lower: state.lower,
            upper: state.upper,
            stop,
            failures,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{validate, JobSpec, ModeSpec, NoiseSpec};

    fn ctx<'a>(
        cancel: &'a AtomicBool,
        progress: &'a (dyn Fn(ProgressUpdate) + Sync),
    ) -> ExecContext<'a> {
        ExecContext {
            threads: 2,
            cancel,
            deadline: None,
            tick: &|_| (),
            progress,
            resume: None,
            on_checkpoint: None,
        }
    }

    #[test]
    fn collect_round_is_deterministic_across_thread_counts() {
        let policy = RetryPolicy::no_retry();
        let attempt = |seed: u64| -> Result<u64, SampleError> { Ok(seed * 3) };
        let (one, f1) = collect_round(10..18, 1, &policy, &attempt);
        let (four, f4) = collect_round(10..18, 4, &policy, &attempt);
        assert_eq!(one, four);
        assert_eq!(one.len(), 8);
        assert!(one.windows(2).all(|w| w[0].0 < w[1].0), "sorted by seed");
        assert!(f1.is_clean() && f4.is_clean());
    }

    #[test]
    fn collect_round_retries_and_abandons() {
        // Attempt 0 fails for every even base seed; the derived retry
        // seed (attempt 1) is accepted, identifying itself by value.
        let policy = RetryPolicy::new(2);
        let attempt = |seed: u64| -> Result<u64, SampleError> {
            if seed % 2 == 0 {
                Err(SampleError::Timeout)
            } else {
                Ok(seed)
            }
        };
        let (rows, counts) = collect_round(0..4, 2, &policy, &attempt);
        // Odd base seeds succeed at attempt 0; even base seeds succeed
        // at attempt 1 only if their derived seed is odd.
        for &(base, value) in &rows {
            let expected = if base % 2 == 1 {
                base
            } else {
                derive_retry_seed(base, 1)
            };
            assert_eq!(value, expected);
        }
        assert!(counts.timeouts >= 2, "{counts}");
        assert_eq!(
            rows.len() as u64 + counts.abandoned_seeds,
            4,
            "every seed is either collected or abandoned"
        );
    }

    #[test]
    fn interval_job_reports_and_streams_progress() {
        let spec = JobSpec {
            noise: NoiseSpec::Jitter { max_cycles: 0 },
            seed_start: 77_000, // avoid colliding with population-cache tests
            round_size: 8,
            ..JobSpec::new(
                "blackscholes",
                ModeSpec::Interval {
                    direction: Direction::AtMost,
                },
            )
        };
        let vjob = validate(spec).unwrap();
        let cancel = AtomicBool::new(false);
        let events: Mutex<Vec<ProgressUpdate>> = Mutex::new(Vec::new());
        let progress = |u: ProgressUpdate| events.lock().push(u);
        let result = execute(&vjob, &ctx(&cancel, &progress)).unwrap();
        let JobResult::Interval { report } = result else {
            panic!("interval job must return an interval result");
        };
        assert_eq!(report.samples.len(), 22);
        assert!(!report.degraded);
        assert!(report.failures.is_clean());
        let events = events.into_inner();
        assert!(!events.is_empty());
        let last = events.last().unwrap();
        assert_eq!(last.samples, 22);
        assert_eq!(last.confidence, 0.9);
    }

    #[test]
    fn interval_job_matches_direct_spa_run() {
        let spec = JobSpec {
            noise: NoiseSpec::Jitter { max_cycles: 2 },
            seed_start: 77_100,
            round_size: 5, // uneven final round exercises the chunk clamp
            ..JobSpec::new(
                "blackscholes",
                ModeSpec::Interval {
                    direction: Direction::AtMost,
                },
            )
        };
        let vjob = validate(spec.clone()).unwrap();
        let cancel = AtomicBool::new(false);
        let progress = |_: ProgressUpdate| {};
        let result = execute(&vjob, &ctx(&cancel, &progress)).unwrap();
        let JobResult::Interval { report } = result else {
            panic!("interval job must return an interval result");
        };

        // Direct Spa::run over the same machine and seed stream.
        let workload = vjob.benchmark.workload();
        let machine = Machine::new(spec.system.variant().config(), &workload)
            .unwrap()
            .with_variability(spec.noise.model().variability());
        let metric = vjob.metric;
        let sampler = move |seed: u64| metric.extract(&machine.run(seed).unwrap().metrics);
        let spa = Spa::builder()
            .confidence(spec.confidence)
            .proportion(spec.proportion)
            .build()
            .unwrap();
        let direct = spa
            .run(&sampler, spec.seed_start, Direction::AtMost)
            .unwrap();
        assert_eq!(report, direct);
    }

    fn band_job(seed_start: u64, quantiles: &[f64], cvar_alpha: Option<f64>) -> JobSpec {
        JobSpec {
            noise: NoiseSpec::Jitter { max_cycles: 2 },
            seed_start,
            round_size: 5, // uneven final round exercises the chunk clamp
            ..JobSpec::new(
                "blackscholes",
                ModeSpec::Band {
                    quantiles: quantiles.to_vec(),
                    cvar_alpha,
                },
            )
        }
    }

    #[test]
    fn band_job_matches_direct_report_over_the_same_seed_stream() {
        let spec = band_job(78_000, &[0.5, 0.9], Some(0.9));
        let vjob = validate(spec.clone()).unwrap();
        let cancel = AtomicBool::new(false);
        let progress = |_: ProgressUpdate| {};
        let result = execute(&vjob, &ctx(&cancel, &progress)).unwrap();
        let JobResult::Band { report } = result else {
            panic!("band job must return a band result");
        };
        assert_eq!(report.samples, 22);
        assert_eq!(report.requested, 22);
        assert!(report.failures.is_clean());
        assert_eq!(report.quantiles.len(), 2);
        assert!(report.cvar.is_some());

        // Direct collection over the same machine and seed stream.
        let workload = vjob.benchmark.workload();
        let machine = Machine::new(spec.system.variant().config(), &workload)
            .unwrap()
            .with_variability(spec.noise.model().variability());
        let samples: Vec<f64> = (spec.seed_start..spec.seed_start + 22)
            .map(|seed| vjob.metric.extract(&machine.run(seed).unwrap().metrics))
            .collect();
        let direct = BandReport::from_samples(&samples, 0.9, &[0.5, 0.9], Some(0.9)).unwrap();
        assert_eq!(report, direct);
    }

    #[test]
    fn band_job_is_byte_identical_across_thread_counts_and_spellings() {
        let run = |threads: usize, quantiles: &[f64]| -> Vec<u8> {
            let vjob = validate(band_job(78_100, quantiles, Some(0.95))).unwrap();
            let cancel = AtomicBool::new(false);
            let progress = |_: ProgressUpdate| {};
            let context = ExecContext {
                threads,
                cancel: &cancel,
                deadline: None,
                tick: &|_| (),
                progress: &progress,
                resume: None,
                on_checkpoint: None,
            };
            let result = execute(&vjob, &context).unwrap();
            let JobResult::Band { report } = result else {
                panic!("band job must return a band result");
            };
            serde_json::to_vec(&report).unwrap()
        };
        let one = run(1, &[0.5, 0.9]);
        assert_eq!(one, run(4, &[0.5, 0.9]), "thread count must not leak");
        assert_eq!(
            one,
            run(2, &[0.9, 0.5, 0.50]),
            "respelled quantile lists must render identically"
        );
    }

    #[test]
    fn cancelled_interval_job_fails_typed() {
        let spec = JobSpec {
            noise: NoiseSpec::Jitter { max_cycles: 0 },
            seed_start: 77_200,
            round_size: 1,
            ..JobSpec::new(
                "blackscholes",
                ModeSpec::Interval {
                    direction: Direction::AtMost,
                },
            )
        };
        let vjob = validate(spec).unwrap();
        let cancel = AtomicBool::new(true); // cancelled before the first round
        let progress = |_: ProgressUpdate| {};
        let err = execute(&vjob, &ctx(&cancel, &progress)).unwrap_err();
        assert_eq!(err, ExecError::Cancelled);
        assert!(err.to_string().contains("cancelled"), "{err}");
    }

    #[test]
    fn expired_deadline_fails_typed_and_ticks_each_round() {
        let spec = JobSpec {
            noise: NoiseSpec::Jitter { max_cycles: 0 },
            seed_start: 77_600,
            round_size: 1,
            ..JobSpec::new(
                "blackscholes",
                ModeSpec::Interval {
                    direction: Direction::AtMost,
                },
            )
        };
        let vjob = validate(spec).unwrap();
        let cancel = AtomicBool::new(false);
        let progress = |_: ProgressUpdate| {};
        let ticks = AtomicU64::new(0);
        let tick = |_round: u64| {
            ticks.fetch_add(1, Ordering::Relaxed);
        };
        // A deadline already in the past fails the first checkpoint —
        // but the tick (heartbeat) still fires before the check.
        let c = ExecContext {
            threads: 2,
            cancel: &cancel,
            deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
            tick: &tick,
            progress: &progress,
            resume: None,
            on_checkpoint: None,
        };
        let err = execute(&vjob, &c).unwrap_err();
        assert_eq!(err, ExecError::Deadline);
        assert!(err.to_string().contains("deadline"), "{err}");
        assert_eq!(ticks.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn property_job_checks_traces_end_to_end() {
        let spec = JobSpec {
            noise: NoiseSpec::Jitter { max_cycles: 0 },
            seed_start: 77_400,
            proportion: 0.5, // Eq. 8 minimum drops to 4 executions
            mode: ModeSpec::Property {
                formula: "G[0,end] (occupancy >= 0)".into(),
                robustness: false,
            },
            ..JobSpec::new(
                "blackscholes",
                ModeSpec::Interval {
                    direction: Direction::AtMost,
                },
            )
        };
        let vjob = validate(spec).unwrap();
        let cancel = AtomicBool::new(false);
        let events: Mutex<Vec<ProgressUpdate>> = Mutex::new(Vec::new());
        let progress = |u: ProgressUpdate| events.lock().push(u);
        let result = execute(&vjob, &ctx(&cancel, &progress)).unwrap();
        let JobResult::Property { report } = result else {
            panic!("property job must return a property result");
        };
        assert_eq!(report.evaluated, report.requested);
        assert_eq!(report.satisfied, report.evaluated, "trivially true");
        assert!(report.outcome.assertion.is_some());
        assert!(report.failures.is_clean());
        // The report carries the canonical formula spelling, not the
        // submitted one.
        let canonical = spa_stl::parser::parse("G[0,end] (occupancy >= 0)")
            .unwrap()
            .to_string();
        assert_eq!(report.formula, canonical);
        let events = events.into_inner();
        assert!(!events.is_empty());
        assert_eq!(events.last().unwrap().samples, report.evaluated);
    }

    #[test]
    fn property_job_is_identical_across_thread_counts() {
        let make = |threads: usize| {
            let spec = JobSpec {
                noise: NoiseSpec::Jitter { max_cycles: 2 },
                seed_start: 77_500,
                proportion: 0.5,
                mode: ModeSpec::Property {
                    formula: "F[0,end] (ipc > 0.1)".into(),
                    robustness: true,
                },
                ..JobSpec::new(
                    "blackscholes",
                    ModeSpec::Interval {
                        direction: Direction::AtMost,
                    },
                )
            };
            let vjob = validate(spec).unwrap();
            let cancel = AtomicBool::new(false);
            let progress = |_: ProgressUpdate| {};
            let c = ExecContext {
                threads,
                cancel: &cancel,
                deadline: None,
                tick: &|_| (),
                progress: &progress,
                resume: None,
                on_checkpoint: None,
            };
            execute(&vjob, &c).unwrap()
        };
        let JobResult::Property { report: a } = make(1) else {
            panic!("property job must return a property result");
        };
        let JobResult::Property { report: b } = make(4) else {
            panic!("property job must return a property result");
        };
        assert_eq!(a, b, "thread count must not change the verdict");
        assert!(a.robustness);
        assert!(a.robustness_interval.is_some());
    }

    #[test]
    fn hypothesis_job_concludes_and_is_deterministic() {
        let make = |threads: usize| {
            let spec = JobSpec {
                noise: NoiseSpec::Jitter { max_cycles: 0 },
                seed_start: 77_300,
                round_size: 4,
                mode: ModeSpec::Hypothesis {
                    direction: Direction::AtMost,
                    // Generous threshold: runtime is always positive and
                    // far below 1e6 seconds, so every sample satisfies
                    // and Algorithm 1 converges positive at the first
                    // boundary past 22.
                    threshold: 1e6,
                    max_rounds: 64,
                },
                ..JobSpec::new(
                    "blackscholes",
                    ModeSpec::Interval {
                        direction: Direction::AtMost,
                    },
                )
            };
            let vjob = validate(spec).unwrap();
            let cancel = AtomicBool::new(false);
            let progress = |_: ProgressUpdate| {};
            let c = ExecContext {
                threads,
                cancel: &cancel,
                deadline: None,
                tick: &|_| (),
                progress: &progress,
                resume: None,
                on_checkpoint: None,
            };
            execute(&vjob, &c).unwrap()
        };
        let JobResult::Hypothesis { outcome: a } = make(1) else {
            panic!("hypothesis job must return a hypothesis result");
        };
        let JobResult::Hypothesis { outcome: b } = make(4) else {
            panic!("hypothesis job must return a hypothesis result");
        };
        // All-true stream: 22 needed, rounds of 4 ⇒ concluded at 24.
        let concluded = a.outcome.expect("must converge");
        assert_eq!(concluded.samples_used, 24);
        assert!(concluded.achieved_confidence >= 0.9);
        // The verdict is identical across worker counts (bias-free
        // round aggregation).
        assert_eq!(a, b);
    }

    fn streaming_spec(seed_start: u64, target_width: Option<f64>, max_samples: u64) -> JobSpec {
        JobSpec {
            noise: NoiseSpec::Jitter { max_cycles: 0 },
            seed_start,
            round_size: 8,
            mode: ModeSpec::Streaming {
                direction: Direction::AtMost,
                // Runtime is always far below 1e6 seconds, so every
                // outcome is a success — fast, deterministic shrink.
                threshold: 1e6,
                boundary: Boundary::Betting,
                target_width,
                max_samples,
            },
            ..JobSpec::new(
                "blackscholes",
                ModeSpec::Interval {
                    direction: Direction::AtMost,
                },
            )
        }
    }

    #[test]
    fn streaming_job_shrinks_monotonically_to_the_budget() {
        let vjob = validate(streaming_spec(77_700, None, 48)).unwrap();
        let cancel = AtomicBool::new(false);
        let events: Mutex<Vec<ProgressUpdate>> = Mutex::new(Vec::new());
        let progress = |u: ProgressUpdate| events.lock().push(u);
        let result = execute(&vjob, &ctx(&cancel, &progress)).unwrap();
        let JobResult::Streaming { report } = result else {
            panic!("streaming job must return a streaming result");
        };
        assert_eq!(report.stop, StopReason::MaxSamples);
        assert_eq!(report.samples, 48);
        assert_eq!(report.successes, 48);
        assert!(report.failures.is_clean());
        let events = events.into_inner();
        assert_eq!(events.len(), 6, "one update per round of 8");
        for pair in events.windows(2) {
            let (a_lo, a_hi) = pair[0]
                .interval
                .expect("streaming progress carries an interval");
            let (b_lo, b_hi) = pair[1]
                .interval
                .expect("streaming progress carries an interval");
            assert!(
                b_lo >= a_lo && b_hi <= a_hi,
                "intervals must shrink monotonically"
            );
        }
        let (lo, hi) = events.last().unwrap().interval.unwrap();
        assert_eq!((lo, hi), (report.lower, report.upper));
    }

    #[test]
    fn streaming_job_early_stops_at_the_width_target() {
        let vjob = validate(streaming_spec(77_800, Some(0.5), 4096)).unwrap();
        let cancel = AtomicBool::new(false);
        let progress = |_: ProgressUpdate| {};
        let result = execute(&vjob, &ctx(&cancel, &progress)).unwrap();
        let JobResult::Streaming { report } = result else {
            panic!("streaming job must return a streaming result");
        };
        assert_eq!(report.stop, StopReason::TargetWidth);
        assert!(report.width() <= 0.5);
        assert!(
            report.samples < 100,
            "an all-success stream early-stops fast, used {}",
            report.samples
        );
    }

    #[test]
    fn streaming_resume_matches_the_uninterrupted_run() {
        let spec = streaming_spec(77_900, None, 48);
        let cancel = AtomicBool::new(false);
        let progress = |_: ProgressUpdate| {};

        // Uninterrupted reference, capturing every checkpoint.
        let vjob = validate(spec.clone()).unwrap();
        let checkpoints: Mutex<Vec<SeqSnapshot>> = Mutex::new(Vec::new());
        let sink = |s: &SeqSnapshot| checkpoints.lock().push(*s);
        let c = ExecContext {
            threads: 2,
            cancel: &cancel,
            deadline: None,
            tick: &|_| (),
            progress: &progress,
            resume: None,
            on_checkpoint: Some(&sink),
        };
        let JobResult::Streaming { report: reference } = execute(&vjob, &c).unwrap() else {
            panic!("streaming job must return a streaming result");
        };
        let checkpoints = checkpoints.into_inner();
        assert_eq!(checkpoints.len(), 6);
        assert_eq!(checkpoints.last().unwrap().n, 48);

        // Resume from the round-3 checkpoint (n = 24), as the server
        // does after a crash: the suffix must land on the same report.
        let vjob = validate(spec).unwrap();
        let c = ExecContext {
            threads: 2,
            cancel: &cancel,
            deadline: None,
            tick: &|_| (),
            progress: &progress,
            resume: Some(checkpoints[2]),
            on_checkpoint: None,
        };
        let JobResult::Streaming { report: resumed } = execute(&vjob, &c).unwrap() else {
            panic!("streaming job must return a streaming result");
        };
        assert_eq!(
            serde_json::to_string(&reference).unwrap(),
            serde_json::to_string(&resumed).unwrap(),
            "resume must reproduce the uninterrupted report bit for bit"
        );
    }

    #[test]
    fn expiring_streaming_job_returns_its_current_interval() {
        let vjob = validate(streaming_spec(77_950, None, 48)).unwrap();
        let cancel = AtomicBool::new(false);
        let progress = |_: ProgressUpdate| {};
        let c = ExecContext {
            threads: 2,
            cancel: &cancel,
            deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
            tick: &|_| (),
            progress: &progress,
            resume: None,
            on_checkpoint: None,
        };
        // The fixed-N modes fail on an expired deadline; streaming
        // completes with the (here still vacuous) valid interval.
        let JobResult::Streaming { report } = execute(&vjob, &c).unwrap() else {
            panic!("streaming job must return a streaming result");
        };
        assert_eq!(report.stop, StopReason::Deadline);
        assert_eq!(report.samples, 0);
        assert_eq!((report.lower, report.upper), (0.0, 1.0));
    }
}
