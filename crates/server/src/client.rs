//! Blocking client helpers for the JSON-lines protocol, hardened for an
//! unreliable server.
//!
//! These are what `spa submit` / `spa status` / `spa shutdown` use, and
//! what tests drive the server with: plain functions over a
//! `TcpStream`, one request per connection. Every connection is made
//! with a connect timeout and carries read/write timeouts
//! ([`ClientConfig`]), so a dead or wedged server surfaces as a typed
//! [`ClientError::TimedOut`] instead of hanging the caller forever.
//! Transport failures *before any response arrives* are retried with
//! bounded exponential backoff (reconnect-with-backoff); once the
//! server has answered, errors are returned as-is — the caller can
//! resubmit safely anyway, since submissions are content-addressed and
//! idempotent.

use std::io::BufReader;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    read_message, write_message, JobResult, MetricsReport, Request, Response, ServerStats,
    StreamingSnapshot,
};
use crate::spec::JobSpec;
use crate::ServerError;

/// The client's error type (an alias: client and protocol layers share
/// [`ServerError`]).
pub type ClientError = ServerError;

/// Time budgets and the reconnect policy for one logical request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientConfig {
    /// TCP connect budget per attempt.
    pub connect_timeout: Duration,
    /// Read/write budget per socket operation. For a streamed
    /// submission this bounds the *gap between events* (progress
    /// arrives at round boundaries), not the job's total runtime.
    pub io_timeout: Duration,
    /// Total connection attempts per logical request (≥ 1).
    pub attempts: u32,
    /// Base reconnect delay; attempt `k` waits `backoff · 2^(k−1)`.
    pub backoff: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(30),
            attempts: 3,
            backoff: Duration::from_millis(100),
        }
    }
}

/// Maps socket-timeout I/O errors to the typed variant.
fn normalize(err: ServerError) -> ServerError {
    match err {
        ServerError::Io(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
            ) =>
        {
            ServerError::TimedOut
        }
        other => other,
    }
}

/// Whether a failed exchange is worth a reconnect: transport-level
/// failures only — typed rejections and job failures are final.
fn retryable(err: &ServerError) -> bool {
    matches!(
        err,
        ServerError::Io(_) | ServerError::TimedOut | ServerError::Disconnected
    )
}

fn reconnect_delay(config: &ClientConfig, attempt: u32) -> Duration {
    config
        .backoff
        .saturating_mul(1u32 << attempt.saturating_sub(1).min(16))
}

/// Connects with the config's budgets and arms the socket timeouts.
fn connect(addr: &str, config: &ClientConfig) -> Result<TcpStream, ServerError> {
    let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
    let mut last: Option<std::io::Error> = None;
    for a in addrs {
        match TcpStream::connect_timeout(&a, config.connect_timeout) {
            Ok(stream) => {
                stream.set_read_timeout(Some(config.io_timeout))?;
                stream.set_write_timeout(Some(config.io_timeout))?;
                let _ = stream.set_nodelay(true);
                return Ok(stream);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(match last {
        Some(e) => normalize(ServerError::Io(e)),
        None => ServerError::Protocol(format!("address `{addr}` resolved to nothing")),
    })
}

/// Runs `exchange` against a fresh connection, retrying transport
/// failures up to the config's attempt budget with exponential backoff.
fn with_retries<T>(
    addr: &str,
    config: &ClientConfig,
    mut exchange: impl FnMut(TcpStream) -> Result<T, (bool, ServerError)>,
) -> Result<T, ServerError> {
    let attempts = config.attempts.max(1);
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let (responded, err) = match connect(addr, config) {
            Ok(stream) => match exchange(stream) {
                Ok(value) => return Ok(value),
                Err((responded, err)) => (responded, normalize(err)),
            },
            Err(err) => (false, err),
        };
        // Once the server has spoken, a mid-exchange failure is the
        // caller's to interpret — blind replay could double-report.
        if responded || !retryable(&err) || attempt >= attempts {
            return Err(err);
        }
        std::thread::sleep(reconnect_delay(config, attempt));
    }
}

/// What a successful submission produced.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// Server-assigned job id (the executing job's id when coalesced).
    pub job: u64,
    /// True when the report came from the result cache without sampling.
    pub cached: bool,
    /// The finished result.
    pub result: JobResult,
    /// How many progress events were streamed before the report.
    pub progress_events: u64,
}

/// Submits a job and blocks until its terminal response, with the
/// default [`ClientConfig`].
///
/// Every server message (acceptance, progress, terminal) is passed to
/// `on_event` as it arrives, for live display.
///
/// # Errors
///
/// [`ServerError::Rejected`] with the server's typed reason,
/// [`ServerError::JobFailed`] if the job ran and failed,
/// [`ClientError::TimedOut`] when the server goes silent past the time
/// and reconnect budgets, plus the usual I/O, protocol, and
/// [`ServerError::Disconnected`] failures.
pub fn submit(
    addr: &str,
    spec: &JobSpec,
    on_event: impl FnMut(&Response),
) -> Result<SubmitOutcome, ServerError> {
    submit_with(addr, spec, &ClientConfig::default(), on_event)
}

/// [`submit`] with explicit time budgets and reconnect policy.
/// Reconnects only happen before the server's first response; after
/// that, failures surface directly.
///
/// # Errors
///
/// As [`submit`].
pub fn submit_with(
    addr: &str,
    spec: &JobSpec,
    config: &ClientConfig,
    mut on_event: impl FnMut(&Response),
) -> Result<SubmitOutcome, ServerError> {
    with_retries(addr, config, |stream| {
        let mut responded = false;
        let mut run = || -> Result<SubmitOutcome, ServerError> {
            let mut writer = &stream;
            write_message(&mut writer, &Request::Submit { spec: spec.clone() })?;
            let mut reader = BufReader::new(&stream);
            let mut progress_events = 0u64;
            loop {
                let resp: Response = read_message(&mut reader)?.ok_or(ServerError::Disconnected)?;
                responded = true;
                on_event(&resp);
                match resp {
                    Response::Accepted { .. } => {}
                    Response::Progress { .. } => progress_events += 1,
                    Response::Rejected { reason } => return Err(ServerError::Rejected(reason)),
                    Response::Report {
                        job,
                        cached,
                        result,
                    } => {
                        return Ok(SubmitOutcome {
                            job,
                            cached,
                            result,
                            progress_events,
                        })
                    }
                    Response::Failed { error, .. } => return Err(ServerError::JobFailed(error)),
                    Response::Error { detail } => return Err(ServerError::Protocol(detail)),
                    other => {
                        return Err(ServerError::Protocol(format!(
                            "unexpected response to submit: {other:?}"
                        )))
                    }
                }
            }
        };
        run().map_err(|e| (responded, e))
    })
}

/// What a [`watch`] produced.
#[derive(Debug, Clone)]
pub struct WatchOutcome {
    /// The finished result, or `None` when `on_event` detached the
    /// watch before the job reached a terminal event (the interval
    /// already seen is valid — stop-at-any-time).
    pub result: Option<JobResult>,
    /// How many progress events were streamed.
    pub progress_events: u64,
}

/// Attaches to an existing job's event stream (live interval snapshots
/// for streaming jobs) and blocks until its terminal response, with the
/// default [`ClientConfig`].
///
/// `on_event` sees every server message as it arrives and returns
/// whether to keep watching: returning `false` detaches immediately —
/// anytime validity means the last interval seen is already a sound
/// answer.
///
/// # Errors
///
/// [`ServerError::JobFailed`] if the watched job failed (or is
/// unknown), [`ClientError::TimedOut`] when the server goes silent past
/// the time and reconnect budgets, plus the usual I/O, protocol, and
/// [`ServerError::Disconnected`] failures.
pub fn watch(
    addr: &str,
    job: u64,
    on_event: impl FnMut(&Response) -> bool,
) -> Result<WatchOutcome, ServerError> {
    watch_with(addr, job, &ClientConfig::default(), on_event)
}

/// [`watch`] with explicit time budgets and reconnect policy.
/// Reconnects only happen before the server's first response; after
/// that, failures surface directly.
///
/// # Errors
///
/// As [`watch`].
pub fn watch_with(
    addr: &str,
    job: u64,
    config: &ClientConfig,
    mut on_event: impl FnMut(&Response) -> bool,
) -> Result<WatchOutcome, ServerError> {
    with_retries(addr, config, |stream| {
        let mut responded = false;
        let mut run = || -> Result<WatchOutcome, ServerError> {
            let mut writer = &stream;
            write_message(&mut writer, &Request::Watch { job })?;
            let mut reader = BufReader::new(&stream);
            let mut progress_events = 0u64;
            loop {
                let resp: Response = read_message(&mut reader)?.ok_or(ServerError::Disconnected)?;
                responded = true;
                let keep_going = on_event(&resp);
                match resp {
                    Response::Progress { .. } => {
                        progress_events += 1;
                        if !keep_going {
                            return Ok(WatchOutcome {
                                result: None,
                                progress_events,
                            });
                        }
                    }
                    Response::Report { result, .. } => {
                        return Ok(WatchOutcome {
                            result: Some(result),
                            progress_events,
                        })
                    }
                    Response::Failed { error, .. } => return Err(ServerError::JobFailed(error)),
                    Response::Error { detail } => return Err(ServerError::Protocol(detail)),
                    other => {
                        return Err(ServerError::Protocol(format!(
                            "unexpected response to watch: {other:?}"
                        )))
                    }
                }
            }
        };
        run().map_err(|e| (responded, e))
    })
}

/// A full `status` exchange: the counter snapshot plus the live
/// streaming jobs' latest intervals.
#[derive(Debug, Clone)]
pub struct StatusReport {
    /// Server counters.
    pub stats: ServerStats,
    /// Live streaming jobs that have folded at least one round, with
    /// their latest interval snapshots.
    pub streaming: Vec<StreamingSnapshot>,
}

/// Fetches the server's counter snapshot with the default config.
///
/// # Errors
///
/// I/O, timeout, protocol, or disconnection failures.
pub fn status(addr: &str) -> Result<ServerStats, ServerError> {
    status_with(addr, &ClientConfig::default())
}

/// [`status`] with explicit time budgets. The exchange is read-only and
/// idempotent, so transport failures retry it whole.
///
/// # Errors
///
/// As [`status`].
pub fn status_with(addr: &str, config: &ClientConfig) -> Result<ServerStats, ServerError> {
    status_report_with(addr, config).map(|report| report.stats)
}

/// Fetches the full status report — counters *and* live streaming
/// snapshots — with the default config.
///
/// # Errors
///
/// As [`status`].
pub fn status_report(addr: &str) -> Result<StatusReport, ServerError> {
    status_report_with(addr, &ClientConfig::default())
}

/// [`status_report`] with explicit time budgets (idempotent, retried
/// whole).
///
/// # Errors
///
/// As [`status`].
pub fn status_report_with(addr: &str, config: &ClientConfig) -> Result<StatusReport, ServerError> {
    with_retries(addr, config, |stream| {
        let mut run = || -> Result<StatusReport, ServerError> {
            let mut writer = &stream;
            write_message(&mut writer, &Request::Status)?;
            let mut reader = BufReader::new(&stream);
            match read_message::<_, Response>(&mut reader)?.ok_or(ServerError::Disconnected)? {
                Response::Status {
                    stats, streaming, ..
                } => Ok(StatusReport { stats, streaming }),
                other => Err(ServerError::Protocol(format!(
                    "unexpected response to status: {other:?}"
                ))),
            }
        };
        // Idempotent: retry even after a partial response.
        run().map_err(|e| (false, e))
    })
}

/// Fetches the server's merged metrics snapshot (the live `/metrics`
/// surface: server registry plus the engine's process-global registry).
///
/// # Errors
///
/// I/O, timeout, protocol, or disconnection failures.
pub fn metrics(addr: &str) -> Result<MetricsReport, ServerError> {
    metrics_with(addr, &ClientConfig::default())
}

/// [`metrics`] with explicit time budgets (idempotent, retried whole).
///
/// # Errors
///
/// As [`metrics`].
pub fn metrics_with(addr: &str, config: &ClientConfig) -> Result<MetricsReport, ServerError> {
    with_retries(addr, config, |stream| {
        let mut run = || -> Result<MetricsReport, ServerError> {
            let mut writer = &stream;
            write_message(&mut writer, &Request::Metrics)?;
            let mut reader = BufReader::new(&stream);
            match read_message::<_, Response>(&mut reader)?.ok_or(ServerError::Disconnected)? {
                Response::Metrics { metrics } => Ok(metrics),
                other => Err(ServerError::Protocol(format!(
                    "unexpected response to metrics: {other:?}"
                ))),
            }
        };
        run().map_err(|e| (false, e))
    })
}

/// Asks the server to drain and exit.
///
/// # Errors
///
/// I/O, timeout, protocol, or disconnection failures.
pub fn shutdown(addr: &str) -> Result<(), ServerError> {
    shutdown_with(addr, &ClientConfig::default())
}

/// [`shutdown`] with explicit time budgets. Idempotent (a repeated
/// shutdown request is a no-op server-side), so retried whole.
///
/// # Errors
///
/// As [`shutdown`].
pub fn shutdown_with(addr: &str, config: &ClientConfig) -> Result<(), ServerError> {
    with_retries(addr, config, |stream| {
        let mut run = || -> Result<(), ServerError> {
            let mut writer = &stream;
            write_message(&mut writer, &Request::Shutdown)?;
            let mut reader = BufReader::new(&stream);
            match read_message::<_, Response>(&mut reader)?.ok_or(ServerError::Disconnected)? {
                Response::ShutdownStarted => Ok(()),
                other => Err(ServerError::Protocol(format!(
                    "unexpected response to shutdown: {other:?}"
                ))),
            }
        };
        run().map_err(|e| (false, e))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ModeSpec;
    use spa_core::property::Direction;
    use std::net::TcpListener;

    fn tiny_config() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_millis(50),
            attempts: 2,
            backoff: Duration::from_millis(1),
        }
    }

    #[test]
    fn submit_times_out_typed_against_a_silent_server() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // Accept both reconnect attempts and hold the sockets open
        // without ever answering — the wedged-server scenario.
        let silent = std::thread::spawn(move || {
            let held: Vec<TcpStream> = listener.incoming().take(2).map(|s| s.unwrap()).collect();
            std::thread::sleep(Duration::from_millis(400));
            drop(held);
        });
        let spec = JobSpec::new(
            "blackscholes",
            ModeSpec::Interval {
                direction: Direction::AtMost,
            },
        );
        let err = submit_with(&addr, &spec, &tiny_config(), |_| {}).unwrap_err();
        assert!(matches!(err, ServerError::TimedOut), "{err:?}");
        silent.join().unwrap();
    }

    #[test]
    fn connect_failure_is_typed_after_bounded_retries() {
        // Bind then drop: connecting to the freed port is refused (or
        // at worst times out) — either way a typed transport error, not
        // a hang.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        let started = std::time::Instant::now();
        let err = status_with(&addr, &tiny_config()).unwrap_err();
        assert!(
            matches!(err, ServerError::Io(_) | ServerError::TimedOut),
            "{err:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "retries are bounded"
        );
    }

    #[test]
    fn reconnect_delay_grows_exponentially() {
        let config = ClientConfig {
            backoff: Duration::from_millis(10),
            ..ClientConfig::default()
        };
        assert_eq!(reconnect_delay(&config, 1), Duration::from_millis(10));
        assert_eq!(reconnect_delay(&config, 2), Duration::from_millis(20));
        assert_eq!(reconnect_delay(&config, 3), Duration::from_millis(40));
    }
}
