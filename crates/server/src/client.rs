//! Blocking client helpers for the JSON-lines protocol.
//!
//! These are what `spa submit` / `spa status` / `spa shutdown` use, and
//! what tests drive the server with: plain functions over a
//! `TcpStream`, one request per connection.

use std::io::BufReader;
use std::net::TcpStream;

use crate::protocol::{
    read_message, write_message, JobResult, MetricsReport, Request, Response, ServerStats,
};
use crate::spec::JobSpec;
use crate::ServerError;

/// What a successful submission produced.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// Server-assigned job id (the executing job's id when coalesced).
    pub job: u64,
    /// True when the report came from the result cache without sampling.
    pub cached: bool,
    /// The finished result.
    pub result: JobResult,
    /// How many progress events were streamed before the report.
    pub progress_events: u64,
}

/// Submits a job and blocks until its terminal response.
///
/// Every server message (acceptance, progress, terminal) is passed to
/// `on_event` as it arrives, for live display.
///
/// # Errors
///
/// [`ServerError::Rejected`] with the server's typed reason,
/// [`ServerError::JobFailed`] if the job ran and failed, plus the usual
/// I/O, protocol, and [`ServerError::Disconnected`] failures.
pub fn submit(
    addr: &str,
    spec: &JobSpec,
    mut on_event: impl FnMut(&Response),
) -> Result<SubmitOutcome, ServerError> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = &stream;
    write_message(&mut writer, &Request::Submit { spec: spec.clone() })?;
    let mut reader = BufReader::new(&stream);
    let mut progress_events = 0u64;
    loop {
        let resp: Response = read_message(&mut reader)?.ok_or(ServerError::Disconnected)?;
        on_event(&resp);
        match resp {
            Response::Accepted { .. } => {}
            Response::Progress { .. } => progress_events += 1,
            Response::Rejected { reason } => return Err(ServerError::Rejected(reason)),
            Response::Report {
                job,
                cached,
                result,
            } => {
                return Ok(SubmitOutcome {
                    job,
                    cached,
                    result,
                    progress_events,
                })
            }
            Response::Failed { error, .. } => return Err(ServerError::JobFailed(error)),
            Response::Error { detail } => return Err(ServerError::Protocol(detail)),
            other => {
                return Err(ServerError::Protocol(format!(
                    "unexpected response to submit: {other:?}"
                )))
            }
        }
    }
}

/// Fetches the server's counter snapshot.
///
/// # Errors
///
/// I/O, protocol, or disconnection failures.
pub fn status(addr: &str) -> Result<ServerStats, ServerError> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = &stream;
    write_message(&mut writer, &Request::Status)?;
    let mut reader = BufReader::new(&stream);
    match read_message::<_, Response>(&mut reader)?.ok_or(ServerError::Disconnected)? {
        Response::Status { stats, .. } => Ok(stats),
        other => Err(ServerError::Protocol(format!(
            "unexpected response to status: {other:?}"
        ))),
    }
}

/// Fetches the server's merged metrics snapshot (the live `/metrics`
/// surface: server registry plus the engine's process-global registry).
///
/// # Errors
///
/// I/O, protocol, or disconnection failures.
pub fn metrics(addr: &str) -> Result<MetricsReport, ServerError> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = &stream;
    write_message(&mut writer, &Request::Metrics)?;
    let mut reader = BufReader::new(&stream);
    match read_message::<_, Response>(&mut reader)?.ok_or(ServerError::Disconnected)? {
        Response::Metrics { metrics } => Ok(metrics),
        other => Err(ServerError::Protocol(format!(
            "unexpected response to metrics: {other:?}"
        ))),
    }
}

/// Asks the server to drain and exit.
///
/// # Errors
///
/// I/O, protocol, or disconnection failures.
pub fn shutdown(addr: &str) -> Result<(), ServerError> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = &stream;
    write_message(&mut writer, &Request::Shutdown)?;
    let mut reader = BufReader::new(&stream);
    match read_message::<_, Response>(&mut reader)?.ok_or(ServerError::Disconnected)? {
        Response::ShutdownStarted => Ok(()),
        other => Err(ServerError::Protocol(format!(
            "unexpected response to shutdown: {other:?}"
        ))),
    }
}
