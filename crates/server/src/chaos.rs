//! Seeded fault injection for the chaos tests.
//!
//! A [`ChaosSpec`] on [`ServerConfig`](crate::ServerConfig) arms an
//! injection point at every round boundary of every executing job (the
//! worker's `tick` hook): with configured probabilities the hook
//! panics — simulating a worker killed mid-round, isolated and requeued
//! by the supervisor machinery — or stalls for a bounded time,
//! simulating a hung worker for the heartbeat monitor to catch.
//!
//! Every decision is a pure function of
//! `(seed, job id, generation, round)` through a SplitMix64-style
//! mixer, so a chaos test replays identically, and — crucially — a
//! *requeued* execution (same job, next generation) rolls differently
//! from the attempt that was killed, letting tests drive a job through
//! failure into a byte-identical recovery. The optional budget caps the
//! total number of injected faults so a `kill_prob = 1.0` test still
//! terminates.
//!
//! This layer exists for `crates/server/tests/chaos.rs`; production
//! configurations leave it `None`.

use std::sync::atomic::{AtomicU64, Ordering};

/// What faults to inject, and how often.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChaosSpec {
    /// Seed of the deterministic per-roll stream.
    pub seed: u64,
    /// Probability that a round boundary panics the worker.
    pub kill_prob: f64,
    /// Probability that a round boundary stalls the worker (evaluated
    /// after `kill_prob`; the two are mutually exclusive per roll).
    pub hang_prob: f64,
    /// Duration of an injected stall, in milliseconds.
    pub hang_ms: u64,
    /// Cap on total injected faults across the server's lifetime
    /// (0 = unlimited). With the cap exhausted, rolls are still made —
    /// determinism — but no fault fires.
    pub budget: u64,
}

/// The armed injection layer: a spec plus its fault accounting.
#[derive(Debug)]
pub struct ChaosState {
    spec: ChaosSpec,
    used: AtomicU64,
}

fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z
}

impl ChaosState {
    /// Arms `spec` with a zeroed fault budget.
    pub fn new(spec: ChaosSpec) -> Self {
        ChaosState {
            spec,
            used: AtomicU64::new(0),
        }
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// The deterministic uniform-[0,1) roll for one round boundary.
    fn roll(&self, job: u64, generation: u64, round: u64) -> f64 {
        let mut h = self.spec.seed;
        for v in [job, generation, round] {
            h = mix64(h ^ mix64(v));
        }
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Claims one unit of the fault budget (always succeeds when the
    /// budget is unlimited).
    fn take_token(&self) -> bool {
        if self.spec.budget == 0 {
            self.used.fetch_add(1, Ordering::SeqCst);
            return true;
        }
        self.used
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |used| {
                (used < self.spec.budget).then_some(used + 1)
            })
            .is_ok()
    }

    /// The worker-side injection point: called from the execution tick
    /// at each round boundary. May panic (caught by the worker's
    /// isolation layer) or sleep `hang_ms`.
    pub fn inject(&self, job: u64, generation: u64, round: u64) {
        let u = self.roll(job, generation, round);
        if u < self.spec.kill_prob {
            if self.take_token() {
                panic!("chaos: injected worker kill (job {job} gen {generation} round {round})");
            }
        } else if u < self.spec.kill_prob + self.spec.hang_prob
            && self.spec.hang_ms > 0
            && self.take_token()
        {
            std::thread::sleep(std::time::Duration::from_millis(self.spec.hang_ms));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_deterministic_and_generation_sensitive() {
        let a = ChaosState::new(ChaosSpec {
            seed: 7,
            ..ChaosSpec::default()
        });
        let b = ChaosState::new(ChaosSpec {
            seed: 7,
            ..ChaosSpec::default()
        });
        for round in 0..32 {
            assert_eq!(a.roll(1, 0, round), b.roll(1, 0, round));
            assert!((0.0..1.0).contains(&a.roll(1, 0, round)));
        }
        // A requeued execution rolls a different stream.
        assert_ne!(a.roll(1, 0, 0), a.roll(1, 1, 0));
        assert_ne!(a.roll(1, 0, 0), a.roll(2, 0, 0));
    }

    #[test]
    fn kill_injection_panics_within_budget_only() {
        let chaos = ChaosState::new(ChaosSpec {
            seed: 1,
            kill_prob: 1.0,
            budget: 2,
            ..ChaosSpec::default()
        });
        for round in 0..2 {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                chaos.inject(9, 0, round)
            }));
            assert!(r.is_err(), "round {round} must inject a kill");
        }
        assert_eq!(chaos.injected(), 2);
        // Budget exhausted: the same roll no longer fires.
        chaos.inject(9, 0, 2);
        assert_eq!(chaos.injected(), 2);
    }

    #[test]
    fn zero_probabilities_inject_nothing() {
        let chaos = ChaosState::new(ChaosSpec {
            seed: 3,
            ..ChaosSpec::default()
        });
        for round in 0..64 {
            chaos.inject(1, 0, round);
        }
        assert_eq!(chaos.injected(), 0);
    }
}
