//! Job specifications and their canonical cache keys.
//!
//! A [`JobSpec`] is the wire form of one evaluation request: which
//! benchmark/system/noise model to sample, which metric to evaluate,
//! and whether to build a confidence interval (the SPA Fig. 3 flow),
//! run a single sequential hypothesis test with round-based parallel
//! aggregation, check an STL property over recorded traces, or build a
//! simultaneous whole-CDF DKW band (quantile CIs plus CVaR bounds). All
//! statistical parameters carry defaults matching the paper's
//! `C = F = 0.9`.
//!
//! The result cache is *content-addressed*: two submissions answer from
//! the same cache slot exactly when their [`canonical_key`]s are equal.
//! The key is a canonicalized rendering of every field that affects the
//! result (floats in Rust's shortest-round-trip `Display` form, mode
//! flattened, defaults applied), so field order in the submitted JSON,
//! omitted-vs-explicit defaults, and float spelling (`0.90` vs `0.9`)
//! never split the cache.

use serde::{Deserialize, Serialize};

use spa_bench::population::{NoiseModel, SystemVariant};
use spa_core::property::Direction;
use spa_core::seq::Boundary;
use spa_sim::metrics::Metric;
use spa_sim::workload::parsec::Benchmark;

/// Which simulated system to evaluate (mirrors the population cache's
/// [`SystemVariant`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum SystemSpec {
    /// The paper's Table 2 machine (3 MB L2).
    #[default]
    Table2,
    /// Table 2 with a 512 kB L2.
    L2Small,
    /// Table 2 with a 1 MB L2.
    L2Large,
}

impl SystemSpec {
    /// The population-cache variant this spec maps to.
    pub fn variant(self) -> SystemVariant {
        match self {
            SystemSpec::Table2 => SystemVariant::Table2,
            SystemSpec::L2Small => SystemVariant::L2Small,
            SystemSpec::L2Large => SystemVariant::L2Large,
        }
    }

    fn key(self) -> &'static str {
        match self {
            SystemSpec::Table2 => "table2",
            SystemSpec::L2Small => "l2_small",
            SystemSpec::L2Large => "l2_large",
        }
    }
}

/// Which variability model drives the simulated executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(tag = "model", rename_all = "snake_case")]
pub enum NoiseSpec {
    /// §5.2 simulation model: uniform 0–4 cycle DRAM jitter.
    #[default]
    Paper,
    /// The Fig. 1 real-machine OS-noise model.
    RealMachine,
    /// Explicit DRAM-jitter bound (0 disables variability).
    Jitter {
        /// Maximum added DRAM latency in cycles.
        max_cycles: u64,
    },
}

impl NoiseSpec {
    /// The population-cache noise model this spec maps to.
    pub fn model(self) -> NoiseModel {
        match self {
            NoiseSpec::Paper => NoiseModel::Paper,
            NoiseSpec::RealMachine => NoiseModel::RealMachine,
            NoiseSpec::Jitter { max_cycles } => NoiseModel::Jitter(max_cycles),
        }
    }

    fn key(self) -> String {
        match self {
            NoiseSpec::Paper => "paper".into(),
            NoiseSpec::RealMachine => "real_machine".into(),
            NoiseSpec::Jitter { max_cycles } => format!("jitter:{max_cycles}"),
        }
    }
}

/// What the job computes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "mode", rename_all = "snake_case")]
pub enum ModeSpec {
    /// End-to-end SPA (Fig. 3): collect the Eq. 8 minimum number of
    /// executions and construct the metric's confidence interval.
    Interval {
        /// Property direction of the threshold search.
        direction: Direction,
    },
    /// One sequential hypothesis test (Algorithm 1), parallelized with
    /// bias-free round aggregation.
    Hypothesis {
        /// Property direction.
        direction: Direction,
        /// Property threshold.
        threshold: f64,
        /// Sampling budget: give up (inconclusive) after this many
        /// rounds.
        #[serde(default = "default_max_rounds")]
        max_rounds: u64,
    },
    /// A per-execution STL property over recorded signal traces: traced
    /// executions, one boolean/robustness verdict per trace, and the
    /// fixed-sample SMC test (Algorithm 2) over the verdicts.
    Property {
        /// STL formula text (the `spa_stl::parser` grammar, e.g.
        /// `G[0,end] (ipc > 0.8)`). Parsed — and rejected with a byte
        /// position on error — at submission time.
        formula: String,
        /// Evaluate quantitative robustness instead of boolean
        /// satisfaction.
        #[serde(default)]
        robustness: bool,
    },
    /// An anytime-valid streaming estimate of the proportion of
    /// executions satisfying `metric direction threshold`: a
    /// time-uniform confidence sequence ([`spa_core::seq`]) whose live
    /// interval snapshots ride the progress channel, with early stop at
    /// a width target, checkpointed preempt/resume, and
    /// valid-at-deadline semantics (an expiring job reports its current
    /// interval instead of failing).
    Streaming {
        /// Property direction.
        direction: Direction,
        /// Property threshold.
        threshold: f64,
        /// Which confidence-sequence construction to run (default:
        /// betting, the tighter of the two).
        #[serde(default = "default_boundary")]
        boundary: Boundary,
        /// Stop early once the interval width is at most this (`None`:
        /// run to the sample budget — the fixed-`N` mode).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        target_width: Option<f64>,
        /// Hard sample budget (default 4096). The interval at the
        /// budget is still valid — just as wide as the data allows.
        #[serde(default = "default_max_samples")]
        max_samples: u64,
    },
    /// A whole-CDF workload ([`spa_core::band`]): collect the Eq. 8
    /// minimum number of executions, build one simultaneous DKW
    /// confidence band at confidence `C`, and read every requested
    /// quantile CI — plus optional CVaR bounds for both tails — off
    /// that single band.
    Band {
        /// Quantiles to read off the band, each strictly inside
        /// `(0, 1)`. Order and duplicates never matter: the list is
        /// canonicalized (sorted ascending, deduplicated) for both the
        /// cache key and the report, so respelled lists share one cache
        /// slot.
        #[serde(default)]
        quantiles: Vec<f64>,
        /// CVaR level `α` to bound (both tails), if any. At least one
        /// of `quantiles`/`cvar_alpha` must be requested.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        cvar_alpha: Option<f64>,
    },
}

fn default_max_rounds() -> u64 {
    1024
}

fn default_boundary() -> Boundary {
    Boundary::Betting
}

fn default_max_samples() -> u64 {
    4096
}

fn default_metric() -> String {
    Metric::RuntimeSeconds.key().to_string()
}

fn default_level() -> f64 {
    0.9
}

fn default_round_size() -> u64 {
    8
}

fn default_retries() -> u32 {
    2
}

/// The wire form of one evaluation request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// PARSEC benchmark name (see [`Benchmark::from_name`]).
    pub benchmark: String,
    /// System variant (default: Table 2).
    #[serde(default)]
    pub system: SystemSpec,
    /// Variability model (default: the paper's).
    #[serde(default)]
    pub noise: NoiseSpec,
    /// Metric key, e.g. `runtime` or `ipc` (see [`Metric::key`]).
    #[serde(default = "default_metric")]
    pub metric: String,
    /// What to compute.
    pub mode: ModeSpec,
    /// Confidence level `C` (default 0.9).
    #[serde(default = "default_level")]
    pub confidence: f64,
    /// Proportion `F` (default 0.9).
    #[serde(default = "default_level")]
    pub proportion: f64,
    /// First seed of the job's seed stream.
    #[serde(default)]
    pub seed_start: u64,
    /// Executions per aggregation round (default 8).
    #[serde(default = "default_round_size")]
    pub round_size: u64,
    /// Extra attempts per seed after a failed execution (default 2).
    #[serde(default = "default_retries")]
    pub retries: u32,
    /// Wall-clock budget for the job in milliseconds, checked at round
    /// boundaries (`None` = the server's default, which may be
    /// unlimited). A QoS knob, not a result parameter: it is excluded
    /// from the canonical key, so deadline variants of one spec share a
    /// cache slot.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub deadline_ms: Option<u64>,
}

impl JobSpec {
    /// A spec with every optional field at its default.
    pub fn new(benchmark: &str, mode: ModeSpec) -> Self {
        Self {
            benchmark: benchmark.to_string(),
            system: SystemSpec::default(),
            noise: NoiseSpec::default(),
            metric: default_metric(),
            mode,
            confidence: default_level(),
            proportion: default_level(),
            seed_start: 0,
            round_size: default_round_size(),
            retries: default_retries(),
            deadline_ms: None,
        }
    }
}

fn direction_key(d: Direction) -> &'static str {
    match d {
        Direction::AtMost => "at_most",
        Direction::AtLeast => "at_least",
    }
}

/// The canonical cache key of a spec: a stable, human-readable rendering
/// of every result-affecting field. Equal keys ⇔ identical results (for
/// a deterministic simulator), so the result cache maps this string to
/// the finished report.
pub fn canonical_key(spec: &JobSpec) -> String {
    let mode = match &spec.mode {
        ModeSpec::Interval { direction } => format!("interval:{}", direction_key(*direction)),
        ModeSpec::Hypothesis {
            direction,
            threshold,
            max_rounds,
        } => format!(
            "hypothesis:{}:{threshold}:{max_rounds}",
            direction_key(*direction)
        ),
        // The formula is canonicalized through the parser's AST Display,
        // so spelling variants (`end` vs `inf`, whitespace, redundant
        // parens) share a cache slot. An unparseable formula — which
        // validation rejects before any cache lookup — keys on its raw
        // text.
        ModeSpec::Property {
            formula,
            robustness,
        } => {
            let semantics = if *robustness { "robustness" } else { "boolean" };
            let canonical = spa_stl::parser::parse(formula)
                .map(|f| f.to_string())
                .unwrap_or_else(|_| formula.clone());
            format!("property:{semantics}:{canonical}")
        }
        ModeSpec::Streaming {
            direction,
            threshold,
            boundary,
            target_width,
            max_samples,
        } => {
            let width = target_width.map_or_else(|| "none".to_string(), |w| w.to_string());
            format!(
                "streaming:{}:{}:{threshold}:{width}:{max_samples}",
                boundary.key(),
                direction_key(*direction)
            )
        }
        // The quantile list is canonicalized (sorted, deduplicated)
        // before rendering, so `[0.9, 0.5]`, `[0.5, 0.90]`, and
        // `[0.5, 0.5, 0.9]` all share a cache slot — the band they
        // request is the same object.
        ModeSpec::Band {
            quantiles,
            cvar_alpha,
        } => {
            let mut qs = quantiles.clone();
            qs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            qs.dedup();
            let qs = qs.iter().map(f64::to_string).collect::<Vec<_>>().join(",");
            let cvar = cvar_alpha.map_or_else(|| "none".to_string(), |a| a.to_string());
            format!("band:{qs}:{cvar}")
        }
    };
    format!(
        "v1;bench={};system={};noise={};metric={};mode={};c={};f={};seed={};round={};retries={}",
        spec.benchmark,
        spec.system.key(),
        spec.noise.key(),
        spec.metric,
        mode,
        spec.confidence,
        spec.proportion,
        spec.seed_start,
        spec.round_size,
        spec.retries,
    )
}

/// FNV-1a 64 of the canonical key — a short content address for display
/// and logs (the cache itself keys on the full string, so hash
/// collisions can never alias results).
pub fn key_hash(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A spec whose names have been resolved and whose parameters have been
/// range-checked, ready to execute.
#[derive(Debug, Clone)]
pub struct ValidatedJob {
    /// The original spec (canonical source of all parameters).
    pub spec: JobSpec,
    /// Resolved benchmark.
    pub benchmark: Benchmark,
    /// Resolved metric.
    pub metric: Metric,
    /// The parsed STL formula (property mode only).
    pub property: Option<spa_stl::ast::Stl>,
    /// Canonical cache key of the spec.
    pub key: String,
}

/// A statistical level must lie strictly inside the unit interval
/// (mirrors the check `SmcEngine` applies at construction).
fn check_level(name: &str, v: f64) -> Result<(), String> {
    if v.is_finite() && 0.0 < v && v < 1.0 {
        Ok(())
    } else {
        Err(format!("{name} must be inside (0, 1), got {v}"))
    }
}

/// Validates a spec, resolving benchmark and metric names.
///
/// # Errors
///
/// A human-readable description of the first problem (unknown benchmark
/// or metric, out-of-range `C`/`F`, zero round size, non-finite
/// threshold, zero round budget, unparseable STL formula, empty or
/// out-of-range band request).
pub fn validate(spec: JobSpec) -> Result<ValidatedJob, String> {
    let benchmark = Benchmark::from_name(&spec.benchmark)
        .ok_or_else(|| format!("unknown benchmark `{}`", spec.benchmark))?;
    let metric = Metric::ALL
        .iter()
        .copied()
        .find(|m| m.key() == spec.metric)
        .ok_or_else(|| format!("unknown metric `{}`", spec.metric))?;
    check_level("confidence", spec.confidence)?;
    check_level("proportion", spec.proportion)?;
    if spec.round_size == 0 {
        return Err("round_size must be at least 1".into());
    }
    match &spec.mode {
        ModeSpec::Hypothesis {
            threshold,
            max_rounds,
            ..
        } => {
            if !threshold.is_finite() {
                return Err(format!("threshold `{threshold}` is not finite"));
            }
            if *max_rounds == 0 {
                return Err("max_rounds must be at least 1".into());
            }
        }
        ModeSpec::Streaming {
            threshold,
            target_width,
            max_samples,
            ..
        } => {
            if !threshold.is_finite() {
                return Err(format!("threshold `{threshold}` is not finite"));
            }
            if let Some(w) = target_width {
                if !(w.is_finite() && *w > 0.0) {
                    return Err(format!(
                        "target_width `{w}` must be a positive finite width"
                    ));
                }
            }
            if *max_samples == 0 {
                return Err("max_samples must be at least 1".into());
            }
        }
        ModeSpec::Band {
            quantiles,
            cvar_alpha,
        } => {
            if quantiles.is_empty() && cvar_alpha.is_none() {
                return Err("band mode needs at least one quantile or a cvar_alpha".into());
            }
            for q in quantiles {
                check_level("quantile", *q)?;
            }
            if let Some(a) = cvar_alpha {
                check_level("cvar_alpha", *a)?;
            }
        }
        ModeSpec::Interval { .. } | ModeSpec::Property { .. } => {}
    }
    // Parse the property at submission time: a bad formula is rejected
    // before the job ever reaches the queue, with the parser's byte
    // position in the message.
    let property = if let ModeSpec::Property { formula, .. } = &spec.mode {
        Some(spa_stl::parser::parse(formula).map_err(|e| format!("invalid property: {e}"))?)
    } else {
        None
    };
    let key = canonical_key(&spec);
    Ok(ValidatedJob {
        spec,
        benchmark,
        metric,
        property,
        key,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval_spec() -> JobSpec {
        JobSpec::new(
            "blackscholes",
            ModeSpec::Interval {
                direction: Direction::AtMost,
            },
        )
    }

    #[test]
    fn defaults_apply_on_deserialize() {
        let json = r#"{"benchmark":"ferret","mode":{"mode":"interval","direction":"AtMost"}}"#;
        let spec: JobSpec = serde_json::from_str(json).unwrap();
        assert_eq!(spec.system, SystemSpec::Table2);
        assert_eq!(spec.noise, NoiseSpec::Paper);
        assert_eq!(spec.metric, "runtime");
        assert_eq!(spec.confidence, 0.9);
        assert_eq!(spec.proportion, 0.9);
        assert_eq!(spec.round_size, 8);
        assert_eq!(spec.retries, 2);
        assert_eq!(spec.seed_start, 0);
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = JobSpec {
            system: SystemSpec::L2Small,
            noise: NoiseSpec::Jitter { max_cycles: 4 },
            metric: "ipc".into(),
            mode: ModeSpec::Hypothesis {
                direction: Direction::AtLeast,
                threshold: 1.25,
                max_rounds: 64,
            },
            confidence: 0.95,
            proportion: 0.5,
            seed_start: 7,
            round_size: 4,
            retries: 1,
            ..interval_spec()
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: JobSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn canonical_key_ignores_json_spelling() {
        // Explicit defaults and omitted defaults canonicalize equally.
        let a: JobSpec = serde_json::from_str(
            r#"{"benchmark":"ferret","mode":{"mode":"interval","direction":"AtMost"}}"#,
        )
        .unwrap();
        let b: JobSpec = serde_json::from_str(
            r#"{"confidence":0.9,"metric":"runtime","benchmark":"ferret",
                "mode":{"direction":"AtMost","mode":"interval"},"proportion":0.90}"#,
        )
        .unwrap();
        assert_eq!(canonical_key(&a), canonical_key(&b));
    }

    #[test]
    fn canonical_key_separates_different_jobs() {
        let base = interval_spec();
        let mut other = base.clone();
        other.seed_start = 1;
        assert_ne!(canonical_key(&base), canonical_key(&other));
        let mut other = base.clone();
        other.proportion = 0.5;
        assert_ne!(canonical_key(&base), canonical_key(&other));
        let mut other = base.clone();
        other.mode = ModeSpec::Hypothesis {
            direction: Direction::AtMost,
            threshold: 1.0,
            max_rounds: 64,
        };
        assert_ne!(canonical_key(&base), canonical_key(&other));
    }

    fn property_spec(formula: &str) -> JobSpec {
        JobSpec::new(
            "blackscholes",
            ModeSpec::Property {
                formula: formula.into(),
                robustness: false,
            },
        )
    }

    #[test]
    fn property_specs_validate_and_parse_the_formula() {
        let v = validate(property_spec("G[0,end] (ipc > 0.8)")).unwrap();
        let formula = v.property.expect("property mode stores the parsed AST");
        assert_eq!(
            formula,
            spa_stl::parser::parse("G[0,inf] (ipc > 0.8)").unwrap()
        );
        // Non-property modes leave the slot empty.
        assert!(validate(interval_spec()).unwrap().property.is_none());
    }

    #[test]
    fn property_specs_reject_bad_formulas_with_a_position() {
        let err = validate(property_spec("G[0,end] (ipc >")).unwrap_err();
        assert!(err.contains("invalid property"), "{err}");
        assert!(err.contains("byte"), "parser position surfaces: {err}");
    }

    #[test]
    fn property_robustness_defaults_off_on_the_wire() {
        let json = r#"{"benchmark":"ferret","mode":{"mode":"property","formula":"ipc > 0.8"}}"#;
        let spec: JobSpec = serde_json::from_str(json).unwrap();
        assert_eq!(
            spec.mode,
            ModeSpec::Property {
                formula: "ipc > 0.8".into(),
                robustness: false,
            }
        );
        assert!(validate(spec).is_ok());
    }

    #[test]
    fn property_keys_canonicalize_formula_spelling() {
        // `end` vs `inf`, whitespace, and redundant parens all map to
        // the same canonical AST rendering — one cache slot.
        let a = property_spec("G[0,end](ipc>0.8)");
        let b = property_spec("G[0,inf]  (ipc > 0.8)");
        assert_eq!(canonical_key(&a), canonical_key(&b));
        // Semantics splits the slot: robustness samples differ from
        // boolean ones even for the same formula.
        let mut c = a.clone();
        c.mode = ModeSpec::Property {
            formula: "G[0,end](ipc>0.8)".into(),
            robustness: true,
        };
        assert_ne!(canonical_key(&a), canonical_key(&c));
        // And a different formula is a different job.
        let d = property_spec("G[0,end](ipc>0.9)");
        assert_ne!(canonical_key(&a), canonical_key(&d));
    }

    fn streaming_spec() -> JobSpec {
        JobSpec::new(
            "blackscholes",
            ModeSpec::Streaming {
                direction: Direction::AtMost,
                threshold: 1.0,
                boundary: Boundary::Betting,
                target_width: Some(0.2),
                max_samples: 512,
            },
        )
    }

    #[test]
    fn streaming_defaults_apply_on_the_wire() {
        let json = r#"{"benchmark":"ferret",
            "mode":{"mode":"streaming","direction":"AtMost","threshold":1.0}}"#;
        let spec: JobSpec = serde_json::from_str(json).unwrap();
        assert_eq!(
            spec.mode,
            ModeSpec::Streaming {
                direction: Direction::AtMost,
                threshold: 1.0,
                boundary: Boundary::Betting,
                target_width: None,
                max_samples: 4096,
            }
        );
        assert!(validate(spec).is_ok());
    }

    #[test]
    fn streaming_keys_separate_every_result_affecting_knob() {
        let base = streaming_spec();
        let mut other = base.clone();
        other.mode = ModeSpec::Streaming {
            direction: Direction::AtMost,
            threshold: 1.0,
            boundary: Boundary::Hoeffding,
            target_width: Some(0.2),
            max_samples: 512,
        };
        assert_ne!(canonical_key(&base), canonical_key(&other));
        let mut other = base.clone();
        other.mode = ModeSpec::Streaming {
            direction: Direction::AtMost,
            threshold: 1.0,
            boundary: Boundary::Betting,
            target_width: None,
            max_samples: 512,
        };
        assert_ne!(canonical_key(&base), canonical_key(&other));
        let mut other = base.clone();
        other.mode = ModeSpec::Streaming {
            direction: Direction::AtMost,
            threshold: 1.0,
            boundary: Boundary::Betting,
            target_width: Some(0.2),
            max_samples: 1024,
        };
        assert_ne!(canonical_key(&base), canonical_key(&other));
        // And streaming never aliases a hypothesis job at the same
        // threshold.
        let mut other = base.clone();
        other.mode = ModeSpec::Hypothesis {
            direction: Direction::AtMost,
            threshold: 1.0,
            max_rounds: 1024,
        };
        assert_ne!(canonical_key(&base), canonical_key(&other));
    }

    #[test]
    fn streaming_validation_rejects_bad_parameters() {
        let mut s = streaming_spec();
        s.mode = ModeSpec::Streaming {
            direction: Direction::AtMost,
            threshold: f64::NAN,
            boundary: Boundary::Betting,
            target_width: None,
            max_samples: 512,
        };
        assert!(validate(s).unwrap_err().contains("finite"));

        let mut s = streaming_spec();
        s.mode = ModeSpec::Streaming {
            direction: Direction::AtMost,
            threshold: 1.0,
            boundary: Boundary::Betting,
            target_width: Some(0.0),
            max_samples: 512,
        };
        assert!(validate(s).unwrap_err().contains("target_width"));

        let mut s = streaming_spec();
        s.mode = ModeSpec::Streaming {
            direction: Direction::AtMost,
            threshold: 1.0,
            boundary: Boundary::Betting,
            target_width: None,
            max_samples: 0,
        };
        assert!(validate(s).unwrap_err().contains("max_samples"));
    }

    fn band_spec(quantiles: &[f64], cvar_alpha: Option<f64>) -> JobSpec {
        JobSpec::new(
            "blackscholes",
            ModeSpec::Band {
                quantiles: quantiles.to_vec(),
                cvar_alpha,
            },
        )
    }

    #[test]
    fn band_defaults_apply_on_the_wire() {
        let json = r#"{"benchmark":"ferret",
            "mode":{"mode":"band","quantiles":[0.5,0.9]}}"#;
        let spec: JobSpec = serde_json::from_str(json).unwrap();
        assert_eq!(
            spec.mode,
            ModeSpec::Band {
                quantiles: vec![0.5, 0.9],
                cvar_alpha: None,
            }
        );
        assert!(validate(spec.clone()).is_ok());
        // Absent cvar_alpha stays off the wire.
        let out = serde_json::to_string(&spec).unwrap();
        assert!(!out.contains("cvar_alpha"), "{out}");
    }

    #[test]
    fn band_keys_canonicalize_quantile_spelling() {
        // Reordered, duplicated, and respelled quantile lists request
        // the same band — one cache slot.
        let a = band_spec(&[0.9, 0.5], Some(0.95));
        let b = band_spec(&[0.5, 0.5, 0.90], Some(0.95));
        assert_eq!(canonical_key(&a), canonical_key(&b));
        // A different quantile set, a different cvar level, or dropping
        // the cvar request each split the slot.
        let c = band_spec(&[0.5, 0.95], Some(0.95));
        assert_ne!(canonical_key(&a), canonical_key(&c));
        let d = band_spec(&[0.9, 0.5], Some(0.99));
        assert_ne!(canonical_key(&a), canonical_key(&d));
        let e = band_spec(&[0.9, 0.5], None);
        assert_ne!(canonical_key(&a), canonical_key(&e));
        // And a band job never aliases an interval job.
        assert_ne!(canonical_key(&e), canonical_key(&interval_spec()));
    }

    #[test]
    fn band_validation_rejects_bad_requests() {
        let err = validate(band_spec(&[], None)).unwrap_err();
        assert!(err.contains("band"), "{err}");
        let err = validate(band_spec(&[0.5, 1.0], None)).unwrap_err();
        assert!(err.contains("quantile"), "{err}");
        let err = validate(band_spec(&[0.5], Some(f64::NAN))).unwrap_err();
        assert!(err.contains("cvar_alpha"), "{err}");
        // CVaR-only requests are fine: the band itself is the product.
        assert!(validate(band_spec(&[], Some(0.95))).is_ok());
    }

    #[test]
    fn deadline_is_a_qos_knob_not_a_cache_key() {
        let base = interval_spec();
        let mut with_deadline = base.clone();
        with_deadline.deadline_ms = Some(5_000);
        // Same result either way — one cache slot.
        assert_eq!(canonical_key(&base), canonical_key(&with_deadline));
        // And absent deadlines stay off the wire, so pre-deadline specs
        // serialize byte-identically.
        let json = serde_json::to_string(&base).unwrap();
        assert!(!json.contains("deadline"), "{json}");
        let with_json = serde_json::to_string(&with_deadline).unwrap();
        assert!(with_json.contains("\"deadline_ms\":5000"), "{with_json}");
        let back: JobSpec = serde_json::from_str(&with_json).unwrap();
        assert_eq!(back.deadline_ms, Some(5_000));
    }

    #[test]
    fn key_hash_is_stable_fnv1a() {
        // FNV-1a test vectors.
        assert_eq!(key_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(key_hash("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(key_hash(canonical_key(&interval_spec())), {
            key_hash(&canonical_key(&interval_spec()))
        });
    }

    #[test]
    fn validation_resolves_names() {
        let v = validate(interval_spec()).unwrap();
        assert_eq!(v.benchmark, Benchmark::Blackscholes);
        assert_eq!(v.metric, Metric::RuntimeSeconds);
        assert_eq!(v.key, canonical_key(&v.spec));
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut s = interval_spec();
        s.benchmark = "raytrace".into();
        assert!(validate(s).unwrap_err().contains("benchmark"));

        let mut s = interval_spec();
        s.metric = "vibes".into();
        assert!(validate(s).unwrap_err().contains("metric"));

        let mut s = interval_spec();
        s.confidence = 1.0;
        assert!(validate(s).is_err());

        let mut s = interval_spec();
        s.round_size = 0;
        assert!(validate(s).unwrap_err().contains("round_size"));

        let mut s = interval_spec();
        s.mode = ModeSpec::Hypothesis {
            direction: Direction::AtMost,
            threshold: f64::NAN,
            max_rounds: 8,
        };
        assert!(validate(s).unwrap_err().contains("finite"));

        let mut s = interval_spec();
        s.mode = ModeSpec::Hypothesis {
            direction: Direction::AtMost,
            threshold: 1.0,
            max_rounds: 0,
        };
        assert!(validate(s).unwrap_err().contains("max_rounds"));
    }
}
