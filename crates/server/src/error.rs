//! Error type shared by the client helpers and the protocol layer.

use std::fmt;

use crate::protocol::RejectReason;

/// Everything that can go wrong talking to (or being) the evaluation
/// service.
#[derive(Debug)]
pub enum ServerError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The peer sent something that is not a well-formed message.
    Protocol(String),
    /// The server declined the submission with a typed reason.
    Rejected(RejectReason),
    /// The job was accepted but its execution failed.
    JobFailed(String),
    /// The connection closed before a terminal response arrived.
    Disconnected,
    /// The operation exceeded the client's time budget (connect, read,
    /// or write timeout) and its reconnect budget.
    TimedOut,
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "i/o error: {e}"),
            ServerError::Protocol(detail) => write!(f, "protocol error: {detail}"),
            ServerError::Rejected(reason) => write!(f, "submission rejected: {reason}"),
            ServerError::JobFailed(error) => write!(f, "job failed: {error}"),
            ServerError::Disconnected => {
                f.write_str("connection closed before a terminal response")
            }
            ServerError::TimedOut => f.write_str("timed out waiting for the server"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<serde_json::Error> for ServerError {
    fn from(e: serde_json::Error) -> Self {
        ServerError::Protocol(e.to_string())
    }
}
