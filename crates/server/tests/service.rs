//! End-to-end service tests over real TCP connections.
//!
//! Each test starts its own server on an ephemeral port and drives it
//! with the blocking client helpers — the same code path `spa submit`
//! uses. Seed starts are unique per test so the shared on-disk
//! population cache never couples them.

use std::io::{BufRead, BufReader, Write};
use std::time::{Duration, Instant};

use spa_core::property::Direction;
use spa_core::seq::{Boundary, StopReason};
use spa_core::spa::Spa;
use spa_server::client;
use spa_server::spec::{JobSpec, ModeSpec, NoiseSpec};
use spa_server::{
    start, JobResult, RejectReason, Response, ServerConfig, ServerError, ServerStats,
};

fn config(workers: usize, queue_depth: usize) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_depth,
        job_threads: 2,
        ..ServerConfig::default()
    }
}

fn interval_spec(seed_start: u64) -> JobSpec {
    JobSpec {
        noise: NoiseSpec::Jitter { max_cycles: 2 },
        seed_start,
        round_size: 8,
        ..JobSpec::new(
            "blackscholes",
            ModeSpec::Interval {
                direction: Direction::AtMost,
            },
        )
    }
}

/// A streaming (anytime-valid) job over a threshold every execution
/// satisfies, so the interval shrinks toward 1 deterministically.
fn streaming_spec(seed_start: u64, target_width: Option<f64>, max_samples: u64) -> JobSpec {
    JobSpec {
        noise: NoiseSpec::Jitter { max_cycles: 0 },
        seed_start,
        round_size: 8,
        mode: ModeSpec::Streaming {
            direction: Direction::AtMost,
            threshold: 1e6,
            boundary: Boundary::Betting,
            target_width,
            max_samples,
        },
        ..JobSpec::new(
            "blackscholes",
            ModeSpec::Interval {
                direction: Direction::AtMost,
            },
        )
    }
}

/// A whole-CDF band job: one DKW band, read at `quantiles` plus an
/// optional CVaR level.
fn band_spec(seed_start: u64, quantiles: &[f64], cvar_alpha: Option<f64>) -> JobSpec {
    JobSpec {
        noise: NoiseSpec::Jitter { max_cycles: 2 },
        seed_start,
        round_size: 8,
        ..JobSpec::new(
            "blackscholes",
            ModeSpec::Band {
                quantiles: quantiles.to_vec(),
                cvar_alpha,
            },
        )
    }
}

/// An interval job whose Eq. 8 sample requirement is astronomically
/// large — it occupies a worker until cancelled.
fn slow_spec(seed_start: u64) -> JobSpec {
    JobSpec {
        confidence: 0.99999,
        proportion: 0.99999,
        round_size: 64,
        ..interval_spec(seed_start)
    }
}

fn wait_for(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn interval_job_matches_direct_spa_run() {
    let handle = start(config(2, 8)).unwrap();
    let addr = handle.addr().to_string();
    let spec = interval_spec(41_000);
    let outcome = client::submit(&addr, &spec, |_| {}).unwrap();
    assert!(!outcome.cached);
    let JobResult::Interval { report } = outcome.result else {
        panic!("interval job must return an interval result");
    };

    // The same machine, metric, and seed stream, sampled directly.
    let benchmark = spa_sim::workload::parsec::Benchmark::Blackscholes;
    let workload = benchmark.workload();
    let machine =
        spa_sim::machine::Machine::new(spa_sim::config::SystemConfig::table2(), &workload)
            .unwrap()
            .with_variability(spa_sim::variability::Variability::DramJitter { max_cycles: 2 });
    let sampler = move |seed: u64| {
        spa_sim::metrics::Metric::RuntimeSeconds.extract(&machine.run(seed).unwrap().metrics)
    };
    let spa = Spa::builder()
        .confidence(0.9)
        .proportion(0.9)
        .build()
        .unwrap();
    let direct = spa.run(&sampler, 41_000, Direction::AtMost).unwrap();

    assert_eq!(report, direct, "service report must equal a direct run");
    handle.shutdown();
}

#[test]
fn repeated_submit_is_answered_from_cache() {
    let handle = start(config(2, 8)).unwrap();
    let addr = handle.addr().to_string();
    let spec = interval_spec(41_100);
    let first = client::submit(&addr, &spec, |_| {}).unwrap();
    assert!(!first.cached);
    let second = client::submit(&addr, &spec, |_| {}).unwrap();
    assert!(second.cached, "identical resubmission must hit the cache");
    assert_eq!(second.progress_events, 0, "a cache hit does no sampling");
    assert_eq!(first.result, second.result);
    let stats = handle.stats();
    assert_eq!(stats.executed, 1);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.submitted, 2);
    handle.shutdown();
}

#[test]
fn concurrent_identical_submits_execute_once() {
    let handle = start(config(4, 16)).unwrap();
    let addr = handle.addr().to_string();
    let spec = interval_spec(41_200);
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                let spec = spec.clone();
                scope.spawn(move || client::submit(&addr, &spec, |_| {}).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let stats = handle.stats();
    assert_eq!(
        stats.executed, 1,
        "racing identical submissions are single-flight: {stats:?}"
    );
    assert_eq!(stats.submitted, 4);
    assert_eq!(stats.cache_hits + stats.coalesced, 3);
    for r in &results[1..] {
        assert_eq!(r.result, results[0].result);
    }
    handle.shutdown();
}

#[test]
fn full_queue_rejects_with_typed_backpressure() {
    let handle = start(config(1, 1)).unwrap();
    let addr = handle.addr().to_string();
    let submitters: Vec<_> = (0..2)
        .map(|i| {
            let addr = addr.clone();
            let spec = slow_spec(41_300 + 100_000 * i);
            std::thread::spawn(move || client::submit(&addr, &spec, |_| {}))
        })
        .collect();
    // One slow job running, one filling the depth-1 queue.
    assert!(
        wait_for(Duration::from_secs(10), || {
            let s = handle.stats();
            s.running == 1 && s.queued == 1
        }),
        "server never reached running=1 queued=1: {:?}",
        handle.stats()
    );
    let err = client::submit(&addr, &slow_spec(41_900), |_| {}).unwrap_err();
    match err {
        ServerError::Rejected(RejectReason::QueueFull { depth }) => assert_eq!(depth, 1),
        other => panic!("expected a typed queue-full rejection, got {other}"),
    }
    assert_eq!(handle.stats().rejected, 1);

    // Cancel the slow jobs; both submitters observe a typed job failure.
    handle.cancel_all();
    for s in submitters {
        match s.join().unwrap() {
            Err(ServerError::JobFailed(msg)) => assert!(msg.contains("cancelled"), "{msg}"),
            other => panic!("cancelled job must fail, got {other:?}"),
        }
    }
    handle.shutdown();
}

#[test]
fn shutdown_drains_queued_jobs_without_losing_reports() {
    let handle = start(config(1, 8)).unwrap();
    let addr = handle.addr().to_string();
    // Three distinct fast jobs on a single worker: at least two sit in
    // the queue when shutdown begins.
    let submitters: Vec<_> = (0..3)
        .map(|i| {
            let addr = addr.clone();
            let spec = interval_spec(42_000 + 100 * i);
            std::thread::spawn(move || client::submit(&addr, &spec, |_| {}))
        })
        .collect();
    assert!(
        wait_for(Duration::from_secs(10), || handle.stats().queued
            + handle.stats().running
            + handle.stats().completed
            >= 3),
        "jobs never arrived: {:?}",
        handle.stats()
    );
    handle.initiate_shutdown();
    // Every accepted job still reaches its terminal report.
    for s in submitters {
        let outcome = s.join().unwrap().expect("drained job must report");
        assert!(matches!(outcome.result, JobResult::Interval { .. }));
    }
    let stats: ServerStats = handle.stats();
    assert_eq!(stats.completed, 3, "{stats:?}");
    assert_eq!(stats.failed, 0, "{stats:?}");
    handle.join();
}

#[test]
fn submissions_during_shutdown_are_rejected() {
    let handle = start(config(1, 4)).unwrap();
    let addr = handle.addr().to_string();
    handle.initiate_shutdown();
    let err = client::submit(&addr, &interval_spec(42_500), |_| {}).unwrap_err();
    // The connection may be accepted (reject) or already closed (I/O),
    // depending on when the accept loop observes the flag.
    match err {
        ServerError::Rejected(RejectReason::ShuttingDown)
        | ServerError::Io(_)
        | ServerError::Disconnected => {}
        other => panic!("expected shutting-down rejection, got {other}"),
    }
    handle.join();
}

#[test]
fn invalid_specs_get_typed_rejections() {
    let handle = start(config(1, 4)).unwrap();
    let addr = handle.addr().to_string();
    let mut spec = interval_spec(42_600);
    spec.benchmark = "raytrace".to_string();
    match client::submit(&addr, &spec, |_| {}).unwrap_err() {
        ServerError::Rejected(RejectReason::InvalidSpec { detail }) => {
            assert!(detail.contains("raytrace"), "{detail}");
        }
        other => panic!("expected invalid-spec rejection, got {other}"),
    }
    let mut spec = interval_spec(42_600);
    spec.confidence = 1.5;
    assert!(matches!(
        client::submit(&addr, &spec, |_| {}).unwrap_err(),
        ServerError::Rejected(RejectReason::InvalidSpec { .. })
    ));
    assert_eq!(handle.stats().rejected, 2);
    assert_eq!(handle.stats().executed, 0);
    handle.shutdown();
}

#[test]
fn hypothesis_jobs_stream_progress_and_conclude() {
    let handle = start(config(2, 8)).unwrap();
    let addr = handle.addr().to_string();
    let spec = JobSpec {
        noise: NoiseSpec::Jitter { max_cycles: 0 },
        seed_start: 42_700,
        round_size: 4,
        mode: ModeSpec::Hypothesis {
            direction: Direction::AtMost,
            threshold: 1e6, // always satisfied: converges positive at 24
            max_rounds: 64,
        },
        ..JobSpec::new(
            "blackscholes",
            ModeSpec::Interval {
                direction: Direction::AtMost,
            },
        )
    };
    let outcome = client::submit(&addr, &spec, |_| {}).unwrap();
    let JobResult::Hypothesis { outcome: rounds } = outcome.result else {
        panic!("hypothesis job must return a hypothesis result");
    };
    let concluded = rounds.outcome.expect("must converge");
    assert_eq!(concluded.samples_used, 24);
    assert!(concluded.achieved_confidence >= 0.9);
    assert!(outcome.progress_events >= 1, "rounds stream progress");

    // Identical hypothesis resubmission hits the cache too.
    let again = client::submit(&addr, &spec, |_| {}).unwrap();
    assert!(again.cached);
    handle.shutdown();
}

#[test]
fn metrics_request_exposes_live_counters_and_latency() {
    let handle = start(config(2, 8)).unwrap();
    let addr = handle.addr().to_string();

    // Before any job: the server-side registry is empty of cache
    // activity and the job-latency histogram has seen nothing.
    let before = client::metrics(&addr).unwrap();
    assert_eq!(before.counter(spa_server::obs_names::CACHE_HITS), None);

    let spec = interval_spec(42_800);
    let first = client::submit(&addr, &spec, |_| {}).unwrap();
    assert!(!first.cached);

    let metrics = client::metrics(&addr).unwrap();
    // Engine counters (process-global, merged in): the run collected
    // samples, so the sample counters are non-zero.
    let collected = metrics
        .counter(spa_core::obs_names::SAMPLES_COLLECTED)
        .expect("sample counter registered");
    assert!(
        collected >= 22,
        "one interval job collects >= 22: {collected}"
    );
    assert!(
        metrics
            .counter(spa_core::obs_names::SAMPLES_REQUESTED)
            .unwrap_or(0)
            >= 22
    );
    assert!(
        metrics
            .counter(spa_core::obs_names::CI_THRESHOLD_TESTS)
            .unwrap_or(0)
            > 0
    );
    // The interval was built by the indexed CI engine: its success
    // counts came from the sorted-sample index.
    assert!(
        metrics
            .counter(spa_core::obs_names::CI_INDEX_HITS)
            .unwrap_or(0)
            > 0
    );
    // Server-side: one miss executed, the job latency landed in a
    // bucket, and the queue gauge returned to zero.
    assert_eq!(
        metrics.counter(spa_server::obs_names::CACHE_MISSES),
        Some(1)
    );
    assert_eq!(metrics.gauge(spa_server::obs_names::QUEUE_DEPTH), Some(0));
    let latency = metrics
        .timing(spa_server::obs_names::JOB_LATENCY)
        .expect("job latency histogram registered");
    assert_eq!(latency.total + latency.underflow + latency.overflow, 1);
    assert_eq!(
        latency.buckets.iter().map(|b| b.count).sum::<u64>(),
        latency.total
    );
    assert!(latency.sum_ns > 0);

    // Resubmitting the identical spec is a cache hit — and the metrics
    // surface shows the increment.
    let second = client::submit(&addr, &spec, |_| {}).unwrap();
    assert!(second.cached);
    let after = client::metrics(&addr).unwrap();
    assert_eq!(after.counter(spa_server::obs_names::CACHE_HITS), Some(1));
    assert_eq!(after.counter(spa_server::obs_names::CACHE_MISSES), Some(1));
    assert_eq!(
        after
            .timing(spa_server::obs_names::JOB_LATENCY)
            .unwrap()
            .total
            + after
                .timing(spa_server::obs_names::JOB_LATENCY)
                .unwrap()
                .underflow
            + after
                .timing(spa_server::obs_names::JOB_LATENCY)
                .unwrap()
                .overflow,
        1,
        "a cache hit must not run (and therefore not time) a job"
    );

    // The same snapshot rides along in `status`.
    let handle_metrics = handle.metrics();
    assert_eq!(
        handle_metrics.counter(spa_server::obs_names::CACHE_HITS),
        Some(1)
    );
    handle.shutdown();
}

#[test]
fn per_client_quota_rejects_excess_in_flight_submissions() {
    let handle = start(ServerConfig {
        client_quota: 1,
        ..config(1, 8)
    })
    .unwrap();
    let addr = handle.addr().to_string();
    // One slow streaming submission occupies this client's whole quota.
    let first = {
        let addr = addr.clone();
        let spec = slow_spec(42_900);
        std::thread::spawn(move || client::submit(&addr, &spec, |_| {}))
    };
    assert!(
        wait_for(Duration::from_secs(10), || handle.stats().running == 1),
        "slow job never started: {:?}",
        handle.stats()
    );
    // A second, distinct job from the same IP exceeds the quota.
    let err = client::submit(&addr, &slow_spec(42_950), |_| {}).unwrap_err();
    match err {
        ServerError::Rejected(RejectReason::QuotaExceeded { limit }) => assert_eq!(limit, 1),
        other => panic!("expected a typed quota rejection, got {other}"),
    }
    assert_eq!(handle.stats().rejected, 1);

    handle.cancel_all();
    match first.join().unwrap() {
        Err(ServerError::JobFailed(msg)) => assert!(msg.contains("cancelled"), "{msg}"),
        other => panic!("cancelled job must fail, got {other:?}"),
    }
    // With the first stream finished, the quota slot is released (the
    // handler thread drops its guard moments after the client sees the
    // response, hence the retry) and a fresh submission is admitted.
    let mut outcome = None;
    assert!(
        wait_for(Duration::from_secs(10), || {
            match client::submit(&addr, &interval_spec(42_990), |_| {}) {
                Ok(o) => {
                    outcome = Some(o);
                    true
                }
                Err(ServerError::Rejected(RejectReason::QuotaExceeded { .. })) => false,
                Err(other) => panic!("unexpected error after quota release: {other}"),
            }
        }),
        "quota slot was never released"
    );
    assert!(matches!(
        outcome.unwrap().result,
        JobResult::Interval { .. }
    ));
    handle.shutdown();
}

#[test]
fn streaming_job_streams_shrinking_intervals_and_early_stops() {
    let handle = start(config(2, 8)).unwrap();
    let addr = handle.addr().to_string();
    let spec = streaming_spec(41_500, Some(0.5), 4096);
    let mut widths: Vec<f64> = Vec::new();
    let outcome = client::submit(&addr, &spec, |event| {
        if let Response::Progress {
            interval: Some((lo, hi)),
            ..
        } = event
        {
            widths.push(hi - lo);
        }
    })
    .unwrap();
    let JobResult::Streaming { report } = &outcome.result else {
        panic!("streaming job must return a streaming result");
    };
    assert_eq!(report.stop, StopReason::TargetWidth);
    assert!(report.width() <= 0.5, "{report:?}");
    assert!(
        report.samples < 4096,
        "the width target must stop the stream long before the cap"
    );
    assert!(!widths.is_empty(), "intervals stream live");
    for pair in widths.windows(2) {
        assert!(
            pair[1] <= pair[0] + 1e-12,
            "emitted widths shrink monotonically: {widths:?}"
        );
    }
    // A watch of the finished job answers immediately with the report.
    let watched = client::watch(&addr, outcome.job, |_| true).unwrap();
    assert_eq!(watched.result.as_ref(), Some(&outcome.result));
    handle.shutdown();
}

#[test]
fn status_surfaces_the_latest_streaming_interval_snapshot() {
    let handle = start(config(1, 8)).unwrap();
    let addr = handle.addr().to_string();
    // A stream with an unreachable cap stays live until cancelled.
    let submitter = {
        let addr = addr.clone();
        let spec = streaming_spec(41_600, None, 10_000_000);
        std::thread::spawn(move || client::submit(&addr, &spec, |_| {}))
    };
    let mut snap = None;
    assert!(
        wait_for(Duration::from_secs(20), || {
            let report = client::status_report(&addr).unwrap();
            match report.streaming.first() {
                Some(s) => {
                    snap = Some(*s);
                    true
                }
                None => false,
            }
        }),
        "status never surfaced a streaming snapshot"
    );
    let snap = snap.unwrap();
    assert!(snap.samples > 0 && snap.samples % 8 == 0, "{snap:?}");
    assert!(
        0.0 <= snap.lower && snap.lower <= snap.upper && snap.upper <= 1.0,
        "{snap:?}"
    );
    // A watcher attaching mid-stream is primed with the latest snapshot
    // and may detach at any time — the interval it saw is already valid.
    let watched = client::watch(&addr, snap.job, |_| false).unwrap();
    assert!(watched.result.is_none());
    assert_eq!(watched.progress_events, 1);
    handle.cancel_all();
    assert!(matches!(
        submitter.join().unwrap(),
        Err(ServerError::JobFailed(_))
    ));
    handle.shutdown();
}

#[test]
fn watch_of_an_unknown_job_fails_typed() {
    let handle = start(config(1, 4)).unwrap();
    let addr = handle.addr().to_string();
    match client::watch(&addr, 777, |_| true).unwrap_err() {
        ServerError::JobFailed(msg) => assert!(msg.contains("unknown job"), "{msg}"),
        other => panic!("expected a job failure, got {other}"),
    }
    handle.shutdown();
}

#[test]
fn old_client_wire_lines_round_trip_with_a_new_server() {
    let handle = start(config(1, 4)).unwrap();
    let stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = &stream;
    // Exactly the request line a pre-streaming client sends: the spec
    // carries no streaming-era fields.
    let spec_json = serde_json::to_string(&interval_spec(41_700)).unwrap();
    assert!(!spec_json.contains("streaming"), "{spec_json}");
    writeln!(writer, "{{\"type\":\"submit\",\"spec\":{spec_json}}}").unwrap();
    let mut reader = BufReader::new(&stream);
    let mut line = String::new();
    let mut saw_report = false;
    loop {
        line.clear();
        assert!(reader.read_line(&mut line).unwrap() > 0, "server hung up");
        let v: serde_json::Value = serde_json::from_str(line.trim()).unwrap();
        match v["type"].as_str().unwrap() {
            "accepted" => {}
            // Fixed-N progress lines elide the `interval` key entirely,
            // so an old client's strict parser sees its exact old shape.
            "progress" => assert!(v.get("interval").is_none(), "{v}"),
            "report" => {
                assert_eq!(v["result"]["kind"], "interval", "{v}");
                saw_report = true;
                break;
            }
            other => panic!("unexpected wire line {other}: {v}"),
        }
    }
    assert!(saw_report);
    // The status response elides its streaming section when empty, so
    // the old status shape survives byte-for-byte too.
    writeln!(writer, "{{\"type\":\"status\"}}").unwrap();
    line.clear();
    assert!(reader.read_line(&mut line).unwrap() > 0);
    let v: serde_json::Value = serde_json::from_str(line.trim()).unwrap();
    assert_eq!(v["type"], "status");
    assert!(v.get("streaming").is_none(), "{v}");
    handle.shutdown();
}

#[test]
fn status_request_reports_counters() {
    let handle = start(config(1, 4)).unwrap();
    let addr = handle.addr().to_string();
    let stats = client::status(&addr).unwrap();
    assert_eq!(stats.submitted, 0);
    assert!(!stats.shutting_down);
    client::shutdown(&addr).unwrap();
    assert!(
        wait_for(Duration::from_secs(5), || handle.stats().shutting_down),
        "shutdown request must flip the flag"
    );
    handle.join();
}

#[test]
fn band_jobs_share_one_cache_slot_across_respelled_quantile_lists() {
    // The canonical cache key sorts and dedups the quantile list, so a
    // respelled-but-equivalent request is the *same* job: the second
    // submission below must be answered from the result cache without
    // executing anything, and the payloads must be identical — the
    // single-flight guarantee the band mode inherits from the interval
    // path.
    let handle = start(config(2, 8)).unwrap();
    let addr = handle.addr().to_string();

    let first = client::submit(&addr, &band_spec(43_000, &[0.5, 0.9], Some(0.95)), |_| {}).unwrap();
    assert!(!first.cached);
    let JobResult::Band { report } = &first.result else {
        panic!("band job must return a band result, got {:?}", first.result);
    };
    assert_eq!(report.samples, 22, "C = F = 0.9 needs Eq. 8's 22 samples");
    assert_eq!(report.requested, 22);
    assert!(report.failures.is_clean());
    assert_eq!(report.quantiles.len(), 2);
    assert_eq!(report.quantiles[0].q, 0.5);
    assert_eq!(report.quantiles[1].q, 0.9);
    assert_eq!(report.cvar.map(|c| c.alpha), Some(0.95));

    let second = client::submit(
        &addr,
        &band_spec(43_000, &[0.9, 0.5, 0.50], Some(0.95)),
        |_| {},
    )
    .unwrap();
    assert!(
        second.cached,
        "a respelled quantile list must hit the canonical cache slot"
    );
    assert_eq!(second.progress_events, 0, "a cache hit does no sampling");
    assert_eq!(first.result, second.result);

    let stats = handle.stats();
    assert_eq!(stats.executed, 1, "single-flight: {stats:?}");
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.submitted, 2);

    // A genuinely different quantile list is a different job.
    let third = client::submit(
        &addr,
        &band_spec(43_000, &[0.5, 0.9, 0.99], Some(0.95)),
        |_| {},
    )
    .unwrap();
    assert!(!third.cached, "adding a quantile must change the cache key");

    // The metrics surface carries the band engine's process-global
    // counters: at least one build per executed band job, and at least
    // one quantile query per requested level.
    let metrics = client::metrics(&addr).unwrap();
    assert!(
        metrics
            .counter(spa_core::obs_names::BAND_BUILDS)
            .unwrap_or(0)
            >= 2,
        "two executed band jobs build two bands"
    );
    assert!(
        metrics
            .counter(spa_core::obs_names::BAND_QUANTILE_QUERIES)
            .unwrap_or(0)
            >= 5,
        "2 + 3 quantile levels were read off the bands"
    );
    assert!(
        metrics
            .counter(spa_core::obs_names::BAND_CVAR_QUERIES)
            .unwrap_or(0)
            >= 2
    );
    handle.shutdown();
}
