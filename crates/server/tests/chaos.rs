//! Chaos harness: seeded fault injection against a live server.
//!
//! Each test arms a deterministic [`ChaosSpec`] (or corrupts the durable
//! store directly) and asserts the self-healing contract: jobs whose
//! workers are killed or hung are requeued and finish with results
//! byte-identical to an undisturbed run, deadlines release their cache
//! reservations, crashed servers recover their completed results, and a
//! corrupted journal loses only its unreadable tail.
//!
//! Seed starts live in the 43_000–48_999 range (plus the shared helpers'
//! conventions) so the on-disk population cache never couples these
//! tests to the service or exec suites.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::time::{Duration, Instant};

use spa_core::property::Direction;
use spa_core::seq::Boundary;
use spa_server::chaos::ChaosSpec;
use spa_server::client;
use spa_server::exec::{self, ExecContext, ProgressUpdate};
use spa_server::obs_names;
use spa_server::spec::{validate, JobSpec, ModeSpec, NoiseSpec};
use spa_server::{start, JobResult, Request, Response, ServerConfig, ServerError};

fn config(workers: usize, queue_depth: usize) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_depth,
        job_threads: 2,
        ..ServerConfig::default()
    }
}

fn interval_spec(seed_start: u64) -> JobSpec {
    JobSpec {
        noise: NoiseSpec::Jitter { max_cycles: 2 },
        seed_start,
        round_size: 8,
        ..JobSpec::new(
            "blackscholes",
            ModeSpec::Interval {
                direction: Direction::AtMost,
            },
        )
    }
}

/// A streaming job over a threshold every execution satisfies: the
/// betting interval narrows toward 1 and hits the width target at a
/// deterministic, seed-independent sample count (a few hundred rounds
/// of 8), leaving a wide window to kill the server mid-stream.
fn streaming_spec(seed_start: u64) -> JobSpec {
    JobSpec {
        noise: NoiseSpec::Jitter { max_cycles: 0 },
        seed_start,
        round_size: 8,
        mode: ModeSpec::Streaming {
            direction: Direction::AtMost,
            threshold: 1e6,
            boundary: Boundary::Betting,
            target_width: Some(0.02),
            max_samples: 4096,
        },
        ..JobSpec::new(
            "blackscholes",
            ModeSpec::Interval {
                direction: Direction::AtMost,
            },
        )
    }
}

/// An interval job whose Eq. 8 sample requirement is astronomically
/// large — it runs until cancelled or expired.
fn slow_spec(seed_start: u64) -> JobSpec {
    JobSpec {
        confidence: 0.99999,
        proportion: 0.99999,
        round_size: 64,
        ..interval_spec(seed_start)
    }
}

/// A fresh per-test state directory under the system temp dir.
fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spa-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn wait_for(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

/// The canonical JSON rendering of a result — the byte-identity yardstick.
fn json(result: &JobResult) -> String {
    serde_json::to_string(result).expect("serialize result")
}

/// Runs `spec` directly through the executor (no server, no chaos) —
/// the undisturbed reference result.
fn direct_result(spec: &JobSpec) -> JobResult {
    let vjob = validate(spec.clone()).expect("valid spec");
    let cancel = AtomicBool::new(false);
    let progress = |_: ProgressUpdate| {};
    let ctx = ExecContext {
        threads: 2,
        cancel: &cancel,
        deadline: None,
        tick: &|_| (),
        progress: &progress,
        resume: None,
        on_checkpoint: None,
    };
    exec::execute(&vjob, &ctx).expect("direct execution succeeds")
}

#[test]
fn killed_server_resumes_a_streaming_job_without_bias() {
    let dir = state_dir("stream-resume");
    let spec = streaming_spec(44_000);

    // Phase 1: kill the server (abort, like the crash-restart test's
    // simulated kill -9 — no compaction, no goodbye) once at least two
    // round checkpoints have been journaled. Waiting for the second
    // guarantees the first record's append+flush fully returned, so the
    // kill can tear at most the in-flight tail record.
    let submitter = {
        let handle = start(ServerConfig {
            state_dir: Some(dir.clone()),
            ..config(1, 8)
        })
        .unwrap();
        let addr = handle.addr().to_string();
        let submitter = {
            let addr = addr.clone();
            let spec = spec.clone();
            std::thread::spawn(move || client::submit(&addr, &spec, |_| {}))
        };
        assert!(
            wait_for(Duration::from_secs(30), || {
                handle
                    .metrics()
                    .counter(obs_names::STREAM_CHECKPOINTS)
                    .unwrap_or(0)
                    >= 2
            }),
            "no round checkpoint was ever journaled"
        );
        handle.abort();
        submitter
    };
    assert!(
        submitter.join().unwrap().is_err(),
        "the killed stream must surface an error to its client"
    );

    // Phase 2: restart on the same state dir and resubmit the identical
    // spec — it must resume from the recovered checkpoint, not restart.
    let handle = start(ServerConfig {
        state_dir: Some(dir.clone()),
        ..config(1, 8)
    })
    .unwrap();
    assert!(
        handle
            .metrics()
            .counter(obs_names::STREAM_RECOVERED)
            .unwrap_or(0)
            >= 1,
        "restart must recover the journaled stream state"
    );
    let addr = handle.addr().to_string();
    let mut first_event_samples = None;
    let outcome = client::submit(&addr, &spec, |event| {
        if let Response::Progress { samples, .. } = event {
            first_event_samples.get_or_insert(*samples);
        }
    })
    .unwrap();
    assert!(
        !outcome.cached,
        "a preempted stream resumes, it isn't cached"
    );
    assert_eq!(
        handle.metrics().counter(obs_names::STREAM_RESUMED),
        Some(1),
        "the resubmission must pick up the checkpoint"
    );
    assert!(
        first_event_samples.unwrap_or(0) >= 16,
        "the resumed stream continues past the checkpoint instead of \
         restarting from n=0: first event at n={first_event_samples:?}"
    );

    // The bias-free contract: kill + resume lands on the exact result of
    // an uninterrupted run stopped at the same width target.
    assert_eq!(
        json(&outcome.result),
        json(&direct_result(&spec)),
        "resumed stream must be byte-identical to an undisturbed run"
    );
    let JobResult::Streaming { report } = &outcome.result else {
        panic!("streaming job must return a streaming result");
    };
    assert!(report.width() <= 0.02, "{report:?}");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_worker_is_requeued_and_result_is_byte_identical() {
    // Every round boundary rolls a kill, but the budget allows exactly
    // one: generation 0 dies at its first checkpoint, generation 1 runs
    // clean to completion.
    let handle = start(ServerConfig {
        chaos: Some(ChaosSpec {
            seed: 7,
            kill_prob: 1.0,
            budget: 1,
            ..ChaosSpec::default()
        }),
        ..config(1, 8)
    })
    .unwrap();
    let addr = handle.addr().to_string();
    let spec = interval_spec(43_000);
    let outcome = client::submit(&addr, &spec, |_| {}).unwrap();
    assert!(!outcome.cached);

    // The panic is caught at the worker's execution guard and the job
    // requeued in place — the worker thread itself survives, so no
    // respawn is expected here (that path is the hang test's).
    assert!(
        handle
            .metrics()
            .counter(obs_names::JOBS_REQUEUED)
            .unwrap_or(0)
            >= 1,
        "the killed execution must have been requeued"
    );
    assert_eq!(
        json(&outcome.result),
        json(&direct_result(&spec)),
        "recovery must reproduce the undisturbed result byte for byte"
    );
    handle.shutdown();
}

#[test]
fn hung_worker_is_detected_and_job_requeued() {
    // Generation 0 stalls 1.5 s at its first round boundary; the
    // heartbeat monitor (400 ms staleness — comfortably above a real
    // round, comfortably below the stall) disowns it and requeues, and
    // the budget keeps generation 1 stall-free.
    let handle = start(ServerConfig {
        hang_timeout: Some(Duration::from_millis(400)),
        chaos: Some(ChaosSpec {
            seed: 11,
            hang_prob: 1.0,
            hang_ms: 1500,
            budget: 1,
            ..ChaosSpec::default()
        }),
        ..config(1, 8)
    })
    .unwrap();
    let addr = handle.addr().to_string();
    let spec = interval_spec(43_100);
    let outcome = client::submit(&addr, &spec, |_| {}).unwrap();
    assert!(!outcome.cached);

    let metrics = handle.metrics();
    assert!(
        metrics.counter(obs_names::WORKERS_RESTARTED).unwrap_or(0) >= 1,
        "a replacement worker must have been spawned"
    );
    assert!(
        metrics.counter(obs_names::JOBS_REQUEUED).unwrap_or(0) >= 1,
        "the hung job must have been requeued"
    );
    assert_eq!(
        json(&outcome.result),
        json(&direct_result(&spec)),
        "the requeued execution must reproduce the undisturbed result"
    );
    handle.shutdown();
}

#[test]
fn deadline_expires_with_a_typed_failure_and_releases_the_reservation() {
    let handle = start(config(1, 8)).unwrap();
    let addr = handle.addr().to_string();
    let spec = JobSpec {
        deadline_ms: Some(200),
        ..slow_spec(48_000)
    };
    let err = client::submit(&addr, &spec, |_| {}).unwrap_err();
    match err {
        ServerError::JobFailed(msg) => assert!(msg.contains("deadline"), "{msg}"),
        other => panic!("expected a typed deadline failure, got {other}"),
    }
    assert_eq!(handle.metrics().counter(obs_names::JOBS_EXPIRED), Some(1));

    // The reservation was released with the failure: an identical
    // resubmission executes afresh (and expires again) instead of
    // wedging on the dead key.
    let err = client::submit(&addr, &spec, |_| {}).unwrap_err();
    assert!(matches!(err, ServerError::JobFailed(msg) if msg.contains("deadline")));
    let stats = handle.stats();
    assert_eq!(stats.executed, 2, "{stats:?}");
    assert_eq!(stats.failed, 2, "{stats:?}");
    assert_eq!(handle.metrics().counter(obs_names::JOBS_EXPIRED), Some(2));
    handle.shutdown();
}

#[test]
fn crash_restart_answers_from_the_journal() {
    let dir = state_dir("crash-restart");
    let spec = interval_spec(43_500);
    let first = {
        let handle = start(ServerConfig {
            state_dir: Some(dir.clone()),
            ..config(2, 8)
        })
        .unwrap();
        let addr = handle.addr().to_string();
        let outcome = client::submit(&addr, &spec, |_| {}).unwrap();
        assert!(!outcome.cached);
        // Simulated kill -9: no compaction, the journal keeps exactly
        // what the last append flushed.
        handle.abort();
        outcome.result
    };

    let handle = start(ServerConfig {
        state_dir: Some(dir.clone()),
        ..config(2, 8)
    })
    .unwrap();
    assert_eq!(handle.metrics().counter(obs_names::STORE_REPLAYED), Some(1));
    let addr = handle.addr().to_string();
    let again = client::submit(&addr, &spec, |_| {}).unwrap();
    assert!(again.cached, "recovery must answer from the replayed store");
    assert_eq!(again.progress_events, 0, "a recovered hit does no sampling");
    assert_eq!(
        json(&first),
        json(&again.result),
        "the recovered result must be byte-identical to the original"
    );
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_corruption_truncates_the_tail_and_recovers_the_prefix() {
    let dir = state_dir("corrupt-journal");
    let spec_a = interval_spec(43_300);
    let spec_b = interval_spec(43_400);
    let first_a = {
        let handle = start(ServerConfig {
            state_dir: Some(dir.clone()),
            ..config(2, 8)
        })
        .unwrap();
        let addr = handle.addr().to_string();
        let a = client::submit(&addr, &spec_a, |_| {}).unwrap();
        let b = client::submit(&addr, &spec_b, |_| {}).unwrap();
        assert!(!a.cached && !b.cached);
        handle.abort();
        a.result
    };

    // A torn append: the length prefix promises far more bytes than the
    // file holds, so replay must stop exactly there.
    let journal = dir.join("journal.spastore");
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&journal)
        .unwrap();
    f.write_all(&[0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x11, 0x22])
        .unwrap();
    drop(f);

    let handle = start(ServerConfig {
        state_dir: Some(dir.clone()),
        ..config(2, 8)
    })
    .unwrap();
    let metrics = handle.metrics();
    assert_eq!(metrics.counter(obs_names::STORE_REPLAYED), Some(2));
    assert_eq!(metrics.counter(obs_names::STORE_TRUNCATED), Some(1));
    let addr = handle.addr().to_string();
    let again = client::submit(&addr, &spec_a, |_| {}).unwrap();
    assert!(again.cached, "the intact prefix must still answer");
    assert_eq!(json(&first_a), json(&again.result));
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_shutdown_compacts_the_journal_into_the_snapshot() {
    let dir = state_dir("compact");
    {
        let handle = start(ServerConfig {
            state_dir: Some(dir.clone()),
            ..config(2, 8)
        })
        .unwrap();
        let addr = handle.addr().to_string();
        client::submit(&addr, &interval_spec(43_800), |_| {}).unwrap();
        client::submit(&addr, &interval_spec(43_900), |_| {}).unwrap();
        handle.shutdown();
    }
    let journal = std::fs::metadata(dir.join("journal.spastore")).unwrap();
    assert_eq!(journal.len(), 12, "compaction empties the journal");
    let snapshot = std::fs::metadata(dir.join("snapshot.spastore")).unwrap();
    assert!(snapshot.len() > 12, "both results live in the snapshot");

    let handle = start(ServerConfig {
        state_dir: Some(dir.clone()),
        ..config(2, 8)
    })
    .unwrap();
    assert_eq!(handle.metrics().counter(obs_names::STORE_REPLAYED), Some(2));
    let addr = handle.addr().to_string();
    assert!(
        client::submit(&addr, &interval_spec(43_800), |_| {})
            .unwrap()
            .cached
    );
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn client_drop_mid_stream_neither_wedges_the_key_nor_leaks_quota() {
    // client_quota = 1: if the dead handler leaked its slot, the later
    // resubmission from this same IP would be rejected.
    let handle = start(ServerConfig {
        client_quota: 1,
        ..config(1, 8)
    })
    .unwrap();
    let addr = handle.addr().to_string();
    // A somewhat larger job (Eq. 8 needs 66 samples at C = 0.999) so the
    // disconnect usually lands mid-execution.
    let spec = JobSpec {
        confidence: 0.999,
        ..interval_spec(43_600)
    };

    {
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let line = serde_json::to_string(&Request::Submit { spec: spec.clone() }).unwrap();
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        stream.flush().unwrap();
        // Wait for the acceptance so the job is definitely admitted,
        // then vanish without reading the stream.
        let mut reader = BufReader::new(&stream);
        let mut accepted = String::new();
        reader.read_line(&mut accepted).unwrap();
        assert!(accepted.contains("accepted"), "{accepted}");
    }

    // The orphaned job still runs to completion and publishes.
    assert!(
        wait_for(Duration::from_secs(30), || handle.stats().completed == 1),
        "orphaned job never completed: {:?}",
        handle.stats()
    );
    // Both the key and the quota slot are healthy: the same client IP
    // resubmits and is answered from cache. (The dead handler's quota
    // guard drops with the handler thread, so retry briefly.)
    let mut cached = false;
    assert!(
        wait_for(Duration::from_secs(10), || {
            match client::submit(&addr, &spec, |_| {}) {
                Ok(outcome) => {
                    cached = outcome.cached;
                    true
                }
                Err(ServerError::Rejected(_)) => false,
                Err(other) => panic!("unexpected resubmission error: {other}"),
            }
        }),
        "quota slot was never released after the disconnect"
    );
    assert!(
        cached,
        "the orphaned job's result must be served from cache"
    );
    handle.shutdown();
}
