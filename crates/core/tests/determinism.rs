//! Differential tests for the staged pipeline refactor.
//!
//! The pipeline adapters ([`SamplerSource`], [`FnSource`],
//! [`IdentityEvaluator`]) claim to be behavior-preserving: a scalar
//! workload routed through [`Pipeline`] must produce *byte-identical*
//! reports to the pre-pipeline scalar path, for any batch size. These
//! tests serialize both sides with `serde_json` and compare the bytes,
//! so even a formatting-neutral numeric drift (e.g. `-0.0` vs `0.0`)
//! would be caught.

use spa_core::fault::{RetryPolicy, SampleError};
use spa_core::pipeline::{FnSource, IdentityEvaluator, Pipeline, SamplerSource};
use spa_core::spa::{Direction, Spa};

/// A deterministic scalar sampler with enough structure to exercise the
/// CI machinery (values spread over [1.0, 1.9]).
fn scalar(seed: u64) -> f64 {
    1.0 + (seed % 10) as f64 * 0.1
}

/// A deterministic fallible sampler: every 5th seed times out once per
/// attempt parity, every 7th reports NaN.
fn flaky(seed: u64) -> Result<f64, SampleError> {
    if seed % 7 == 0 {
        return Err(SampleError::InvalidMetric { value: f64::NAN });
    }
    if seed % 5 == 0 {
        return Err(SampleError::Timeout);
    }
    Ok(scalar(seed))
}

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("report serializes")
}

#[test]
fn scalar_reports_are_byte_identical_through_the_pipeline() {
    let spa = Spa::builder().proportion(0.5).build().unwrap();
    let direct = spa.run(&scalar, 11, Direction::AtMost).unwrap();
    let piped = spa
        .run_fallible(
            &Pipeline::new(SamplerSource(scalar), IdentityEvaluator),
            11,
            Direction::AtMost,
            &RetryPolicy::no_retry(),
        )
        .unwrap();
    assert_eq!(json(&direct), json(&piped));
}

#[test]
fn fallible_reports_are_byte_identical_through_the_pipeline() {
    let spa = Spa::builder().proportion(0.5).build().unwrap();
    let policy = RetryPolicy::new(2);
    let direct = spa.collect_samples_fallible(&flaky, 3, Some(40), &policy);
    let piped = spa.collect_samples_fallible(
        &Pipeline::new(FnSource(flaky), IdentityEvaluator),
        3,
        Some(40),
        &policy,
    );
    assert_eq!(json(&direct), json(&piped));
    // The failure accounting is preserved too, not just the samples.
    assert_eq!(direct.failures, piped.failures);
}

#[test]
fn pipeline_reports_are_byte_identical_across_batch_sizes() {
    let mut renders = Vec::new();
    for batch in [1usize, 4, 16] {
        let spa = Spa::builder()
            .proportion(0.5)
            .batch_size(batch)
            .build()
            .unwrap();
        let report = spa
            .run_fallible(
                &Pipeline::new(FnSource(flaky), IdentityEvaluator),
                0,
                Direction::AtLeast,
                &RetryPolicy::new(3),
            )
            .unwrap();
        renders.push(json(&report));
    }
    assert_eq!(renders[0], renders[1]);
    assert_eq!(renders[1], renders[2]);
}
