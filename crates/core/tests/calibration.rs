//! Monte Carlo coverage calibration (the paper's §6.2 claim): over many
//! independently drawn sample sets, SPA's confidence intervals must
//! contain the true population quantile at least as often as the nominal
//! confidence promises — and keep doing so on the duplicate-heavy data
//! where BCa bootstrapping degenerates (§6.4 / Fig. 15).
//!
//! Everything is seeded (`ChaCha8Rng`), so the empirical coverage rates
//! are deterministic and the assertions are non-flaky: changing an
//! algorithm in a way that moves an interval is exactly what this suite
//! is meant to catch. The nominal confidence is `C = 0.9`; the
//! *guaranteed* two-sided floor is `2C − 1` (§4.1) and coverage at some
//! `(F, n)` combinations genuinely sits between the floor and `C`
//! (discreteness makes the one-sided cutoffs wobble with `n` — see
//! `coverage.rs` and EXPERIMENTS.md note A). The configurations below
//! are chosen in the conservative regime the paper evaluates, where
//! Clopper–Pearson slack puts expected coverage ≥ `C` with a ≥ 4σ margin
//! at this trial count, so the fixed-seed empirical rates clear the
//! nominal line without flakiness.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use spa_baselines::bootstrap::bca_ci;
use spa_baselines::BaselineError;
use spa_core::ci::{ci_adaptive, ci_exact, ci_granular, ConfidenceInterval};
use spa_core::property::Direction;
use spa_core::smc::SmcEngine;
use spa_stats::descriptive::{quantile, QuantileMethod};

const CONFIDENCE: f64 = 0.9;
const TRIALS: usize = 2000;
/// Granularity for the grid searches. Coarse enough that the grid's
/// outward rounding keeps the granular/adaptive intervals at least as
/// wide as the sample spacing near the target quantile.
const GRAIN: f64 = 0.25;
/// Size of the reference draw used to stand in for the population when
/// computing the "true" quantile. Its Monte Carlo error is negligible
/// next to CI widths from 30-sample trials.
const REFERENCE_DRAWS: usize = 200_000;

/// One standard normal variate by Box–Muller (`rand` 0.8 ships no
/// normal distribution and the workspace deliberately adds no deps).
fn standard_normal(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0_f64 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[derive(Clone, Copy, Debug)]
enum Population {
    /// N(10, 2²) — the well-behaved case.
    Gaussian,
    /// A 70/30 mixture of N(5, 1²) and N(15, 1²). The heavy mode keeps
    /// the median inside a region of healthy density while the far mode
    /// stresses the search with a wide empty gap in every sample.
    Bimodal,
    /// N(10, 2²) rounded to the nearest 2.0 — roughly seven distinct
    /// values, the §6.4 duplicate regime that breaks BCa.
    DuplicateHeavy,
}

impl Population {
    fn draw(self, rng: &mut ChaCha8Rng) -> f64 {
        match self {
            Population::Gaussian => 10.0 + 2.0 * standard_normal(rng),
            Population::Bimodal => {
                let mode = if rng.gen_bool(0.7) { 5.0 } else { 15.0 };
                mode + standard_normal(rng)
            }
            Population::DuplicateHeavy => ((10.0 + 2.0 * standard_normal(rng)) / 2.0).round() * 2.0,
        }
    }

    /// The population `q`-quantile, estimated from a large fixed-seed
    /// reference draw (distribution-agnostic, deterministic).
    fn true_quantile(self, q: f64) -> f64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0xCA11B_0000);
        let reference: Vec<f64> = (0..REFERENCE_DRAWS).map(|_| self.draw(&mut rng)).collect();
        quantile(&reference, q, QuantileMethod::LowerRank).unwrap()
    }
}

struct Coverage {
    exact: usize,
    granular: usize,
    adaptive: usize,
}

/// Runs `TRIALS` independent SPA constructions against one population
/// and counts how often each strategy's interval contains the truth.
fn spa_coverage(
    population: Population,
    direction: Direction,
    proportion: f64,
    samples_per_trial: usize,
) -> Coverage {
    let engine = SmcEngine::new(CONFIDENCE, proportion).unwrap();
    let truth = population.true_quantile(direction.target_quantile(proportion));
    let mut rng = ChaCha8Rng::seed_from_u64(0xCA11B_0001);
    let mut coverage = Coverage {
        exact: 0,
        granular: 0,
        adaptive: 0,
    };
    let covers = |ci: &ConfidenceInterval| ci.contains(truth) as usize;
    for _ in 0..TRIALS {
        let xs: Vec<f64> = (0..samples_per_trial)
            .map(|_| population.draw(&mut rng))
            .collect();
        coverage.exact += covers(&ci_exact(&engine, &xs, direction).unwrap());
        coverage.granular += covers(&ci_granular(&engine, &xs, direction, GRAIN).unwrap());
        coverage.adaptive += covers(&ci_adaptive(&engine, &xs, direction, GRAIN, None).unwrap());
    }
    coverage
}

fn assert_covers(name: &str, population: Population, hits: usize) {
    let rate = hits as f64 / TRIALS as f64;
    assert!(
        rate >= CONFIDENCE,
        "{name} on {population:?}: empirical coverage {rate:.3} < nominal {CONFIDENCE}"
    );
}

fn assert_all_cover(population: Population, direction: Direction, proportion: f64, n: usize) {
    let c = spa_coverage(population, direction, proportion, n);
    assert_covers("ci_exact", population, c.exact);
    assert_covers("ci_granular", population, c.granular);
    assert_covers("ci_adaptive", population, c.adaptive);
}

#[test]
fn gaussian_median_coverage_meets_nominal() {
    assert_all_cover(Population::Gaussian, Direction::AtMost, 0.5, 30);
}

#[test]
fn bimodal_median_coverage_meets_nominal() {
    assert_all_cover(Population::Bimodal, Direction::AtMost, 0.5, 30);
}

#[test]
fn duplicate_heavy_coverage_meets_nominal() {
    assert_all_cover(Population::DuplicateHeavy, Direction::AtMost, 0.5, 30);
}

#[test]
fn at_least_direction_low_quantile_coverage_meets_nominal() {
    // The paper's speedup phrasing: "at least X in F = 90 % of runs"
    // targets the 0.1-quantile through Direction::AtLeast.
    assert_all_cover(Population::Gaussian, Direction::AtLeast, 0.9, 34);
    assert_all_cover(Population::Bimodal, Direction::AtLeast, 0.9, 34);
    assert_all_cover(Population::DuplicateHeavy, Direction::AtLeast, 0.9, 34);
}

#[test]
fn bca_degenerates_on_duplicates_where_spa_still_covers() {
    // §6.4 / Fig. 15: on duplicate-heavy data the BCa bootstrap's bias
    // correction or acceleration becomes undefined and it returns Null
    // (with ~7 atoms over 40 samples the delete-one jackknife medians
    // are almost always all identical); SPA's SMC construction is
    // indifferent to ties. Reproduce both halves on the same per-trial
    // sample sets.
    const BCA_TRIALS: usize = 120;
    let population = Population::DuplicateHeavy;
    let engine = SmcEngine::new(CONFIDENCE, 0.5).unwrap();
    let truth = population.true_quantile(0.5);
    let mut rng = ChaCha8Rng::seed_from_u64(0xCA11B_0002);
    let mut bca_failures = 0usize;
    let mut spa_hits = 0usize;
    for _ in 0..BCA_TRIALS {
        let xs: Vec<f64> = (0..40).map(|_| population.draw(&mut rng)).collect();
        match bca_ci(&xs, 0.5, CONFIDENCE, 1000, &mut rng) {
            Err(BaselineError::BootstrapDegenerate { .. }) => bca_failures += 1,
            Err(e) => panic!("unexpected BCa error: {e}"),
            Ok(_) => {}
        }
        spa_hits += ci_exact(&engine, &xs, Direction::AtMost)
            .unwrap()
            .contains(truth) as usize;
    }
    assert!(
        bca_failures > BCA_TRIALS / 2,
        "expected BCa to return Null on most duplicate-heavy draws, got {bca_failures}/{BCA_TRIALS}"
    );
    let spa_rate = spa_hits as f64 / BCA_TRIALS as f64;
    assert!(
        spa_rate >= CONFIDENCE,
        "SPA coverage {spa_rate:.3} on the BCa failure workload"
    );
}

#[test]
fn bca_always_degenerates_on_constant_data() {
    // The deterministic corner of the failure mode: constant data is
    // rejected before any resampling, while SPA returns a degenerate
    // but covering interval.
    let xs = vec![4.0; 30];
    let mut rng = ChaCha8Rng::seed_from_u64(0xCA11B_0003);
    assert!(matches!(
        bca_ci(&xs, 0.5, CONFIDENCE, 1000, &mut rng),
        Err(BaselineError::BootstrapDegenerate { .. })
    ));
    let engine = SmcEngine::new(CONFIDENCE, 0.5).unwrap();
    let ci = ci_exact(&engine, &xs, Direction::AtMost).unwrap();
    assert!(ci.contains(4.0));
}
