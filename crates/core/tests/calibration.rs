//! Monte Carlo coverage calibration (the paper's §6.2 claim): over many
//! independently drawn sample sets, SPA's confidence intervals must
//! contain the true population quantile at least as often as the nominal
//! confidence promises — and keep doing so on the duplicate-heavy data
//! where BCa bootstrapping degenerates (§6.4 / Fig. 15).
//!
//! Everything is seeded (`ChaCha8Rng`), so the empirical coverage rates
//! are deterministic and the assertions are non-flaky: changing an
//! algorithm in a way that moves an interval is exactly what this suite
//! is meant to catch. The nominal confidence is `C = 0.9`; the
//! *guaranteed* two-sided floor is `2C − 1` (§4.1) and coverage at some
//! `(F, n)` combinations genuinely sits between the floor and `C`
//! (discreteness makes the one-sided cutoffs wobble with `n` — see
//! `coverage.rs` and EXPERIMENTS.md note A). The configurations below
//! are chosen in the conservative regime the paper evaluates, where
//! Clopper–Pearson slack puts expected coverage ≥ `C` with a ≥ 4σ margin
//! at this trial count, so the fixed-seed empirical rates clear the
//! nominal line without flakiness.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use spa_baselines::bootstrap::bca_ci;
use spa_baselines::BaselineError;
use spa_core::band::CdfBand;
use spa_core::ci::{ci_adaptive, ci_exact, ci_granular, ConfidenceInterval};
use spa_core::ci_engine::SortedSamples;
use spa_core::fault::{RetryPolicy, SampleError};
use spa_core::property::{Direction, MetricProperty};
use spa_core::rounds::round_seeds;
use spa_core::seq::{run_anytime, AnytimeConfig, AnytimeRun, Boundary, SeqSnapshot, StopReason};
use spa_core::smc::SmcEngine;
use spa_stats::descriptive::{quantile, QuantileMethod};

const CONFIDENCE: f64 = 0.9;
const TRIALS: usize = 2000;
/// Granularity for the grid searches. Coarse enough that the grid's
/// outward rounding keeps the granular/adaptive intervals at least as
/// wide as the sample spacing near the target quantile.
const GRAIN: f64 = 0.25;
/// Size of the reference draw used to stand in for the population when
/// computing the "true" quantile. Its Monte Carlo error is negligible
/// next to CI widths from 30-sample trials.
const REFERENCE_DRAWS: usize = 200_000;

/// One standard normal variate by Box–Muller (`rand` 0.8 ships no
/// normal distribution and the workspace deliberately adds no deps).
fn standard_normal(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0_f64 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[derive(Clone, Copy, Debug)]
enum Population {
    /// N(10, 2²) — the well-behaved case.
    Gaussian,
    /// A 70/30 mixture of N(5, 1²) and N(15, 1²). The heavy mode keeps
    /// the median inside a region of healthy density while the far mode
    /// stresses the search with a wide empty gap in every sample.
    Bimodal,
    /// N(10, 2²) rounded to the nearest 2.0 — roughly seven distinct
    /// values, the §6.4 duplicate regime that breaks BCa.
    DuplicateHeavy,
    /// Lognormal `10 · exp(0.75 Z)` — median 10 like the others but a
    /// heavy right tail (skewness ≈ 2.9), the regime where tail-risk
    /// summaries like CVaR earn their keep.
    HeavyTailed,
}

impl Population {
    fn draw(self, rng: &mut ChaCha8Rng) -> f64 {
        match self {
            Population::Gaussian => 10.0 + 2.0 * standard_normal(rng),
            Population::Bimodal => {
                let mode = if rng.gen_bool(0.7) { 5.0 } else { 15.0 };
                mode + standard_normal(rng)
            }
            Population::DuplicateHeavy => ((10.0 + 2.0 * standard_normal(rng)) / 2.0).round() * 2.0,
            Population::HeavyTailed => 10.0 * (0.75 * standard_normal(rng)).exp(),
        }
    }

    /// A large fixed-seed reference draw standing in for the population
    /// when computing "true" quantiles and tail expectations.
    fn reference_draws(self) -> Vec<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(0xCA11B_0000);
        (0..REFERENCE_DRAWS).map(|_| self.draw(&mut rng)).collect()
    }

    /// The population `q`-quantile, estimated from a large fixed-seed
    /// reference draw (distribution-agnostic, deterministic).
    fn true_quantile(self, q: f64) -> f64 {
        quantile(&self.reference_draws(), q, QuantileMethod::LowerRank).unwrap()
    }

    /// The analytic population CDF, for the exact Kolmogorov–Smirnov
    /// distance the DKW band-coverage check needs (a reference-draw EDF
    /// would add its own Monte Carlo error right at the decision
    /// boundary).
    fn true_cdf(self, x: f64) -> f64 {
        match self {
            Population::Gaussian => normal_cdf((x - 10.0) / 2.0),
            Population::Bimodal => 0.7 * normal_cdf(x - 5.0) + 0.3 * normal_cdf(x - 15.0),
            // X = 2·round(5 + Z), so X ≤ x exactly when 5 + Z < m + 0.5
            // with m = ⌊x/2⌋ (round-half-away never lands below).
            Population::DuplicateHeavy => normal_cdf((x / 2.0).floor() + 0.5 - 5.0),
            Population::HeavyTailed => {
                if x <= 0.0 {
                    0.0
                } else {
                    normal_cdf((x / 10.0).ln() / 0.75)
                }
            }
        }
    }

    /// The exact sup-distance `D = sup_x |F̂(x) − F(x)|` between the
    /// empirical CDF of `sorted` (ascending) and the population CDF.
    fn ks_statistic(self, sorted: &[f64]) -> f64 {
        let n = sorted.len() as f64;
        match self {
            // Both F̂ and F jump only on the even atoms, so the exact
            // sup is a max over an atom grid spanning all the mass
            // (round(5 + Z) beyond [−5, 15] has probability < 1e−20).
            Population::DuplicateHeavy => (-5..=15)
                .map(|m| {
                    let x = 2.0 * m as f64;
                    let edf = sorted.partition_point(|&s| s <= x) as f64 / n;
                    (edf - self.true_cdf(x)).abs()
                })
                .fold(0.0, f64::max),
            // Continuous F: the sup is attained approaching an order
            // statistic from either side.
            _ => sorted
                .iter()
                .enumerate()
                .map(|(i, &x)| {
                    let f = self.true_cdf(x);
                    (f - i as f64 / n).max((i + 1) as f64 / n - f)
                })
                .fold(0.0, f64::max),
        }
    }
}

/// Φ by Abramowitz–Stegun 26.2.17 (|error| < 7.5e−8 — four orders of
/// magnitude below anything the coverage decisions compare against).
fn normal_cdf(x: f64) -> f64 {
    if x < 0.0 {
        return 1.0 - normal_cdf(-x);
    }
    let t = 1.0 / (1.0 + 0.231_641_9 * x);
    let poly = t
        * (0.319_381_530
            + t * (-0.356_563_782
                + t * (1.781_477_937 + t * (-1.821_255_978 + t * 1.330_274_429))));
    let pdf = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
    1.0 - pdf * poly
}

struct Coverage {
    exact: usize,
    granular: usize,
    adaptive: usize,
}

/// Runs `TRIALS` independent SPA constructions against one population
/// and counts how often each strategy's interval contains the truth.
fn spa_coverage(
    population: Population,
    direction: Direction,
    proportion: f64,
    samples_per_trial: usize,
) -> Coverage {
    let engine = SmcEngine::new(CONFIDENCE, proportion).unwrap();
    let truth = population.true_quantile(direction.target_quantile(proportion));
    let mut rng = ChaCha8Rng::seed_from_u64(0xCA11B_0001);
    let mut coverage = Coverage {
        exact: 0,
        granular: 0,
        adaptive: 0,
    };
    let covers = |ci: &ConfidenceInterval| ci.contains(truth) as usize;
    for _ in 0..TRIALS {
        let xs: Vec<f64> = (0..samples_per_trial)
            .map(|_| population.draw(&mut rng))
            .collect();
        coverage.exact += covers(&ci_exact(&engine, &xs, direction).unwrap());
        coverage.granular += covers(&ci_granular(&engine, &xs, direction, GRAIN).unwrap());
        coverage.adaptive += covers(&ci_adaptive(&engine, &xs, direction, GRAIN, None).unwrap());
    }
    coverage
}

fn assert_covers(name: &str, population: Population, hits: usize) {
    let rate = hits as f64 / TRIALS as f64;
    assert!(
        rate >= CONFIDENCE,
        "{name} on {population:?}: empirical coverage {rate:.3} < nominal {CONFIDENCE}"
    );
}

fn assert_all_cover(population: Population, direction: Direction, proportion: f64, n: usize) {
    let c = spa_coverage(population, direction, proportion, n);
    assert_covers("ci_exact", population, c.exact);
    assert_covers("ci_granular", population, c.granular);
    assert_covers("ci_adaptive", population, c.adaptive);
}

#[test]
fn gaussian_median_coverage_meets_nominal() {
    assert_all_cover(Population::Gaussian, Direction::AtMost, 0.5, 30);
}

#[test]
fn bimodal_median_coverage_meets_nominal() {
    assert_all_cover(Population::Bimodal, Direction::AtMost, 0.5, 30);
}

#[test]
fn duplicate_heavy_coverage_meets_nominal() {
    assert_all_cover(Population::DuplicateHeavy, Direction::AtMost, 0.5, 30);
}

#[test]
fn heavy_tailed_median_coverage_meets_nominal() {
    // SPA's order-statistic intervals are distribution-free over
    // continuous populations, so the lognormal case must calibrate
    // exactly like the Gaussian one despite the skew.
    assert_all_cover(Population::HeavyTailed, Direction::AtMost, 0.5, 30);
}

#[test]
fn at_least_direction_low_quantile_coverage_meets_nominal() {
    // The paper's speedup phrasing: "at least X in F = 90 % of runs"
    // targets the 0.1-quantile through Direction::AtLeast.
    assert_all_cover(Population::Gaussian, Direction::AtLeast, 0.9, 34);
    assert_all_cover(Population::Bimodal, Direction::AtLeast, 0.9, 34);
    assert_all_cover(Population::DuplicateHeavy, Direction::AtLeast, 0.9, 34);
}

#[test]
fn bca_degenerates_on_duplicates_where_spa_still_covers() {
    // §6.4 / Fig. 15: on duplicate-heavy data the BCa bootstrap's bias
    // correction or acceleration becomes undefined and it returns Null
    // (with ~7 atoms over 40 samples the delete-one jackknife medians
    // are almost always all identical); SPA's SMC construction is
    // indifferent to ties. Reproduce both halves on the same per-trial
    // sample sets.
    const BCA_TRIALS: usize = 120;
    let population = Population::DuplicateHeavy;
    let engine = SmcEngine::new(CONFIDENCE, 0.5).unwrap();
    let truth = population.true_quantile(0.5);
    let mut rng = ChaCha8Rng::seed_from_u64(0xCA11B_0002);
    let mut bca_failures = 0usize;
    let mut spa_hits = 0usize;
    for _ in 0..BCA_TRIALS {
        let xs: Vec<f64> = (0..40).map(|_| population.draw(&mut rng)).collect();
        match bca_ci(&xs, 0.5, CONFIDENCE, 1000, &mut rng) {
            Err(BaselineError::BootstrapDegenerate { .. }) => bca_failures += 1,
            Err(e) => panic!("unexpected BCa error: {e}"),
            Ok(_) => {}
        }
        spa_hits += ci_exact(&engine, &xs, Direction::AtMost)
            .unwrap()
            .contains(truth) as usize;
    }
    assert!(
        bca_failures > BCA_TRIALS / 2,
        "expected BCa to return Null on most duplicate-heavy draws, got {bca_failures}/{BCA_TRIALS}"
    );
    let spa_rate = spa_hits as f64 / BCA_TRIALS as f64;
    assert!(
        spa_rate >= CONFIDENCE,
        "SPA coverage {spa_rate:.3} on the BCa failure workload"
    );
}

#[test]
fn bca_always_degenerates_on_constant_data() {
    // The deterministic corner of the failure mode: constant data is
    // rejected before any resampling, while SPA returns a degenerate
    // but covering interval.
    let xs = vec![4.0; 30];
    let mut rng = ChaCha8Rng::seed_from_u64(0xCA11B_0003);
    assert!(matches!(
        bca_ci(&xs, 0.5, CONFIDENCE, 1000, &mut rng),
        Err(BaselineError::BootstrapDegenerate { .. })
    ));
    let engine = SmcEngine::new(CONFIDENCE, 0.5).unwrap();
    let ci = ci_exact(&engine, &xs, Direction::AtMost).unwrap();
    assert!(ci.contains(4.0));
}

// ---------------------------------------------------------------------
// Anytime-valid confidence sequences (the `spa_core::seq` engine).
//
// Fixed-N coverage above is checked at one predeclared stopping time;
// the claim a confidence sequence makes is stronger — coverage holds
// simultaneously over *every* stopping time, including data-dependent
// ones. The adversary below uses the worst stopping rule there is:
// stop at the first update whose interval excludes the truth (a rule
// that makes any fixed-N interval's coverage collapse toward zero as
// the horizon grows). Time-uniform validity means even this adversary
// wins at most `α` of the trials.
// ---------------------------------------------------------------------

const SEQ_TRIALS: usize = 500;
const SEQ_MAX_N: u64 = 512;
const SEQ_ROUND: u64 = 8;

/// Runs `SEQ_TRIALS` Bernoulli(`p`) streams against one boundary and
/// counts the trials where the adversary (stop at the first interval
/// excluding `p`) never gets to stop — i.e. the sequence covered `p`
/// uniformly over the whole horizon.
fn seq_uniform_coverage(boundary: Boundary, p: f64, seed: u64) -> usize {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut covered = 0usize;
    for _ in 0..SEQ_TRIALS {
        let mut run = AnytimeRun::new(boundary.sequence(CONFIDENCE).unwrap());
        let mut excluded = false;
        while run.samples() < SEQ_MAX_N {
            let outcomes: Vec<bool> = (0..SEQ_ROUND).map(|_| rng.gen_bool(p)).collect();
            let snap = run.observe(&outcomes);
            if p < snap.lower || snap.upper < p {
                excluded = true;
                break;
            }
        }
        covered += usize::from(!excluded);
    }
    covered
}

fn assert_uniform_coverage(boundary: Boundary, p: f64, seed: u64) {
    let covered = seq_uniform_coverage(boundary, p, seed);
    let rate = covered as f64 / SEQ_TRIALS as f64;
    assert!(
        rate >= CONFIDENCE,
        "{boundary} sequence at p={p}: optional-stopping coverage \
         {rate:.3} < nominal {CONFIDENCE}"
    );
}

#[test]
fn hoeffding_sequence_survives_adversarial_optional_stopping() {
    assert_uniform_coverage(Boundary::Hoeffding, 0.5, 0xCA11B_0010);
    assert_uniform_coverage(Boundary::Hoeffding, 0.9, 0xCA11B_0011);
}

#[test]
fn betting_sequence_survives_adversarial_optional_stopping() {
    assert_uniform_coverage(Boundary::Betting, 0.5, 0xCA11B_0012);
    assert_uniform_coverage(Boundary::Betting, 0.9, 0xCA11B_0013);
}

#[test]
fn anytime_intervals_shrink_while_staying_valid() {
    // One long stream per boundary: the emitted running-intersection
    // widths must be non-increasing, end genuinely narrow, and still
    // contain the truth at the horizon.
    let mut rng = ChaCha8Rng::seed_from_u64(0xCA11B_0014);
    for boundary in [Boundary::Hoeffding, Boundary::Betting] {
        let mut run = AnytimeRun::new(boundary.sequence(CONFIDENCE).unwrap());
        let mut last_width = f64::INFINITY;
        let mut snap = SeqSnapshot::fresh();
        while run.samples() < 4096 {
            let outcomes: Vec<bool> = (0..64).map(|_| rng.gen_bool(0.8)).collect();
            snap = run.observe(&outcomes);
            assert!(
                snap.width() <= last_width,
                "{boundary}: width grew from {last_width} to {}",
                snap.width()
            );
            last_width = snap.width();
        }
        assert!(
            0.0 <= snap.lower && snap.lower <= snap.upper && snap.upper <= 1.0,
            "{boundary}: final interval [{}, {}] is malformed",
            snap.lower,
            snap.upper
        );
        assert!(
            snap.width() < 0.1,
            "{boundary}: width {} still loose after 4096 draws",
            snap.width()
        );
    }
}

#[test]
fn fixed_n_streaming_mode_is_byte_identical_to_the_fixed_n_engine() {
    // With no width target the anytime engine is "fixed-N mode": it
    // must consume exactly the seed stream the existing round-based
    // engine defines (`round_seeds`, observation i at seed_start + i)
    // and count exactly the satisfying executions a direct fold counts.
    const N: u64 = 96;
    const SEED_START: u64 = 0xCA11B_0015;
    let value = |seed: u64| (seed % 17) as f64;
    let seen = std::cell::RefCell::new(Vec::new());
    let recording = |seed: u64| -> std::result::Result<f64, SampleError> {
        seen.borrow_mut().push(seed);
        Ok(value(seed))
    };
    let property = MetricProperty::new(Direction::AtMost, 8.0);
    let config = AnytimeConfig {
        boundary: Boundary::Hoeffding,
        confidence: CONFIDENCE,
        target_width: None,
        max_samples: N,
        round_size: SEQ_ROUND,
    };
    let policy = RetryPolicy::no_retry();
    let report = run_anytime(
        &recording,
        &property,
        SEED_START,
        &policy,
        &config,
        None,
        |_| {},
    )
    .unwrap();

    let expected_seeds: Vec<u64> = (0..N / SEQ_ROUND)
        .flat_map(|r| round_seeds(SEED_START, r, SEQ_ROUND).unwrap())
        .collect();
    assert_eq!(*seen.borrow(), expected_seeds, "seed discipline diverged");
    let values: Vec<f64> = expected_seeds.iter().map(|&s| value(s)).collect();
    assert_eq!(report.stop, StopReason::MaxSamples);
    assert_eq!(report.samples, N);
    assert_eq!(report.successes, property.count_satisfying(&values));
    assert!(report.failures.is_clean());

    // And preempt/resume changes nothing: stop a second run after its
    // third round, resume from that snapshot, and the final report
    // serializes byte-for-byte like the uninterrupted one.
    let plain = |seed: u64| -> std::result::Result<f64, SampleError> { Ok(value(seed)) };
    let mut third_round: Option<SeqSnapshot> = None;
    let truncated = AnytimeConfig {
        max_samples: 3 * SEQ_ROUND,
        ..config.clone()
    };
    let prefix = run_anytime(
        &plain,
        &property,
        SEED_START,
        &policy,
        &truncated,
        None,
        |snap| third_round = Some(*snap),
    )
    .unwrap();
    assert_eq!(prefix.samples, 3 * SEQ_ROUND);
    let resumed = run_anytime(
        &plain,
        &property,
        SEED_START,
        &policy,
        &config,
        third_round,
        |_| {},
    )
    .unwrap();
    assert_eq!(
        serde_json::to_string(&report).unwrap(),
        serde_json::to_string(&resumed).unwrap(),
        "a resumed fixed-N run must reproduce the uninterrupted bytes"
    );
}

// ---------------------------------------------------------------------
// Whole-CDF DKW bands (the `spa_core::band` engine).
//
// A `CdfBand` makes one simultaneous claim — with probability ≥ C the
// true CDF lies inside the ±ε envelope *everywhere* — and every
// quantile CI and CVaR bound is read off that single band. So the
// calibration has three layers: the simultaneous event itself (checked
// through the exact Kolmogorov–Smirnov distance against the analytic
// population CDF), each derived quantile CI (which inherits ≥ C
// marginally, with room to spare), and the CVaR brackets (whose
// endpoint clamps lean on the observed extremes, so they are checked at
// a sample size where the clamp is comfortably inside the tail).
//
// Margins are engineered, not hoped for: for continuous populations the
// KS statistic is distribution-free, and at n = 40 the finite-sample
// KS quantile sits far enough below the asymptotic DKW ε that true
// simultaneous coverage is ≈ 0.912 — a > 4σ cushion over C = 0.9 at
// 10 000 fixed-seed trials. The discrete population is strictly more
// conservative. Trial counts are affordable because a band build is
// one sort, not an SPA search.
// ---------------------------------------------------------------------

const BAND_TRIALS: usize = 10_000;
const BAND_N: usize = 40;
const BAND_QS: [f64; 4] = [0.1, 0.5, 0.9, 0.99];
const CVAR_TRIALS: usize = 2_000;
const CVAR_N: usize = 200;
const CVAR_ALPHA: f64 = 0.9;

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Runs `BAND_TRIALS` band constructions at `BAND_N` samples and
/// asserts (a) the simultaneous DKW event `D ≤ ε` holds at rate ≥ C and
/// (b) every derived quantile CI covers its true quantile at rate ≥ C.
fn assert_band_coverage(population: Population, seed: u64) {
    let reference = population.reference_draws();
    let truths: Vec<f64> = BAND_QS
        .iter()
        .map(|&q| quantile(&reference, q, QuantileMethod::LowerRank).unwrap())
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut simultaneous = 0usize;
    let mut quantile_hits = [0usize; BAND_QS.len()];
    for _ in 0..BAND_TRIALS {
        let xs: Vec<f64> = (0..BAND_N).map(|_| population.draw(&mut rng)).collect();
        let index = SortedSamples::new(&xs).unwrap();
        let band = CdfBand::dkw(&index, CONFIDENCE).unwrap();
        simultaneous += usize::from(population.ks_statistic(index.values()) <= band.epsilon());
        for (hits, (&q, &truth)) in quantile_hits.iter_mut().zip(BAND_QS.iter().zip(&truths)) {
            *hits += usize::from(band.quantile_ci(q).unwrap().covers(truth));
        }
    }
    let rate = simultaneous as f64 / BAND_TRIALS as f64;
    assert!(
        rate >= CONFIDENCE,
        "{population:?}: simultaneous DKW coverage {rate:.4} < nominal {CONFIDENCE}"
    );
    for (&q, &hits) in BAND_QS.iter().zip(&quantile_hits) {
        let rate = hits as f64 / BAND_TRIALS as f64;
        assert!(
            rate >= CONFIDENCE,
            "{population:?}: band quantile CI at q = {q} covers at {rate:.4} < {CONFIDENCE}"
        );
    }
}

/// Runs `CVAR_TRIALS` band constructions at `CVAR_N` samples and
/// asserts the CVaR brackets for *both* tails contain the true tail
/// expectations (from the reference draw) at rate ≥ C.
fn assert_band_cvar_coverage(population: Population, seed: u64) {
    let mut reference = population.reference_draws();
    reference.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let tail = (REFERENCE_DRAWS as f64 * (1.0 - CVAR_ALPHA)).round() as usize;
    let truth_upper = mean(&reference[REFERENCE_DRAWS - tail..]);
    let truth_lower = mean(&reference[..tail]);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut hits = 0usize;
    for _ in 0..CVAR_TRIALS {
        let xs: Vec<f64> = (0..CVAR_N).map(|_| population.draw(&mut rng)).collect();
        let cvar = CdfBand::from_samples(&xs, CONFIDENCE)
            .unwrap()
            .cvar_ci(CVAR_ALPHA)
            .unwrap();
        hits +=
            usize::from(cvar.upper_tail.covers(truth_upper) && cvar.lower_tail.covers(truth_lower));
    }
    let rate = hits as f64 / CVAR_TRIALS as f64;
    assert!(
        rate >= CONFIDENCE,
        "{population:?}: CVaR bracket coverage {rate:.4} < nominal {CONFIDENCE} \
         (truths: upper {truth_upper:.3}, lower {truth_lower:.3})"
    );
}

#[test]
fn band_coverage_meets_nominal_on_gaussian() {
    assert_band_coverage(Population::Gaussian, 0xCA11B_0020);
}

#[test]
fn band_coverage_meets_nominal_on_bimodal() {
    assert_band_coverage(Population::Bimodal, 0xCA11B_0021);
}

#[test]
fn band_coverage_meets_nominal_on_duplicate_heavy() {
    assert_band_coverage(Population::DuplicateHeavy, 0xCA11B_0022);
}

#[test]
fn band_coverage_meets_nominal_on_heavy_tailed() {
    assert_band_coverage(Population::HeavyTailed, 0xCA11B_0023);
}

#[test]
fn band_cvar_brackets_hold_on_gaussian() {
    assert_band_cvar_coverage(Population::Gaussian, 0xCA11B_0024);
}

#[test]
fn band_cvar_brackets_hold_on_bimodal() {
    assert_band_cvar_coverage(Population::Bimodal, 0xCA11B_0025);
}

#[test]
fn band_cvar_brackets_hold_on_duplicate_heavy() {
    assert_band_cvar_coverage(Population::DuplicateHeavy, 0xCA11B_0026);
}

#[test]
fn band_cvar_brackets_hold_on_heavy_tailed() {
    assert_band_cvar_coverage(Population::HeavyTailed, 0xCA11B_0027);
}

#[test]
fn band_epsilon_matches_the_massart_constant() {
    // The exact finite-sample constant the tentpole promises:
    // ε = sqrt(ln(2 / (1 − C)) / (2n)). Pin it at the two (C, n)
    // combinations the coverage tests above depend on.
    for (n, c) in [(BAND_N, CONFIDENCE), (CVAR_N, CONFIDENCE)] {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let band = CdfBand::from_samples(&xs, c).unwrap();
        let expected = ((2.0 / (1.0 - c)).ln() / (2.0 * n as f64)).sqrt();
        assert!((band.epsilon() - expected).abs() < 1e-12);
    }
}
