//! Monte Carlo coverage calibration (the paper's §6.2 claim): over many
//! independently drawn sample sets, SPA's confidence intervals must
//! contain the true population quantile at least as often as the nominal
//! confidence promises — and keep doing so on the duplicate-heavy data
//! where BCa bootstrapping degenerates (§6.4 / Fig. 15).
//!
//! Everything is seeded (`ChaCha8Rng`), so the empirical coverage rates
//! are deterministic and the assertions are non-flaky: changing an
//! algorithm in a way that moves an interval is exactly what this suite
//! is meant to catch. The nominal confidence is `C = 0.9`; the
//! *guaranteed* two-sided floor is `2C − 1` (§4.1) and coverage at some
//! `(F, n)` combinations genuinely sits between the floor and `C`
//! (discreteness makes the one-sided cutoffs wobble with `n` — see
//! `coverage.rs` and EXPERIMENTS.md note A). The configurations below
//! are chosen in the conservative regime the paper evaluates, where
//! Clopper–Pearson slack puts expected coverage ≥ `C` with a ≥ 4σ margin
//! at this trial count, so the fixed-seed empirical rates clear the
//! nominal line without flakiness.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use spa_baselines::bootstrap::bca_ci;
use spa_baselines::BaselineError;
use spa_core::ci::{ci_adaptive, ci_exact, ci_granular, ConfidenceInterval};
use spa_core::fault::{RetryPolicy, SampleError};
use spa_core::property::{Direction, MetricProperty};
use spa_core::rounds::round_seeds;
use spa_core::seq::{run_anytime, AnytimeConfig, AnytimeRun, Boundary, SeqSnapshot, StopReason};
use spa_core::smc::SmcEngine;
use spa_stats::descriptive::{quantile, QuantileMethod};

const CONFIDENCE: f64 = 0.9;
const TRIALS: usize = 2000;
/// Granularity for the grid searches. Coarse enough that the grid's
/// outward rounding keeps the granular/adaptive intervals at least as
/// wide as the sample spacing near the target quantile.
const GRAIN: f64 = 0.25;
/// Size of the reference draw used to stand in for the population when
/// computing the "true" quantile. Its Monte Carlo error is negligible
/// next to CI widths from 30-sample trials.
const REFERENCE_DRAWS: usize = 200_000;

/// One standard normal variate by Box–Muller (`rand` 0.8 ships no
/// normal distribution and the workspace deliberately adds no deps).
fn standard_normal(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0_f64 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[derive(Clone, Copy, Debug)]
enum Population {
    /// N(10, 2²) — the well-behaved case.
    Gaussian,
    /// A 70/30 mixture of N(5, 1²) and N(15, 1²). The heavy mode keeps
    /// the median inside a region of healthy density while the far mode
    /// stresses the search with a wide empty gap in every sample.
    Bimodal,
    /// N(10, 2²) rounded to the nearest 2.0 — roughly seven distinct
    /// values, the §6.4 duplicate regime that breaks BCa.
    DuplicateHeavy,
}

impl Population {
    fn draw(self, rng: &mut ChaCha8Rng) -> f64 {
        match self {
            Population::Gaussian => 10.0 + 2.0 * standard_normal(rng),
            Population::Bimodal => {
                let mode = if rng.gen_bool(0.7) { 5.0 } else { 15.0 };
                mode + standard_normal(rng)
            }
            Population::DuplicateHeavy => ((10.0 + 2.0 * standard_normal(rng)) / 2.0).round() * 2.0,
        }
    }

    /// The population `q`-quantile, estimated from a large fixed-seed
    /// reference draw (distribution-agnostic, deterministic).
    fn true_quantile(self, q: f64) -> f64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0xCA11B_0000);
        let reference: Vec<f64> = (0..REFERENCE_DRAWS).map(|_| self.draw(&mut rng)).collect();
        quantile(&reference, q, QuantileMethod::LowerRank).unwrap()
    }
}

struct Coverage {
    exact: usize,
    granular: usize,
    adaptive: usize,
}

/// Runs `TRIALS` independent SPA constructions against one population
/// and counts how often each strategy's interval contains the truth.
fn spa_coverage(
    population: Population,
    direction: Direction,
    proportion: f64,
    samples_per_trial: usize,
) -> Coverage {
    let engine = SmcEngine::new(CONFIDENCE, proportion).unwrap();
    let truth = population.true_quantile(direction.target_quantile(proportion));
    let mut rng = ChaCha8Rng::seed_from_u64(0xCA11B_0001);
    let mut coverage = Coverage {
        exact: 0,
        granular: 0,
        adaptive: 0,
    };
    let covers = |ci: &ConfidenceInterval| ci.contains(truth) as usize;
    for _ in 0..TRIALS {
        let xs: Vec<f64> = (0..samples_per_trial)
            .map(|_| population.draw(&mut rng))
            .collect();
        coverage.exact += covers(&ci_exact(&engine, &xs, direction).unwrap());
        coverage.granular += covers(&ci_granular(&engine, &xs, direction, GRAIN).unwrap());
        coverage.adaptive += covers(&ci_adaptive(&engine, &xs, direction, GRAIN, None).unwrap());
    }
    coverage
}

fn assert_covers(name: &str, population: Population, hits: usize) {
    let rate = hits as f64 / TRIALS as f64;
    assert!(
        rate >= CONFIDENCE,
        "{name} on {population:?}: empirical coverage {rate:.3} < nominal {CONFIDENCE}"
    );
}

fn assert_all_cover(population: Population, direction: Direction, proportion: f64, n: usize) {
    let c = spa_coverage(population, direction, proportion, n);
    assert_covers("ci_exact", population, c.exact);
    assert_covers("ci_granular", population, c.granular);
    assert_covers("ci_adaptive", population, c.adaptive);
}

#[test]
fn gaussian_median_coverage_meets_nominal() {
    assert_all_cover(Population::Gaussian, Direction::AtMost, 0.5, 30);
}

#[test]
fn bimodal_median_coverage_meets_nominal() {
    assert_all_cover(Population::Bimodal, Direction::AtMost, 0.5, 30);
}

#[test]
fn duplicate_heavy_coverage_meets_nominal() {
    assert_all_cover(Population::DuplicateHeavy, Direction::AtMost, 0.5, 30);
}

#[test]
fn at_least_direction_low_quantile_coverage_meets_nominal() {
    // The paper's speedup phrasing: "at least X in F = 90 % of runs"
    // targets the 0.1-quantile through Direction::AtLeast.
    assert_all_cover(Population::Gaussian, Direction::AtLeast, 0.9, 34);
    assert_all_cover(Population::Bimodal, Direction::AtLeast, 0.9, 34);
    assert_all_cover(Population::DuplicateHeavy, Direction::AtLeast, 0.9, 34);
}

#[test]
fn bca_degenerates_on_duplicates_where_spa_still_covers() {
    // §6.4 / Fig. 15: on duplicate-heavy data the BCa bootstrap's bias
    // correction or acceleration becomes undefined and it returns Null
    // (with ~7 atoms over 40 samples the delete-one jackknife medians
    // are almost always all identical); SPA's SMC construction is
    // indifferent to ties. Reproduce both halves on the same per-trial
    // sample sets.
    const BCA_TRIALS: usize = 120;
    let population = Population::DuplicateHeavy;
    let engine = SmcEngine::new(CONFIDENCE, 0.5).unwrap();
    let truth = population.true_quantile(0.5);
    let mut rng = ChaCha8Rng::seed_from_u64(0xCA11B_0002);
    let mut bca_failures = 0usize;
    let mut spa_hits = 0usize;
    for _ in 0..BCA_TRIALS {
        let xs: Vec<f64> = (0..40).map(|_| population.draw(&mut rng)).collect();
        match bca_ci(&xs, 0.5, CONFIDENCE, 1000, &mut rng) {
            Err(BaselineError::BootstrapDegenerate { .. }) => bca_failures += 1,
            Err(e) => panic!("unexpected BCa error: {e}"),
            Ok(_) => {}
        }
        spa_hits += ci_exact(&engine, &xs, Direction::AtMost)
            .unwrap()
            .contains(truth) as usize;
    }
    assert!(
        bca_failures > BCA_TRIALS / 2,
        "expected BCa to return Null on most duplicate-heavy draws, got {bca_failures}/{BCA_TRIALS}"
    );
    let spa_rate = spa_hits as f64 / BCA_TRIALS as f64;
    assert!(
        spa_rate >= CONFIDENCE,
        "SPA coverage {spa_rate:.3} on the BCa failure workload"
    );
}

#[test]
fn bca_always_degenerates_on_constant_data() {
    // The deterministic corner of the failure mode: constant data is
    // rejected before any resampling, while SPA returns a degenerate
    // but covering interval.
    let xs = vec![4.0; 30];
    let mut rng = ChaCha8Rng::seed_from_u64(0xCA11B_0003);
    assert!(matches!(
        bca_ci(&xs, 0.5, CONFIDENCE, 1000, &mut rng),
        Err(BaselineError::BootstrapDegenerate { .. })
    ));
    let engine = SmcEngine::new(CONFIDENCE, 0.5).unwrap();
    let ci = ci_exact(&engine, &xs, Direction::AtMost).unwrap();
    assert!(ci.contains(4.0));
}

// ---------------------------------------------------------------------
// Anytime-valid confidence sequences (the `spa_core::seq` engine).
//
// Fixed-N coverage above is checked at one predeclared stopping time;
// the claim a confidence sequence makes is stronger — coverage holds
// simultaneously over *every* stopping time, including data-dependent
// ones. The adversary below uses the worst stopping rule there is:
// stop at the first update whose interval excludes the truth (a rule
// that makes any fixed-N interval's coverage collapse toward zero as
// the horizon grows). Time-uniform validity means even this adversary
// wins at most `α` of the trials.
// ---------------------------------------------------------------------

const SEQ_TRIALS: usize = 500;
const SEQ_MAX_N: u64 = 512;
const SEQ_ROUND: u64 = 8;

/// Runs `SEQ_TRIALS` Bernoulli(`p`) streams against one boundary and
/// counts the trials where the adversary (stop at the first interval
/// excluding `p`) never gets to stop — i.e. the sequence covered `p`
/// uniformly over the whole horizon.
fn seq_uniform_coverage(boundary: Boundary, p: f64, seed: u64) -> usize {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut covered = 0usize;
    for _ in 0..SEQ_TRIALS {
        let mut run = AnytimeRun::new(boundary.sequence(CONFIDENCE).unwrap());
        let mut excluded = false;
        while run.samples() < SEQ_MAX_N {
            let outcomes: Vec<bool> = (0..SEQ_ROUND).map(|_| rng.gen_bool(p)).collect();
            let snap = run.observe(&outcomes);
            if p < snap.lower || snap.upper < p {
                excluded = true;
                break;
            }
        }
        covered += usize::from(!excluded);
    }
    covered
}

fn assert_uniform_coverage(boundary: Boundary, p: f64, seed: u64) {
    let covered = seq_uniform_coverage(boundary, p, seed);
    let rate = covered as f64 / SEQ_TRIALS as f64;
    assert!(
        rate >= CONFIDENCE,
        "{boundary} sequence at p={p}: optional-stopping coverage \
         {rate:.3} < nominal {CONFIDENCE}"
    );
}

#[test]
fn hoeffding_sequence_survives_adversarial_optional_stopping() {
    assert_uniform_coverage(Boundary::Hoeffding, 0.5, 0xCA11B_0010);
    assert_uniform_coverage(Boundary::Hoeffding, 0.9, 0xCA11B_0011);
}

#[test]
fn betting_sequence_survives_adversarial_optional_stopping() {
    assert_uniform_coverage(Boundary::Betting, 0.5, 0xCA11B_0012);
    assert_uniform_coverage(Boundary::Betting, 0.9, 0xCA11B_0013);
}

#[test]
fn anytime_intervals_shrink_while_staying_valid() {
    // One long stream per boundary: the emitted running-intersection
    // widths must be non-increasing, end genuinely narrow, and still
    // contain the truth at the horizon.
    let mut rng = ChaCha8Rng::seed_from_u64(0xCA11B_0014);
    for boundary in [Boundary::Hoeffding, Boundary::Betting] {
        let mut run = AnytimeRun::new(boundary.sequence(CONFIDENCE).unwrap());
        let mut last_width = f64::INFINITY;
        let mut snap = SeqSnapshot::fresh();
        while run.samples() < 4096 {
            let outcomes: Vec<bool> = (0..64).map(|_| rng.gen_bool(0.8)).collect();
            snap = run.observe(&outcomes);
            assert!(
                snap.width() <= last_width,
                "{boundary}: width grew from {last_width} to {}",
                snap.width()
            );
            last_width = snap.width();
        }
        assert!(
            0.0 <= snap.lower && snap.lower <= snap.upper && snap.upper <= 1.0,
            "{boundary}: final interval [{}, {}] is malformed",
            snap.lower,
            snap.upper
        );
        assert!(
            snap.width() < 0.1,
            "{boundary}: width {} still loose after 4096 draws",
            snap.width()
        );
    }
}

#[test]
fn fixed_n_streaming_mode_is_byte_identical_to_the_fixed_n_engine() {
    // With no width target the anytime engine is "fixed-N mode": it
    // must consume exactly the seed stream the existing round-based
    // engine defines (`round_seeds`, observation i at seed_start + i)
    // and count exactly the satisfying executions a direct fold counts.
    const N: u64 = 96;
    const SEED_START: u64 = 0xCA11B_0015;
    let value = |seed: u64| (seed % 17) as f64;
    let seen = std::cell::RefCell::new(Vec::new());
    let recording = |seed: u64| -> std::result::Result<f64, SampleError> {
        seen.borrow_mut().push(seed);
        Ok(value(seed))
    };
    let property = MetricProperty::new(Direction::AtMost, 8.0);
    let config = AnytimeConfig {
        boundary: Boundary::Hoeffding,
        confidence: CONFIDENCE,
        target_width: None,
        max_samples: N,
        round_size: SEQ_ROUND,
    };
    let policy = RetryPolicy::no_retry();
    let report = run_anytime(
        &recording,
        &property,
        SEED_START,
        &policy,
        &config,
        None,
        |_| {},
    )
    .unwrap();

    let expected_seeds: Vec<u64> = (0..N / SEQ_ROUND)
        .flat_map(|r| round_seeds(SEED_START, r, SEQ_ROUND).unwrap())
        .collect();
    assert_eq!(*seen.borrow(), expected_seeds, "seed discipline diverged");
    let values: Vec<f64> = expected_seeds.iter().map(|&s| value(s)).collect();
    assert_eq!(report.stop, StopReason::MaxSamples);
    assert_eq!(report.samples, N);
    assert_eq!(report.successes, property.count_satisfying(&values));
    assert!(report.failures.is_clean());

    // And preempt/resume changes nothing: stop a second run after its
    // third round, resume from that snapshot, and the final report
    // serializes byte-for-byte like the uninterrupted one.
    let plain = |seed: u64| -> std::result::Result<f64, SampleError> { Ok(value(seed)) };
    let mut third_round: Option<SeqSnapshot> = None;
    let truncated = AnytimeConfig {
        max_samples: 3 * SEQ_ROUND,
        ..config.clone()
    };
    let prefix = run_anytime(
        &plain,
        &property,
        SEED_START,
        &policy,
        &truncated,
        None,
        |snap| third_round = Some(*snap),
    )
    .unwrap();
    assert_eq!(prefix.samples, 3 * SEQ_ROUND);
    let resumed = run_anytime(
        &plain,
        &property,
        SEED_START,
        &policy,
        &config,
        third_round,
        |_| {},
    )
    .unwrap();
    assert_eq!(
        serde_json::to_string(&report).unwrap(),
        serde_json::to_string(&resumed).unwrap(),
        "a resumed fixed-N run must reproduce the uninterrupted bytes"
    );
}
