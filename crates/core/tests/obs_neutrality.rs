//! Instrumentation must be verdict-neutral: running the engine with a
//! subscriber installed (even the collecting one) and the global metrics
//! registry active must produce byte-identical statistical output to an
//! uninstrumented run.

use spa_core::fault::RetryPolicy;
use spa_core::property::MetricProperty;
use spa_core::rounds::run_hypothesis_rounds;
use spa_core::smc::SmcEngine;
use spa_core::spa::{Direction, Granularity, Spa};
use spa_obs::{clear_subscriber, set_subscriber, CollectingSubscriber, NoopSubscriber};
use std::sync::{Arc, Mutex, MutexGuard};

/// The span subscriber is process-global; tests that install one must
/// not interleave.
static SUBSCRIBER_LOCK: Mutex<()> = Mutex::new(());

fn subscriber_lock() -> MutexGuard<'static, ()> {
    SUBSCRIBER_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn sampler(seed: u64) -> f64 {
    1.0 + (seed % 10) as f64 * 0.1
}

#[test]
fn reports_are_identical_with_and_without_subscribers() {
    let _guard = subscriber_lock();
    let spa = Spa::builder()
        .confidence(0.9)
        .proportion(0.5)
        .granularity(Granularity::Step(0.05))
        .batch_size(4)
        .build()
        .unwrap();

    clear_subscriber();
    let bare = spa.run(&sampler, 900, Direction::AtMost).unwrap();
    let bare_fallible = spa
        .run_fallible(
            &spa_core::fault::Reliable(sampler),
            900,
            Direction::AtMost,
            &RetryPolicy::default(),
        )
        .unwrap();

    set_subscriber(Arc::new(NoopSubscriber));
    let noop = spa.run(&sampler, 900, Direction::AtMost).unwrap();

    let collector = CollectingSubscriber::new();
    set_subscriber(collector.clone());
    let collected = spa.run(&sampler, 900, Direction::AtMost).unwrap();
    let collected_fallible = spa
        .run_fallible(
            &spa_core::fault::Reliable(sampler),
            900,
            Direction::AtMost,
            &RetryPolicy::default(),
        )
        .unwrap();
    clear_subscriber();

    assert_eq!(bare, noop);
    assert_eq!(bare, collected);
    assert_eq!(bare_fallible, collected_fallible);
    assert_eq!(bare, bare_fallible);

    // The collector actually saw the instrumented regions, so the parity
    // above is meaningful and not a disabled-instrumentation artifact.
    let names: Vec<&str> = collector.take().iter().map(|r| r.name).collect();
    assert!(names.contains(&spa_core::obs_names::SPAN_RUN), "{names:?}");
    assert!(
        names.contains(&spa_core::obs_names::SPAN_COLLECT),
        "{names:?}"
    );
    assert!(
        names.contains(&spa_core::obs_names::SPAN_CI_SEARCH),
        "{names:?}"
    );
}

#[test]
fn round_driver_verdict_ignores_instrumentation() {
    let _guard = subscriber_lock();
    let engine = SmcEngine::new(0.9, 0.9).unwrap();
    let property = MetricProperty::new(Direction::AtMost, 8.5);
    let metric = |seed: u64| (seed % 10) as f64;

    clear_subscriber();
    let bare = run_hypothesis_rounds(&engine, &metric, &property, 5, 8, 64, 4).unwrap();

    let collector = CollectingSubscriber::new();
    set_subscriber(collector.clone());
    let traced = run_hypothesis_rounds(&engine, &metric, &property, 5, 8, 64, 4).unwrap();
    clear_subscriber();

    assert_eq!(bare, traced);
    assert!(collector
        .take()
        .iter()
        .any(|r| r.name == spa_core::obs_names::SPAN_FOLD));
}

#[test]
fn core_counters_accumulate_during_runs() {
    let registry = spa_obs::metrics::global();
    let before = registry.snapshot();
    let spa = Spa::builder().proportion(0.5).build().unwrap();
    let report = spa.run(&sampler, 1_234, Direction::AtMost).unwrap();
    let after = registry.snapshot();

    let delta = |name: &str| after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);
    assert!(delta(spa_core::obs_names::SAMPLES_REQUESTED) >= report.samples.len() as u64);
    assert!(delta(spa_core::obs_names::SAMPLES_COLLECTED) >= report.samples.len() as u64);
    assert!(delta(spa_core::obs_names::CI_THRESHOLD_TESTS) > 0);
}
