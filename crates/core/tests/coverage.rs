//! Statistical validation of the SPA confidence-interval construction:
//! empirical coverage against analytic populations at several `(C, F)`
//! combinations, and consistency between the sweep view (Fig. 4) and
//! the interval bounds.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use spa_core::ci::{ci_exact, sweep};
use spa_core::clopper_pearson::Assertion;
use spa_core::min_samples::min_samples;
use spa_core::property::Direction;
use spa_core::smc::SmcEngine;

/// A deterministic, continuous, skewed population (exponential-ish).
fn population(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let u = (i as f64 + 0.5) / n as f64;
            5.0 - 2.0 * (1.0 - u).ln()
        })
        .collect()
}

fn lower_rank_quantile(sorted_pop: &[f64], q: f64) -> f64 {
    let k = ((q * sorted_pop.len() as f64).ceil() as usize).clamp(1, sorted_pop.len());
    sorted_pop[k - 1]
}

fn empirical_coverage(c: f64, f: f64, trials: usize, seed: u64) -> f64 {
    let pop = population(600);
    let mut sorted = pop.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let truth = lower_rank_quantile(&sorted, f);

    let engine = SmcEngine::new(c, f).unwrap();
    let n = (min_samples(c, f).unwrap() as usize).max(22);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..pop.len()).collect();
    let mut covered = 0usize;
    for _ in 0..trials {
        let (chosen, _) = idx.partial_shuffle(&mut rng, n);
        let sample: Vec<f64> = chosen.iter().map(|&i| pop[i]).collect();
        let ci = ci_exact(&engine, &sample, Direction::AtMost).unwrap();
        if ci.contains(truth) {
            covered += 1;
        }
    }
    covered as f64 / trials as f64
}

#[test]
fn coverage_meets_requested_confidence_at_paper_settings() {
    // The paper's evaluation settings (C = 0.9 at F = 0.5 and F = 0.9,
    // §6.1–6.2, and the Fig. 14 confidence sweep). Slack accounts for
    // finite trials (binomial noise ≈ ±0.03 at 400 trials) plus the
    // lower-rank ground-truth discretization.
    for (c, f) in [(0.9, 0.5), (0.9, 0.9), (0.95, 0.5), (0.99, 0.5)] {
        let coverage = empirical_coverage(c, f, 400, 17);
        assert!(
            coverage >= c - 0.05,
            "coverage {coverage:.3} below C = {c} at F = {f}"
        );
    }
}

#[test]
fn coverage_never_falls_below_the_bonferroni_floor() {
    // The construction inverts two one-sided tests, each with error at
    // most 1 − C, so the guaranteed two-sided coverage is 2C − 1; the
    // Clopper–Pearson tests' conservatism usually lifts it to ≈ C (which
    // is what the paper reports empirically), but adversarial (C, F)
    // combinations can approach the floor — e.g. C = 0.8, F = 0.7 sits
    // near 0.75.
    for (c, f) in [(0.8, 0.7), (0.85, 0.6), (0.9, 0.75)] {
        let coverage = empirical_coverage(c, f, 400, 23);
        let floor = 2.0 * c - 1.0;
        assert!(
            coverage >= floor - 0.03,
            "coverage {coverage:.3} below the 2C-1 floor {floor} at C = {c}, F = {f}"
        );
    }
}

#[test]
fn higher_confidence_gives_wider_intervals() {
    let pop = population(200);
    let sample: Vec<f64> = pop.iter().step_by(4).copied().collect(); // 50 values
    let narrow = ci_exact(
        &SmcEngine::new(0.8, 0.5).unwrap(),
        &sample,
        Direction::AtMost,
    )
    .unwrap();
    let wide = ci_exact(
        &SmcEngine::new(0.99, 0.5).unwrap(),
        &sample,
        Direction::AtMost,
    )
    .unwrap();
    assert!(wide.width() >= narrow.width());
    assert!(wide.lower() <= narrow.lower());
    assert!(wide.upper() >= narrow.upper());
}

#[test]
fn sweep_is_consistent_with_interval_bounds() {
    let pop = population(300);
    let sample: Vec<f64> = pop.iter().step_by(10).copied().collect(); // 30 values
    let engine = SmcEngine::new(0.9, 0.5).unwrap();
    let ci = ci_exact(&engine, &sample, Direction::AtMost).unwrap();

    let mut thresholds = sample.clone();
    thresholds.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let points = sweep(&engine, &sample, Direction::AtMost, &thresholds).unwrap();

    // The innermost significant thresholds on each side are exactly the
    // interval bounds.
    let innermost_negative = points
        .iter()
        .filter(|p| p.verdict == Some(Assertion::Negative))
        .map(|p| p.threshold)
        .fold(f64::NEG_INFINITY, f64::max);
    let innermost_positive = points
        .iter()
        .filter(|p| p.verdict == Some(Assertion::Positive))
        .map(|p| p.threshold)
        .fold(f64::INFINITY, f64::min);
    assert_eq!(ci.lower(), innermost_negative);
    assert_eq!(ci.upper(), innermost_positive);

    // Every inconclusive threshold lies inside the interval.
    for p in points.iter().filter(|p| p.verdict.is_none()) {
        assert!(
            ci.contains(p.threshold),
            "inconclusive threshold {} outside {ci}",
            p.threshold
        );
    }
}

#[test]
fn at_least_and_at_most_are_mirror_images() {
    // For a symmetric sample, the AtLeast CI at proportion F mirrors the
    // AtMost CI at proportion F around the center.
    let sample: Vec<f64> = (0..25).map(|i| i as f64 - 12.0).collect(); // symmetric around 0
    let engine = SmcEngine::new(0.9, 0.8).unwrap();
    let at_most = ci_exact(&engine, &sample, Direction::AtMost).unwrap();
    let at_least = ci_exact(&engine, &sample, Direction::AtLeast).unwrap();
    assert!((at_most.lower() + at_least.upper()).abs() < 1e-9);
    assert!((at_most.upper() + at_least.lower()).abs() < 1e-9);
}
