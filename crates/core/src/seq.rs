//! Anytime-valid inference: time-uniform confidence sequences and the
//! streaming `AnytimeRun` driver.
//!
//! Algorithm 1 of the paper fixes the sample count `N` up front (Eq. 8)
//! and only then reports a confidence interval, so a job can neither be
//! watched while it converges nor stopped early without invalidating
//! the guarantee. This module supplies the missing engine mode: a
//! *confidence sequence* is a sequence of intervals `(L_n, U_n)` that
//! covers the true success proportion `p` **simultaneously for every
//! `n`** with probability at least the nominal confidence. Stopping at
//! any data-dependent time — a width target, a deadline, a `kill -9` —
//! keeps the guarantee intact ("stop-at-any-time" semantics).
//!
//! Two constructions are provided, both over Bernoulli success
//! indicators (the same `successes / n` query shape Clopper–Pearson
//! answers for the fixed-`N` engine):
//!
//! * [`HoeffdingSequence`] — a stitched Hoeffding boundary: the error
//!   budget `α` is spent over sample counts as `α_n = α / (n(n+1))`
//!   (which sums to exactly `α` over `n ≥ 1`), giving the closed-form
//!   time-uniform radius `sqrt(ln(2n(n+1)/α) / (2n))`.
//! * [`BettingSequence`] — a betting / e-process construction: the
//!   Beta(1,1)-mixture martingale of Robbins. The wealth against a
//!   candidate `p₀` is `M_n(p₀) = B(S+1, F+1) / (p₀^S (1-p₀)^F)`; by
//!   Ville's inequality the set `{p₀ : M_n(p₀) < 1/α}` is a
//!   time-uniform confidence sequence. Its endpoints are found by
//!   bisection on the concave log-likelihood and are substantially
//!   tighter than the Hoeffding boundary once `p̂` is away from ½.
//!
//! [`AnytimeRun`] folds batches of Bernoulli outcomes into a running
//! *intersection* of the per-`n` intervals — the stream of emitted
//! [`SeqSnapshot`]s is monotonically shrinking by construction, and the
//! intersection of simultaneously-valid intervals is itself valid. The
//! snapshot doubles as the checkpoint type: because the interval is a
//! deterministic function of the journaled `(n, successes, lower,
//! upper)` state and the seed stream is deterministic in `n`, a resumed
//! run is bit-identical to an uninterrupted one — resuming introduces
//! no bias (see DESIGN.md § Anytime-valid inference).
//!
//! Observability: every fold bumps [`obs_names::SEQ_UPDATES`] and every
//! width-triggered stop bumps [`obs_names::SEQ_EARLY_STOPS`].

use serde::{Deserialize, Serialize};
use spa_obs::metrics::global;
use spa_stats::special::ln_beta;

use crate::fault::{derive_retry_seed, FailureCounts, FallibleSampler, RetryPolicy, SampleError};
use crate::obs_names;
use crate::property::MetricProperty;
use crate::{CoreError, Result};

/// Bisection iterations for [`BettingSequence`] endpoints. 80 halvings
/// of the unit interval put the bracket far below `f64` resolution, so
/// the returned endpoint is a deterministic function of `(n, successes,
/// α)` alone.
const BISECTION_ITERS: u32 = 80;

fn check_level(name: &'static str, value: f64) -> Result<()> {
    if value.is_finite() && value > 0.0 && value < 1.0 {
        Ok(())
    } else {
        Err(CoreError::InvalidParameter {
            name,
            value,
            expected: "a probability strictly between 0 and 1",
        })
    }
}

/// A time-uniform confidence sequence over Bernoulli success
/// indicators.
///
/// Implementations must guarantee that with probability at least
/// [`confidence`](Self::confidence), the true success proportion lies
/// inside [`interval`](Self::interval)`(n, successes)` **for every
/// `n ≥ 1` simultaneously** — not merely for each `n` marginally. That
/// simultaneity is what makes optional stopping (width targets,
/// deadlines, preemption) statistically free.
pub trait ConfidenceSequence: Sync {
    /// Short identifier for reports and cache keys.
    fn name(&self) -> &'static str;

    /// The nominal simultaneous coverage level `1 − α`.
    fn confidence(&self) -> f64;

    /// The interval after `n` observations with `successes` successes.
    ///
    /// `n = 0` returns the vacuous `(0, 1)`. Implementations clamp to
    /// `[0, 1]` and always contain the point estimate `successes / n`.
    fn interval(&self, n: u64, successes: u64) -> (f64, f64);
}

/// Which confidence-sequence construction a streaming run uses.
///
/// Serialized in job specs and reports, hence the stable snake_case
/// wire names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Boundary {
    /// The stitched Hoeffding boundary ([`HoeffdingSequence`]).
    Hoeffding,
    /// The Beta-mixture betting boundary ([`BettingSequence`]).
    Betting,
}

impl Boundary {
    /// Stable identifier used in canonical cache keys and reports.
    pub fn key(self) -> &'static str {
        match self {
            Boundary::Hoeffding => "hoeffding",
            Boundary::Betting => "betting",
        }
    }

    /// Builds the chosen construction at `confidence`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] unless `confidence` lies
    /// strictly inside `(0, 1)`.
    pub fn sequence(self, confidence: f64) -> Result<BoundarySequence> {
        Ok(match self {
            Boundary::Hoeffding => BoundarySequence::Hoeffding(HoeffdingSequence::new(confidence)?),
            Boundary::Betting => BoundarySequence::Betting(BettingSequence::new(confidence)?),
        })
    }
}

impl std::fmt::Display for Boundary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

impl std::str::FromStr for Boundary {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "hoeffding" => Ok(Boundary::Hoeffding),
            "betting" => Ok(Boundary::Betting),
            other => Err(format!(
                "unknown boundary `{other}`; expected hoeffding or betting"
            )),
        }
    }
}

/// Enum dispatch over the two built-in constructions, so callers that
/// pick a boundary at runtime (the server's streaming mode) need no
/// trait objects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundarySequence {
    /// A [`HoeffdingSequence`].
    Hoeffding(HoeffdingSequence),
    /// A [`BettingSequence`].
    Betting(BettingSequence),
}

impl ConfidenceSequence for BoundarySequence {
    fn name(&self) -> &'static str {
        match self {
            BoundarySequence::Hoeffding(s) => s.name(),
            BoundarySequence::Betting(s) => s.name(),
        }
    }

    fn confidence(&self) -> f64 {
        match self {
            BoundarySequence::Hoeffding(s) => s.confidence(),
            BoundarySequence::Betting(s) => s.confidence(),
        }
    }

    fn interval(&self, n: u64, successes: u64) -> (f64, f64) {
        match self {
            BoundarySequence::Hoeffding(s) => s.interval(n, successes),
            BoundarySequence::Betting(s) => s.interval(n, successes),
        }
    }
}

/// The stitched Hoeffding time-uniform boundary.
///
/// Spending `α_n = α / (n(n+1))` at sample count `n` keeps the union
/// bound tight (`Σ_{n≥1} α_n = α`) while the per-`n` two-sided
/// Hoeffding radius is `sqrt(ln(2/α_n) / (2n)) =
/// sqrt(ln(2n(n+1)/α) / (2n))`. Closed-form and distribution-free, but
/// its `O(sqrt(ln n / n))` width ignores the observed variance, so it
/// is the conservative reference construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HoeffdingSequence {
    alpha: f64,
}

impl HoeffdingSequence {
    /// A boundary with simultaneous coverage `confidence`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] unless `confidence` lies
    /// strictly inside `(0, 1)`.
    pub fn new(confidence: f64) -> Result<Self> {
        check_level("confidence", confidence)?;
        Ok(Self {
            alpha: 1.0 - confidence,
        })
    }
}

impl ConfidenceSequence for HoeffdingSequence {
    fn name(&self) -> &'static str {
        "hoeffding"
    }

    fn confidence(&self) -> f64 {
        1.0 - self.alpha
    }

    fn interval(&self, n: u64, successes: u64) -> (f64, f64) {
        if n == 0 {
            return (0.0, 1.0);
        }
        let nf = n as f64;
        let estimate = successes as f64 / nf;
        // ln(2 n (n+1) / α), assembled in log space so huge n cannot
        // overflow the product.
        let spend = 2.0_f64.ln() + nf.ln() + (nf + 1.0).ln() - self.alpha.ln();
        let radius = (spend / (2.0 * nf)).sqrt();
        ((estimate - radius).max(0.0), (estimate + radius).min(1.0))
    }
}

/// The Beta(1,1)-mixture betting (e-process) boundary.
///
/// Against each candidate proportion `p₀` the bettor's wealth after
/// `S` successes and `F = n − S` failures is the mixture likelihood
/// ratio `M_n(p₀) = B(S+1, F+1) / (p₀^S (1−p₀)^F)` — a nonnegative
/// martingale with initial wealth 1 when `p₀` is the truth. Ville's
/// inequality bounds the probability that it ever exceeds `1/α` by
/// `α`, so the running set `{p₀ : M_n(p₀) < 1/α}` is a time-uniform
/// confidence sequence. In log space the membership test is
///
/// ```text
/// S·ln p₀ + F·ln(1−p₀)  >  ln B(S+1, F+1) + ln α
/// ```
///
/// whose left side is concave with maximum at `p̂ = S/n`, so each
/// endpoint is a bisection on a monotone flank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BettingSequence {
    alpha: f64,
}

impl BettingSequence {
    /// A boundary with simultaneous coverage `confidence`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] unless `confidence` lies
    /// strictly inside `(0, 1)`.
    pub fn new(confidence: f64) -> Result<Self> {
        check_level("confidence", confidence)?;
        Ok(Self {
            alpha: 1.0 - confidence,
        })
    }
}

/// `S·ln p + F·ln(1−p)` with the `0·ln 0 = 0` convention.
fn log_likelihood(successes: f64, failures: f64, p: f64) -> f64 {
    let mut ll = 0.0;
    if successes > 0.0 {
        ll += successes * p.ln();
    }
    if failures > 0.0 {
        ll += failures * (1.0 - p).ln();
    }
    ll
}

impl ConfidenceSequence for BettingSequence {
    fn name(&self) -> &'static str {
        "betting"
    }

    fn confidence(&self) -> f64 {
        1.0 - self.alpha
    }

    fn interval(&self, n: u64, successes: u64) -> (f64, f64) {
        if n == 0 {
            return (0.0, 1.0);
        }
        let s = successes.min(n) as f64;
        let f = (n - successes.min(n)) as f64;
        let estimate = s / n as f64;
        // Membership threshold: p is in the sequence iff the
        // log-likelihood at p exceeds it. The wealth at p̂ is at most 1
        // (a mixture cannot beat the maximum it averages over), so p̂
        // is always a member and both flanks bracket a crossing.
        let threshold = ln_beta(s + 1.0, f + 1.0) + self.alpha.ln();
        let lower = if successes == 0 {
            0.0
        } else {
            // Increasing flank: outside at 0, inside at p̂. Keep the
            // outside end of the bracket — rounding outward never
            // undercovers.
            let (mut lo, mut hi) = (0.0_f64, estimate);
            for _ in 0..BISECTION_ITERS {
                let mid = 0.5 * (lo + hi);
                if log_likelihood(s, f, mid) > threshold {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            lo
        };
        let upper = if successes >= n {
            1.0
        } else {
            // Decreasing flank: inside at p̂, outside at 1.
            let (mut lo, mut hi) = (estimate, 1.0_f64);
            for _ in 0..BISECTION_ITERS {
                let mid = 0.5 * (lo + hi);
                if log_likelihood(s, f, mid) > threshold {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            hi
        };
        (lower, upper)
    }
}

/// The state of an anytime run after `n` observations — both the live
/// update pushed to watchers and the checkpoint journaled for
/// preempt/resume. `lower`/`upper` carry the *running intersection* of
/// every interval emitted so far, so a resumed run continues shrinking
/// from exactly where the interrupted one stopped.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeqSnapshot {
    /// Bernoulli observations folded so far.
    pub n: u64,
    /// How many of them were successes.
    pub successes: u64,
    /// Running lower confidence bound.
    pub lower: f64,
    /// Running upper confidence bound.
    pub upper: f64,
}

impl SeqSnapshot {
    /// The vacuous pre-data state: `n = 0`, interval `[0, 1]`.
    pub fn fresh() -> Self {
        Self {
            n: 0,
            successes: 0,
            lower: 0.0,
            upper: 1.0,
        }
    }

    /// Current interval width.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    fn validate(&self) -> Result<()> {
        if self.successes > self.n {
            return Err(CoreError::InvalidParameter {
                name: "successes",
                value: self.successes as f64,
                expected: "at most n",
            });
        }
        let ordered = self.lower.is_finite() && self.upper.is_finite() && self.lower <= self.upper;
        if !ordered || self.lower < 0.0 || self.upper > 1.0 {
            return Err(CoreError::InvalidParameter {
                name: "interval",
                value: self.lower,
                expected: "0 <= lower <= upper <= 1",
            });
        }
        Ok(())
    }
}

/// Why an anytime run stopped. Every reason yields a *valid* interval —
/// that is the whole point of the construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum StopReason {
    /// The interval width reached the requested target.
    TargetWidth,
    /// The sample budget was exhausted before the width target.
    MaxSamples,
    /// An external deadline expired; the interval at expiry is
    /// reported instead of a failure.
    Deadline,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StopReason::TargetWidth => "target_width",
            StopReason::MaxSamples => "max_samples",
            StopReason::Deadline => "deadline",
        })
    }
}

/// The terminal report of an anytime run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnytimeReport {
    /// Which construction produced the interval.
    pub boundary: Boundary,
    /// Nominal simultaneous coverage.
    pub confidence: f64,
    /// Observations folded (including any resumed prefix).
    pub samples: u64,
    /// Successes among them.
    pub successes: u64,
    /// Final lower confidence bound (running intersection).
    pub lower: f64,
    /// Final upper confidence bound (running intersection).
    pub upper: f64,
    /// Why the run stopped.
    pub stop: StopReason,
    /// Fault-tolerant sampling bookkeeping for the freshly executed
    /// portion (a resumed prefix's failures were journaled with it).
    pub failures: FailureCounts,
}

impl AnytimeReport {
    /// Final interval width.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }
}

/// Folds Bernoulli outcomes into a monotone stream of anytime-valid
/// intervals.
///
/// The driver keeps the running intersection of the boundary's per-`n`
/// intervals: since all of them hold simultaneously with probability
/// `≥ 1 − α`, so does their intersection, and the emitted stream is
/// monotonically shrinking by construction. [`observe`](Self::observe)
/// is deterministic in the prior [`SeqSnapshot`] and the outcome batch,
/// which is the entire bias-free resume argument: replaying the same
/// outcome stream through [`resume`](Self::resume) reproduces an
/// uninterrupted run bit for bit.
#[derive(Debug, Clone)]
pub struct AnytimeRun<B> {
    boundary: B,
    state: SeqSnapshot,
}

impl<B: ConfidenceSequence> AnytimeRun<B> {
    /// A fresh run: no data, vacuous interval.
    pub fn new(boundary: B) -> Self {
        Self {
            boundary,
            state: SeqSnapshot::fresh(),
        }
    }

    /// Resumes from a journaled checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the snapshot is
    /// internally inconsistent (`successes > n` or a malformed
    /// interval) — a corrupt checkpoint must not silently seed a run.
    pub fn resume(boundary: B, state: SeqSnapshot) -> Result<Self> {
        state.validate()?;
        Ok(Self { boundary, state })
    }

    /// The boundary construction in use.
    pub fn boundary(&self) -> &B {
        &self.boundary
    }

    /// The current state (update payload / checkpoint).
    pub fn snapshot(&self) -> SeqSnapshot {
        self.state
    }

    /// Observations folded so far.
    pub fn samples(&self) -> u64 {
        self.state.n
    }

    /// Current interval width.
    pub fn width(&self) -> f64 {
        self.state.width()
    }

    /// Whether the width target has been reached.
    pub fn reached(&self, target_width: f64) -> bool {
        self.state.n > 0 && self.width() <= target_width
    }

    /// Folds one batch of Bernoulli outcomes and returns the new state.
    ///
    /// Bumps [`obs_names::SEQ_UPDATES`] once per call (per round, not
    /// per sample, matching the engine's counter conventions).
    pub fn observe(&mut self, outcomes: &[bool]) -> SeqSnapshot {
        self.state.n += outcomes.len() as u64;
        self.state.successes += outcomes.iter().filter(|&&b| b).count() as u64;
        let (lower, upper) = self.boundary.interval(self.state.n, self.state.successes);
        self.state.lower = self.state.lower.max(lower);
        self.state.upper = self.state.upper.min(upper);
        if self.state.lower > self.state.upper {
            // The simultaneous-coverage failure event (probability
            // ≤ α) or pure float noise: collapse deterministically.
            let mid = 0.5 * (self.state.lower + self.state.upper);
            self.state.lower = mid;
            self.state.upper = mid;
        }
        global().counter(obs_names::SEQ_UPDATES).incr();
        self.state
    }
}

/// Configuration for [`run_anytime`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnytimeConfig {
    /// Which confidence-sequence construction to use.
    pub boundary: Boundary,
    /// Nominal simultaneous coverage `1 − α`.
    pub confidence: f64,
    /// Stop as soon as the interval width is at most this (`None`
    /// disables early stopping — the fixed-`N` mode).
    pub target_width: Option<f64>,
    /// Hard sample budget; the run stops here even if the width target
    /// was never reached. The result is still valid — just wider.
    pub max_samples: u64,
    /// Observations folded per update round.
    pub round_size: u64,
}

impl AnytimeConfig {
    fn validate(&self) -> Result<()> {
        check_level("confidence", self.confidence)?;
        if let Some(w) = self.target_width {
            if !(w.is_finite() && w > 0.0) {
                return Err(CoreError::InvalidParameter {
                    name: "target_width",
                    value: w,
                    expected: "a finite positive width",
                });
            }
        }
        if self.max_samples == 0 {
            return Err(CoreError::InvalidParameter {
                name: "max_samples",
                value: 0.0,
                expected: "at least 1",
            });
        }
        if self.round_size == 0 {
            return Err(CoreError::InvalidParameter {
                name: "round_size",
                value: 0.0,
                expected: "at least 1",
            });
        }
        Ok(())
    }
}

/// The a-priori fixed-`N` sample size a (non-sequential) two-sided
/// Hoeffding bound needs to guarantee width `width` at `confidence` —
/// the Eq. 8-style "commit before looking" baseline the anytime mode is
/// benchmarked against: `N = ceil(ln(2/α) / (width²/2))`.
///
/// # Panics
///
/// Never panics for `confidence` and `width` in `(0, 1)`; out-of-range
/// inputs saturate rather than panic.
pub fn hoeffding_fixed_n(confidence: f64, width: f64) -> u64 {
    let alpha = (1.0 - confidence).clamp(f64::MIN_POSITIVE, 1.0);
    let radius = (width / 2.0).clamp(f64::MIN_POSITIVE, 0.5);
    ((2.0_f64 / alpha).ln() / (2.0 * radius * radius)).ceil() as u64
}

/// Runs the anytime engine over a fault-tolerant sampler until a stop
/// condition fires, journaling nothing itself but reporting every
/// update through `on_update` (the server layers checkpointing and
/// live snapshots on top of that callback).
///
/// Observation `i` (0-based, counting any resumed prefix) is drawn at
/// seed `seed_start + i`, with retries at [`derive_retry_seed`] — the
/// same deterministic stream discipline as the fixed-`N` engine, which
/// is what makes `resume` bias-free: a resumed run draws exactly the
/// seeds the uninterrupted run would have drawn.
///
/// # Errors
///
/// * [`CoreError::InvalidParameter`] for a malformed config or resume
///   snapshot.
/// * [`CoreError::SeedOverflow`] if the seed stream would wrap.
/// * [`CoreError::SamplingFailed`] if any seed exhausts its retry
///   budget — a permanently missing observation would desynchronize
///   the seed↔index correspondence that resume relies on.
pub fn run_anytime<S: FallibleSampler + ?Sized>(
    sampler: &S,
    property: &MetricProperty,
    seed_start: u64,
    policy: &RetryPolicy,
    config: &AnytimeConfig,
    resume: Option<SeqSnapshot>,
    mut on_update: impl FnMut(&SeqSnapshot),
) -> Result<AnytimeReport> {
    config.validate()?;
    let boundary = config.boundary.sequence(config.confidence)?;
    let mut run = match resume {
        Some(state) => AnytimeRun::resume(boundary, state)?,
        None => AnytimeRun::new(boundary),
    };
    let mut failures = FailureCounts::default();
    let stop = loop {
        if let Some(width) = config.target_width {
            if run.reached(width) {
                global().counter(obs_names::SEQ_EARLY_STOPS).incr();
                break StopReason::TargetWidth;
            }
        }
        if run.samples() >= config.max_samples {
            break StopReason::MaxSamples;
        }
        let take = config.round_size.min(config.max_samples - run.samples());
        let bounds = seed_start
            .checked_add(run.samples())
            .and_then(|first| first.checked_add(take).map(|end| (first, end)));
        let Some((first, end)) = bounds else {
            return Err(CoreError::SeedOverflow {
                seed_start,
                round: run.samples() / config.round_size,
                round_size: config.round_size,
            });
        };
        let mut outcomes = Vec::with_capacity(take as usize);
        for seed in first..end {
            let value = sample_with_retries(sampler, seed, policy, &mut failures).ok_or(
                CoreError::SamplingFailed {
                    requested: take,
                    collected: outcomes.len() as u64,
                },
            )?;
            outcomes.push(property.satisfies(value));
        }
        let snapshot = run.observe(&outcomes);
        on_update(&snapshot);
    };
    let state = run.snapshot();
    Ok(AnytimeReport {
        boundary: config.boundary,
        confidence: config.confidence,
        samples: state.n,
        successes: state.successes,
        lower: state.lower,
        upper: state.upper,
        stop,
        failures,
    })
}

/// One seed through the retry policy; `None` when the budget is
/// exhausted (the seed is recorded as abandoned).
fn sample_with_retries<S: FallibleSampler + ?Sized>(
    sampler: &S,
    seed: u64,
    policy: &RetryPolicy,
    failures: &mut FailureCounts,
) -> Option<f64> {
    for attempt in 0..policy.max_attempts() {
        if attempt > 0 {
            failures.retries += 1;
            let delay = policy.backoff_delay(seed, attempt);
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
        }
        match sampler.sample(derive_retry_seed(seed, attempt)) {
            Ok(value) if value.is_finite() => return Some(value),
            Ok(value) => failures.record(&SampleError::InvalidMetric { value }),
            Err(e) => failures.record(&e),
        }
    }
    failures.abandoned_seeds += 1;
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::property::Direction;

    fn hoeffding() -> HoeffdingSequence {
        HoeffdingSequence::new(0.9).unwrap()
    }

    fn betting() -> BettingSequence {
        BettingSequence::new(0.9).unwrap()
    }

    #[test]
    fn invalid_confidence_is_rejected() {
        for bad in [0.0, 1.0, -0.1, 1.5, f64::NAN] {
            assert!(HoeffdingSequence::new(bad).is_err(), "{bad}");
            assert!(BettingSequence::new(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn zero_samples_give_the_vacuous_interval() {
        assert_eq!(hoeffding().interval(0, 0), (0.0, 1.0));
        assert_eq!(betting().interval(0, 0), (0.0, 1.0));
    }

    #[test]
    fn intervals_contain_the_point_estimate_and_stay_in_unit_range() {
        for seq in [
            BoundarySequence::Hoeffding(hoeffding()),
            BoundarySequence::Betting(betting()),
        ] {
            for n in [1u64, 2, 5, 22, 100, 1000] {
                for s in [0, n / 3, n / 2, n] {
                    let (lo, hi) = seq.interval(n, s);
                    let estimate = s as f64 / n as f64;
                    assert!(
                        (0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi),
                        "{} n={n} s={s}: [{lo}, {hi}]",
                        seq.name()
                    );
                    assert!(
                        lo <= estimate && estimate <= hi,
                        "{} n={n} s={s}: {estimate} outside [{lo}, {hi}]",
                        seq.name()
                    );
                }
            }
        }
    }

    #[test]
    fn betting_is_tighter_than_hoeffding_away_from_half() {
        // At p̂ = 1 the likelihood is extreme and the betting boundary
        // exploits it; the distribution-free Hoeffding radius cannot.
        let (h_lo, _) = hoeffding().interval(50, 50);
        let (b_lo, _) = betting().interval(50, 50);
        assert!(
            b_lo > h_lo,
            "betting lower {b_lo} should beat hoeffding {h_lo}"
        );
    }

    #[test]
    fn betting_edge_cases_pin_the_boundary_endpoints() {
        let (lo, hi) = betting().interval(10, 0);
        assert_eq!(lo, 0.0);
        assert!(hi < 1.0);
        let (lo, hi) = betting().interval(10, 10);
        assert!(lo > 0.0);
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn running_intersection_is_monotone() {
        let mut run = AnytimeRun::new(betting());
        let mut previous = run.snapshot();
        // A worst-case alternating stream: raw intervals wobble, the
        // intersection must not.
        for i in 0..200 {
            let snap = run.observe(&[i % 2 == 0]);
            assert!(
                snap.lower >= previous.lower && snap.upper <= previous.upper,
                "round {i}: [{}, {}] grew past [{}, {}]",
                snap.lower,
                snap.upper,
                previous.lower,
                previous.upper
            );
            previous = snap;
        }
        assert!(previous.width() < 0.5);
    }

    #[test]
    fn resume_is_bit_identical_to_an_uninterrupted_run() {
        let outcomes: Vec<bool> = (0..96).map(|i| i % 7 != 0).collect();
        let mut straight = AnytimeRun::new(betting());
        for chunk in outcomes.chunks(8) {
            straight.observe(chunk);
        }
        // Interrupt after 4 rounds, serialize the checkpoint through
        // JSON (the journal's encoding), resume, and finish.
        let mut first_half = AnytimeRun::new(betting());
        for chunk in outcomes[..32].chunks(8) {
            first_half.observe(chunk);
        }
        let journaled = serde_json::to_string(&first_half.snapshot()).unwrap();
        let restored: SeqSnapshot = serde_json::from_str(&journaled).unwrap();
        let mut resumed = AnytimeRun::resume(betting(), restored).unwrap();
        for chunk in outcomes[32..].chunks(8) {
            resumed.observe(chunk);
        }
        assert_eq!(
            serde_json::to_string(&straight.snapshot()).unwrap(),
            serde_json::to_string(&resumed.snapshot()).unwrap(),
            "resumed state must be bit-identical"
        );
    }

    #[test]
    fn resume_rejects_corrupt_snapshots() {
        let bad = SeqSnapshot {
            n: 5,
            successes: 9,
            lower: 0.0,
            upper: 1.0,
        };
        assert!(AnytimeRun::resume(betting(), bad).is_err());
        let bad = SeqSnapshot {
            n: 5,
            successes: 3,
            lower: 0.8,
            upper: 0.2,
        };
        assert!(AnytimeRun::resume(betting(), bad).is_err());
    }

    #[test]
    fn driver_early_stops_at_the_width_target() {
        let sampler = |_seed: u64| -> std::result::Result<f64, SampleError> { Ok(1.0) };
        let property = MetricProperty::new(Direction::AtMost, 2.0);
        let config = AnytimeConfig {
            boundary: Boundary::Betting,
            confidence: 0.9,
            target_width: Some(0.5),
            max_samples: 10_000,
            round_size: 4,
        };
        let mut updates = Vec::new();
        let report = run_anytime(
            &sampler,
            &property,
            0,
            &RetryPolicy::no_retry(),
            &config,
            None,
            |s| updates.push(*s),
        )
        .unwrap();
        assert_eq!(report.stop, StopReason::TargetWidth);
        assert!(report.width() <= 0.5);
        assert!(
            report.samples < 100,
            "an all-success stream reaches width 0.5 fast, used {}",
            report.samples
        );
        assert_eq!(report.successes, report.samples);
        assert_eq!(updates.last().unwrap().n, report.samples);
        // Updates arrive in round_size strides.
        assert!(updates.iter().all(|u| u.n % 4 == 0));
    }

    #[test]
    fn driver_respects_the_sample_budget() {
        let sampler = |seed: u64| -> std::result::Result<f64, SampleError> { Ok(seed as f64) };
        let property = MetricProperty::new(Direction::AtMost, 0.5);
        let config = AnytimeConfig {
            boundary: Boundary::Hoeffding,
            confidence: 0.9,
            target_width: Some(1e-6),
            max_samples: 40,
            round_size: 16,
        };
        let report = run_anytime(
            &sampler,
            &property,
            0,
            &RetryPolicy::no_retry(),
            &config,
            None,
            |_| {},
        )
        .unwrap();
        assert_eq!(report.stop, StopReason::MaxSamples);
        // The final round is clipped to the budget, not overrun.
        assert_eq!(report.samples, 40);
        assert_eq!(report.successes, 1, "only seed 0 satisfies <= 0.5");
    }

    #[test]
    fn driver_resume_draws_the_exact_remaining_seed_stream() {
        use std::sync::Mutex;
        let seen = Mutex::new(Vec::new());
        let sampler = |seed: u64| -> std::result::Result<f64, SampleError> {
            seen.lock().unwrap().push(seed);
            Ok(if seed % 3 == 0 { 0.0 } else { 1.0 })
        };
        let property = MetricProperty::new(Direction::AtMost, 0.5);
        let config = AnytimeConfig {
            boundary: Boundary::Betting,
            confidence: 0.9,
            target_width: None,
            max_samples: 48,
            round_size: 8,
        };
        // Uninterrupted reference.
        let reference = run_anytime(
            &sampler,
            &property,
            1000,
            &RetryPolicy::no_retry(),
            &config,
            None,
            |_| {},
        )
        .unwrap();
        seen.lock().unwrap().clear();
        // Interrupted at n = 24, resumed from the journaled state.
        let mut checkpoint = None;
        let half = AnytimeConfig {
            max_samples: 24,
            ..config.clone()
        };
        run_anytime(
            &sampler,
            &property,
            1000,
            &RetryPolicy::no_retry(),
            &half,
            None,
            |s| checkpoint = Some(*s),
        )
        .unwrap();
        seen.lock().unwrap().clear();
        let resumed = run_anytime(
            &sampler,
            &property,
            1000,
            &RetryPolicy::no_retry(),
            &config,
            checkpoint,
            |_| {},
        )
        .unwrap();
        // The resumed half drew seeds 1024..1048 — exactly the suffix.
        assert_eq!(*seen.lock().unwrap(), (1024..1048).collect::<Vec<_>>());
        assert_eq!(
            serde_json::to_string(&reference).unwrap(),
            serde_json::to_string(&resumed).unwrap(),
            "resume must reproduce the uninterrupted report bit for bit"
        );
    }

    #[test]
    fn driver_fails_when_a_seed_exhausts_retries() {
        let sampler = |seed: u64| -> std::result::Result<f64, SampleError> {
            if seed == 5 || derive_retry_seed(5, 1) == seed || derive_retry_seed(5, 2) == seed {
                Err(SampleError::Timeout)
            } else {
                Ok(1.0)
            }
        };
        let property = MetricProperty::new(Direction::AtMost, 2.0);
        let config = AnytimeConfig {
            boundary: Boundary::Betting,
            confidence: 0.9,
            target_width: None,
            max_samples: 16,
            round_size: 8,
        };
        let err = run_anytime(
            &sampler,
            &property,
            0,
            &RetryPolicy::new(3),
            &config,
            None,
            |_| {},
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::SamplingFailed { .. }), "{err}");
    }

    #[test]
    fn fixed_n_baseline_matches_the_closed_form() {
        // α = 0.1, width 0.2 → N = ceil(ln 20 / 0.02) = ceil(149.8).
        assert_eq!(hoeffding_fixed_n(0.9, 0.2), 150);
        assert!(hoeffding_fixed_n(0.9, 0.5) < hoeffding_fixed_n(0.9, 0.1));
    }

    #[test]
    fn boundary_round_trips_through_serde_and_fromstr() {
        for b in [Boundary::Hoeffding, Boundary::Betting] {
            let json = serde_json::to_string(&b).unwrap();
            assert_eq!(serde_json::from_str::<Boundary>(&json).unwrap(), b);
            assert_eq!(b.key().parse::<Boundary>().unwrap(), b);
        }
        assert!("brownian".parse::<Boundary>().is_err());
    }
}
