//! Wald's Sequential Probability Ratio Test — the *alternative* SMC
//! engine the paper contrasts against (§3.3: "Compared to alternative
//! methods based on Sequential Probability Ratio Tests [1, 41], this
//! [Clopper–Pearson] method only requires a minimal assumption on the
//! probability p ≠ F, which is rarely violated").
//!
//! SPRT tests `H₁: p ≥ F + δ` against `H₀: p ≤ F − δ` with user-chosen
//! Type I/II error bounds, accumulating the log-likelihood ratio one
//! sample at a time. Its strength is sample efficiency when the true
//! probability sits far from `F`; its weakness is the *indifference
//! region* `(F − δ, F + δ)`: inside it, neither hypothesis is true and
//! termination can take arbitrarily long — the assumption the paper's
//! chosen method avoids. The `ablation_sprt` bench quantifies both
//! sides of that trade.

use serde::{Deserialize, Serialize};

use crate::clopper_pearson::{check_unit_open, Assertion};
use crate::{CoreError, Result};

/// A configured SPRT for `P(φ) ≥ F`.
///
/// # Examples
///
/// ```
/// use spa_core::sprt::Sprt;
/// # fn main() -> Result<(), spa_core::CoreError> {
/// let sprt = Sprt::new(0.9, 0.05, 0.1, 0.1)?;
/// let run = sprt.run(std::iter::repeat(true))?;
/// assert_eq!(run.assertion, spa_core::clopper_pearson::Assertion::Positive);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sprt {
    proportion: f64,
    delta: f64,
    alpha: f64,
    beta: f64,
}

/// Result of a terminated SPRT run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SprtOutcome {
    /// The accepted hypothesis mapped onto the paper's verdict language:
    /// `Positive` = `p ≥ F + δ` accepted, `Negative` = `p ≤ F − δ`.
    pub assertion: Assertion,
    /// Samples consumed before termination.
    pub samples_used: u64,
    /// Satisfying samples seen.
    pub satisfied: u64,
    /// Final log-likelihood ratio.
    pub log_likelihood_ratio: f64,
}

impl Sprt {
    /// Creates the test for proportion `F`, half-width `delta` of the
    /// indifference region, and error bounds `alpha` (false positive)
    /// and `beta` (false negative).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] unless `F ± δ` stays
    /// inside `(0, 1)` and both error bounds are in `(0, 1)`.
    pub fn new(proportion: f64, delta: f64, alpha: f64, beta: f64) -> Result<Self> {
        check_unit_open("proportion", proportion)?;
        check_unit_open("alpha", alpha)?;
        check_unit_open("beta", beta)?;
        if (delta.is_nan() || delta <= 0.0)
            || proportion - delta <= 0.0
            || proportion + delta >= 1.0
        {
            return Err(CoreError::InvalidParameter {
                name: "delta",
                value: delta,
                expected: "0 < delta with 0 < F - delta and F + delta < 1",
            });
        }
        Ok(Self {
            proportion,
            delta,
            alpha,
            beta,
        })
    }

    /// Lower hypothesis probability `p₀ = F − δ`.
    pub fn p0(&self) -> f64 {
        self.proportion - self.delta
    }

    /// Upper hypothesis probability `p₁ = F + δ`.
    pub fn p1(&self) -> f64 {
        self.proportion + self.delta
    }

    /// Acceptance threshold for `H₁` (`ln((1 − β)/α)`).
    pub fn upper_bound(&self) -> f64 {
        ((1.0 - self.beta) / self.alpha).ln()
    }

    /// Acceptance threshold for `H₀` (`ln(β/(1 − α))`).
    pub fn lower_bound(&self) -> f64 {
        (self.beta / (1.0 - self.alpha)).ln()
    }

    /// Runs the test, drawing outcomes until one hypothesis is
    /// accepted.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyData`] if the iterator is exhausted
    /// before a decision (possible when the true probability lies in
    /// the indifference region — exactly the caveat of §3.3).
    pub fn run<I>(&self, outcomes: I) -> Result<SprtOutcome>
    where
        I: IntoIterator<Item = bool>,
    {
        let (p0, p1) = (self.p0(), self.p1());
        let ll_sat = (p1 / p0).ln();
        let ll_unsat = ((1.0 - p1) / (1.0 - p0)).ln();
        let (lo, hi) = (self.lower_bound(), self.upper_bound());

        let mut llr = 0.0;
        let mut m = 0u64;
        for (i, sat) in outcomes.into_iter().enumerate() {
            let n = i as u64 + 1;
            if sat {
                m += 1;
                llr += ll_sat;
            } else {
                llr += ll_unsat;
            }
            if llr >= hi {
                return Ok(SprtOutcome {
                    assertion: Assertion::Positive,
                    samples_used: n,
                    satisfied: m,
                    log_likelihood_ratio: llr,
                });
            }
            if llr <= lo {
                return Ok(SprtOutcome {
                    assertion: Assertion::Negative,
                    samples_used: n,
                    satisfied: m,
                    log_likelihood_ratio: llr,
                });
            }
        }
        Err(CoreError::EmptyData)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn validates_parameters() {
        assert!(Sprt::new(0.9, 0.2, 0.1, 0.1).is_err()); // F + δ > 1
        assert!(Sprt::new(0.05, 0.1, 0.1, 0.1).is_err()); // F − δ < 0
        assert!(Sprt::new(0.5, 0.0, 0.1, 0.1).is_err());
        assert!(Sprt::new(0.5, 0.1, 0.0, 0.1).is_err());
        assert!(Sprt::new(0.5, 0.1, 0.1, 1.0).is_err());
        let t = Sprt::new(0.9, 0.05, 0.1, 0.1).unwrap();
        assert!((t.p0() - 0.85).abs() < 1e-12);
        assert!((t.p1() - 0.95).abs() < 1e-12);
        assert!(t.upper_bound() > 0.0);
        assert!(t.lower_bound() < 0.0);
    }

    #[test]
    fn unanimous_streams_decide_quickly() {
        let t = Sprt::new(0.8, 0.1, 0.05, 0.05).unwrap();
        let pos = t.run(std::iter::repeat(true)).unwrap();
        assert_eq!(pos.assertion, Assertion::Positive);
        assert!(pos.samples_used < 30, "{}", pos.samples_used);
        let neg = t.run(std::iter::repeat(false)).unwrap();
        assert_eq!(neg.assertion, Assertion::Negative);
        assert!(neg.samples_used < pos.samples_used);
    }

    #[test]
    fn exhausted_stream_errors() {
        let t = Sprt::new(0.8, 0.1, 0.05, 0.05).unwrap();
        assert!(matches!(t.run([true, false]), Err(CoreError::EmptyData)));
    }

    #[test]
    fn decisions_track_the_true_probability() {
        let t = Sprt::new(0.8, 0.05, 0.1, 0.1).unwrap();
        let decide = |p: f64, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            t.run((0..).map(move |_| rng.gen::<f64>() < p))
                .unwrap()
                .assertion
        };
        // Far above / below the indifference region: reliable verdicts.
        let pos = (0..20)
            .filter(|&s| decide(0.95, s) == Assertion::Positive)
            .count();
        assert!(pos >= 18, "positives: {pos}/20");
        let neg = (0..20)
            .filter(|&s| decide(0.6, s) == Assertion::Negative)
            .count();
        assert!(neg >= 18, "negatives: {neg}/20");
    }

    #[test]
    fn sample_efficiency_beats_fixed_n_far_from_f() {
        // With p = 0.99 and F = 0.9, SPRT needs far fewer samples than
        // the 22 the Clopper–Pearson engine requires.
        let t = Sprt::new(0.9, 0.05, 0.1, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let out = t.run((0..).map(|_| rng.gen::<f64>() < 0.99)).unwrap();
        assert_eq!(out.assertion, Assertion::Positive);
        assert!(out.samples_used <= 22, "{}", out.samples_used);
    }

    #[test]
    fn indifference_region_is_slow() {
        // p exactly at F: decisions take much longer than far from F —
        // the §3.3 caveat in numbers.
        let t = Sprt::new(0.8, 0.05, 0.1, 0.1).unwrap();
        let mut total_at_f = 0u64;
        let mut total_far = 0u64;
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            total_at_f += t
                .run((0..).map(|_| rng.gen::<f64>() < 0.8))
                .unwrap()
                .samples_used;
            let mut rng = StdRng::seed_from_u64(seed);
            total_far += t
                .run((0..).map(|_| rng.gen::<f64>() < 0.99))
                .unwrap()
                .samples_used;
        }
        assert!(
            total_at_f > 3 * total_far,
            "at-F {total_at_f} vs far {total_far}"
        );
    }
}
