//! Scalar metric properties — the `φ` that SMC checks per execution.
//!
//! The SPA confidence-interval machinery sweeps a *threshold* over a
//! fixed metric direction (paper §4.2: "metric is at least V" /
//! "metric is no more than V"), so the central type here is
//! [`Direction`] plus a concrete [`MetricProperty`] binding a
//! threshold. Richer properties (Table 1 rows 3–9) live in
//! [`spa_stl::templates`] and are consumed through
//! [`smc`](crate::smc) directly as boolean outcomes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which side of the threshold a metric must fall on to satisfy the
/// property.
///
/// `AtMost` is the natural direction for "lower is better" metrics
/// (runtime, miss rate): the CI produced with proportion `F` then brackets
/// the population's `F`-quantile — e.g. Fig. 1's "the F = 0.9 value of
/// 1.33 seconds" (90 % of executions finish faster). `AtLeast` is natural
/// for "higher is better" metrics such as speedup or IPC (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Property: `metric ≤ threshold`.
    AtMost,
    /// Property: `metric ≥ threshold`.
    AtLeast,
}

impl Direction {
    /// Whether `value` satisfies the property at `threshold`.
    pub fn satisfies(self, value: f64, threshold: f64) -> bool {
        match self {
            Direction::AtMost => value <= threshold,
            Direction::AtLeast => value >= threshold,
        }
    }

    /// The quantile of the metric population whose confidence interval a
    /// threshold sweep in this direction produces, for proportion `F`.
    ///
    /// * `AtMost`: `P(X ≤ v) ≥ F` flips at the `F`-quantile.
    /// * `AtLeast`: `P(X ≥ v) ≥ F` flips at the `(1−F)`-quantile.
    pub fn target_quantile(self, proportion: f64) -> f64 {
        match self {
            Direction::AtMost => proportion,
            Direction::AtLeast => 1.0 - proportion,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Direction::AtMost => "<=",
            Direction::AtLeast => ">=",
        })
    }
}

/// A concrete scalar property `metric direction threshold`
/// (Table 1 row 1).
///
/// # Examples
///
/// ```
/// use spa_core::property::{Direction, MetricProperty};
/// let p = MetricProperty::new(Direction::AtMost, 1.1);
/// assert!(p.satisfies(1.05));
/// assert!(!p.satisfies(1.2));
/// assert_eq!(p.to_string(), "metric <= 1.1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricProperty {
    direction: Direction,
    threshold: f64,
}

impl MetricProperty {
    /// Creates the property `metric direction threshold`.
    pub fn new(direction: Direction, threshold: f64) -> Self {
        Self {
            direction,
            threshold,
        }
    }

    /// The property's direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// The property's threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Whether a sampled metric value satisfies the property.
    pub fn satisfies(&self, value: f64) -> bool {
        self.direction.satisfies(value, self.threshold)
    }

    /// Number of satisfying samples — the `M` of the paper's Eq. 3.
    pub fn count_satisfying(&self, samples: &[f64]) -> u64 {
        samples.iter().filter(|&&x| self.satisfies(x)).count() as u64
    }
}

impl fmt::Display for MetricProperty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "metric {} {}", self.direction, self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_semantics() {
        assert!(Direction::AtMost.satisfies(1.0, 1.0));
        assert!(Direction::AtMost.satisfies(0.5, 1.0));
        assert!(!Direction::AtMost.satisfies(1.5, 1.0));
        assert!(Direction::AtLeast.satisfies(1.0, 1.0));
        assert!(Direction::AtLeast.satisfies(1.5, 1.0));
        assert!(!Direction::AtLeast.satisfies(0.5, 1.0));
    }

    #[test]
    fn target_quantiles() {
        assert_eq!(Direction::AtMost.target_quantile(0.9), 0.9);
        assert!((Direction::AtLeast.target_quantile(0.9) - 0.1).abs() < 1e-12);
        assert_eq!(Direction::AtMost.target_quantile(0.5), 0.5);
        assert_eq!(Direction::AtLeast.target_quantile(0.5), 0.5);
    }

    #[test]
    fn counting() {
        let p = MetricProperty::new(Direction::AtMost, 2.0);
        assert_eq!(p.count_satisfying(&[1.0, 2.0, 3.0, 0.5]), 3);
        assert_eq!(p.count_satisfying(&[]), 0);
        let q = MetricProperty::new(Direction::AtLeast, 2.0);
        assert_eq!(q.count_satisfying(&[1.0, 2.0, 3.0, 0.5]), 2);
    }

    #[test]
    fn accessors_and_display() {
        let p = MetricProperty::new(Direction::AtLeast, 1.5);
        assert_eq!(p.direction(), Direction::AtLeast);
        assert_eq!(p.threshold(), 1.5);
        assert_eq!(p.to_string(), "metric >= 1.5");
        assert_eq!(Direction::AtMost.to_string(), "<=");
    }
}
