//! Hyperproperties — the paper's §3.1/§8 future-work extension.
//!
//! A property judges one execution; a *hyperproperty* judges a tuple of
//! executions taken together. The paper's motivating example: "SMC with
//! hyperproperties enables us to study whether the performance of
//! multiple executions will differ by less than a given threshold."
//! Because a hyperproperty still evaluates to one boolean per tuple,
//! the existing SMC machinery applies unchanged — tuples are the
//! samples.
//!
//! # Example
//!
//! ```
//! use spa_core::hyper::{pair_self, HyperProperty};
//! use spa_core::smc::SmcEngine;
//!
//! # fn main() -> Result<(), spa_core::CoreError> {
//! // Does runtime differ by less than 5 ms between any two executions,
//! // in at least 90 % of pairs, with 90 % confidence?
//! let runtimes: Vec<f64> = (0..44).map(|i| 1.0 + 0.001 * (i % 5) as f64).collect();
//! let prop = HyperProperty::difference_within(0.005)?;
//! let outcomes = pair_self(&runtimes).map(|(a, b)| prop.evaluate(a, b));
//! let engine = SmcEngine::new(0.9, 0.9)?;
//! let verdict = engine.run_fixed(outcomes)?;
//! assert!(verdict.converged());
//! # Ok(())
//! # }
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{CoreError, Result};

/// A binary hyperproperty over a pair of metric observations
/// `(a, b)` from two executions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HyperProperty {
    /// `|a − b| ≤ threshold` — performance stability (the paper's §3.1
    /// example).
    DifferenceWithin {
        /// Maximum allowed absolute difference.
        threshold: f64,
    },
    /// `lo ≤ a/b ≤ hi` — relative stability / bounded speedup.
    RatioWithin {
        /// Lower ratio bound.
        lo: f64,
        /// Upper ratio bound.
        hi: f64,
    },
    /// `a < b` — ordering between paired executions of two systems
    /// ("System X beats System Y on matched runs").
    FirstSmaller,
}

impl HyperProperty {
    /// `|a − b| ≤ threshold`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for a negative or
    /// non-finite threshold.
    pub fn difference_within(threshold: f64) -> Result<Self> {
        if (threshold.is_nan() || threshold < 0.0) || !threshold.is_finite() {
            return Err(CoreError::InvalidParameter {
                name: "threshold",
                value: threshold,
                expected: "a finite value >= 0",
            });
        }
        Ok(HyperProperty::DifferenceWithin { threshold })
    }

    /// `lo ≤ a/b ≤ hi`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] unless
    /// `0 < lo <= hi < ∞`.
    pub fn ratio_within(lo: f64, hi: f64) -> Result<Self> {
        if (lo.is_nan() || lo <= 0.0) || !hi.is_finite() || hi < lo {
            return Err(CoreError::InvalidParameter {
                name: "lo/hi",
                value: lo,
                expected: "bounds with 0 < lo <= hi < inf",
            });
        }
        Ok(HyperProperty::RatioWithin { lo, hi })
    }

    /// Evaluates the hyperproperty on one pair of observations.
    pub fn evaluate(&self, a: f64, b: f64) -> bool {
        match self {
            HyperProperty::DifferenceWithin { threshold } => (a - b).abs() <= *threshold,
            HyperProperty::RatioWithin { lo, hi } => {
                let r = a / b;
                r >= *lo && r <= *hi
            }
            HyperProperty::FirstSmaller => a < b,
        }
    }
}

impl fmt::Display for HyperProperty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HyperProperty::DifferenceWithin { threshold } => {
                write!(f, "|m(s1) - m(s2)| <= {threshold}")
            }
            HyperProperty::RatioWithin { lo, hi } => {
                write!(f, "{lo} <= m(s1)/m(s2) <= {hi}")
            }
            HyperProperty::FirstSmaller => write!(f, "m(s1) < m(s2)"),
        }
    }
}

/// Pairs one population with itself without reuse: `(x0, x1), (x2, x3),
/// …`. Disjoint pairs keep SMC's independence assumption intact (each
/// tuple is built from fresh executions).
pub fn pair_self(samples: &[f64]) -> impl Iterator<Item = (f64, f64)> + Clone + '_ {
    samples.chunks_exact(2).map(|c| (c[0], c[1]))
}

/// Pairs two populations element-wise: `(a_i, b_i)`. With seeded
/// executions this is the "common random numbers" pairing; for the
/// paper's §5.2 random pairing, shuffle one side first.
pub fn pair_zip<'a>(a: &'a [f64], b: &'a [f64]) -> impl Iterator<Item = (f64, f64)> + Clone + 'a {
    a.iter().copied().zip(b.iter().copied())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clopper_pearson::Assertion;
    use crate::smc::SmcEngine;

    #[test]
    fn constructors_validate() {
        assert!(HyperProperty::difference_within(-1.0).is_err());
        assert!(HyperProperty::difference_within(f64::NAN).is_err());
        assert!(HyperProperty::ratio_within(0.0, 1.0).is_err());
        assert!(HyperProperty::ratio_within(2.0, 1.0).is_err());
        assert!(HyperProperty::ratio_within(0.9, 1.1).is_ok());
    }

    #[test]
    fn evaluation_semantics() {
        let d = HyperProperty::difference_within(0.5).unwrap();
        assert!(d.evaluate(1.0, 1.4));
        assert!(d.evaluate(1.4, 1.0));
        assert!(!d.evaluate(1.0, 1.6));

        let r = HyperProperty::ratio_within(0.9, 1.1).unwrap();
        assert!(r.evaluate(1.0, 1.0));
        assert!(!r.evaluate(1.2, 1.0));

        assert!(HyperProperty::FirstSmaller.evaluate(1.0, 2.0));
        assert!(!HyperProperty::FirstSmaller.evaluate(2.0, 1.0));
    }

    #[test]
    fn pairings() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let pairs: Vec<_> = pair_self(&xs).collect();
        assert_eq!(pairs, vec![(1.0, 2.0), (3.0, 4.0)]); // odd element dropped

        let ys = [10.0, 20.0];
        let pairs: Vec<_> = pair_zip(&xs[..2], &ys).collect();
        assert_eq!(pairs, vec![(1.0, 10.0), (2.0, 20.0)]);
    }

    #[test]
    fn smc_over_stability_hyperproperty() {
        // A stable population: all pairwise differences tiny.
        let xs: Vec<f64> = (0..60).map(|i| 100.0 + 0.01 * (i % 3) as f64).collect();
        let prop = HyperProperty::difference_within(0.1).unwrap();
        let engine = SmcEngine::new(0.9, 0.9).unwrap();
        let verdict = engine
            .run_fixed(pair_self(&xs).map(|(a, b)| prop.evaluate(a, b)))
            .unwrap();
        assert_eq!(verdict.assertion, Some(Assertion::Positive));

        // An unstable population: a big second mode breaks the bound.
        let mut ys = xs.clone();
        for (i, y) in ys.iter_mut().enumerate() {
            if i % 2 == 0 {
                *y += 50.0;
            }
        }
        let verdict = engine
            .run_fixed(pair_self(&ys).map(|(a, b)| prop.evaluate(a, b)))
            .unwrap();
        assert_eq!(verdict.assertion, Some(Assertion::Negative));
    }

    #[test]
    fn smc_over_ordering_hyperproperty() {
        // System A strictly faster than system B on every matched pair.
        let a: Vec<f64> = (0..30).map(|i| 1.0 + 0.001 * i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| x * 1.5).collect();
        let engine = SmcEngine::new(0.9, 0.9).unwrap();
        let verdict = engine
            .run_fixed(pair_zip(&a, &b).map(|(x, y)| HyperProperty::FirstSmaller.evaluate(x, y)))
            .unwrap();
        assert_eq!(verdict.assertion, Some(Assertion::Positive));
    }

    #[test]
    fn display_forms() {
        assert!(HyperProperty::difference_within(0.5)
            .unwrap()
            .to_string()
            .contains("0.5"));
        assert!(HyperProperty::FirstSmaller.to_string().contains('<'));
    }
}
