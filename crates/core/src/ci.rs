//! Confidence intervals for metrics, built from SMC hypothesis tests
//! (the paper's §4.1–4.2 and Fig. 4).
//!
//! For a fixed sample set, SPA re-runs the fixed-sample SMC test
//! (Algorithm 2) at different property thresholds `v` of
//! `metric direction v`. Thresholds far on one side produce significant
//! verdicts of one polarity, far on the other side the opposite
//! polarity, and a band in between does not converge. The confidence
//! interval is the closed span from the innermost threshold that still
//! converges on the low side to the innermost that converges on the high
//! side — the non-converging band sits strictly inside it (Fig. 4).
//!
//! # Coverage guarantee
//!
//! Following §4.1, the interval is composed from two opposing one-sided
//! hypothesis tests, each significant at confidence `C`. Since each
//! side errs with probability at most `1 − C`, the *guaranteed*
//! two-sided coverage is `2C − 1`; the Clopper–Pearson tests'
//! conservatism lifts empirical coverage to ≈ `C` at the paper's
//! settings (its §6 experiments observe exactly this), but callers
//! choosing unusual `(C, F)` combinations should budget for the
//! `2C − 1` floor.
//!
//! Two search strategies are provided:
//!
//! * [`ci_exact`] inspects only the sample values themselves (the
//!   outcome of a threshold test can only change there), giving the
//!   tightest interval the method supports with no tuning parameter;
//! * [`ci_granular`] reproduces the paper's user-specified-granularity
//!   search (§4.2) and also powers the threshold [`sweep`] of Fig. 4.
//!
//! # Search engine
//!
//! All strategies run on the [`CiEngine`](crate::ci_engine::CiEngine):
//! success counts come from a sorted-sample index (O(log n) per
//! threshold instead of an O(n) scan), Clopper–Pearson confidences are
//! memoized per count, and — because verdicts are monotone along the
//! threshold axis — the linear walks of the paper's description are
//! replaced by bisection over the candidate thresholds. The candidates
//! themselves (distinct sample values for [`ci_exact`], the §4.2 grid
//! for [`ci_granular`], the outward marches for [`ci_adaptive`]) are
//! exactly the ones the naive walk would visit, so every interval is
//! bit-identical to the pre-engine linear scans; the old scans are kept
//! as a `#[cfg(test)]` oracle (see [`naive`]) and a differential suite
//! enforces equality.

use serde::{Deserialize, Serialize};

use crate::ci_engine::{partition_point_by, CiEngine};
use crate::clopper_pearson::Assertion;
use crate::min_samples::min_samples;
use crate::obs_names;
use crate::property::Direction;
use crate::smc::SmcEngine;
use crate::{CoreError, Result};
use spa_obs::span;

/// A two-sided confidence interval for a metric, produced by SPA.
///
/// # Examples
///
/// ```
/// use spa_core::ci::ConfidenceInterval;
/// let ci = ConfidenceInterval::new(1.41, 1.48, 0.9, 0.9);
/// assert!(ci.contains(1.45));
/// assert!(!ci.contains(1.5));
/// assert!((ci.width() - 0.07).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    lower: f64,
    upper: f64,
    confidence: f64,
    proportion: f64,
}

impl ConfidenceInterval {
    /// Creates an interval `[lower, upper]` tagged with the confidence
    /// and proportion it was constructed for.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper` (NaN bounds are also rejected).
    pub fn new(lower: f64, upper: f64, confidence: f64, proportion: f64) -> Self {
        assert!(
            lower <= upper,
            "confidence interval bounds out of order: [{lower}, {upper}]"
        );
        Self {
            lower,
            upper,
            confidence,
            proportion,
        }
    }

    /// Lower bound.
    pub fn lower(&self) -> f64 {
        self.lower
    }

    /// Upper bound.
    pub fn upper(&self) -> f64 {
        self.upper
    }

    /// The confidence level `C` the interval was constructed for.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// The proportion `F` the interval targets.
    pub fn proportion(&self) -> f64 {
        self.proportion
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Whether `value` lies inside the closed interval.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:.6}, {:.6}] (C = {}, F = {})",
            self.lower, self.upper, self.confidence, self.proportion
        )
    }
}

/// One point of a threshold sweep (Fig. 4's plotted data).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The property threshold tested.
    pub threshold: f64,
    /// The positive-direction Clopper–Pearson confidence at this
    /// threshold — Fig. 4's y-axis. Values above `C` are significant
    /// positives; below `1 − C`, significant negatives.
    pub positive_confidence: f64,
    /// The Algorithm 2 verdict (`None` = inconclusive).
    pub verdict: Option<Assertion>,
}

fn validate_samples(engine: &SmcEngine, samples: &[f64]) -> Result<()> {
    if samples.is_empty() {
        return Err(CoreError::EmptyData);
    }
    if samples.iter().any(|x| x.is_nan()) {
        return Err(CoreError::InvalidParameter {
            name: "samples",
            value: f64::NAN,
            expected: "no NaN values",
        });
    }
    let needed = min_samples(engine.confidence_level(), engine.proportion())?;
    if (samples.len() as u64) < needed {
        return Err(CoreError::TooFewSamples {
            needed,
            got: samples.len() as u64,
        });
    }
    Ok(())
}

fn validate_granularity(granularity: f64) -> Result<()> {
    if !granularity.is_finite() || granularity <= 0.0 {
        return Err(CoreError::InvalidParameter {
            name: "granularity",
            value: granularity,
            expected: "a finite value > 0",
        });
    }
    Ok(())
}

/// The polarity a significant verdict takes for thresholds far below all
/// samples, given the property direction.
fn low_side_polarity(direction: Direction) -> Assertion {
    match direction {
        // metric ≤ v: a tiny v satisfies nothing ⇒ negative.
        Direction::AtMost => Assertion::Negative,
        // metric ≥ v: a tiny v satisfies everything ⇒ positive.
        Direction::AtLeast => Assertion::Positive,
    }
}

/// Rank of a verdict along the ascending threshold axis: 0 for a
/// significant low-polarity verdict, 1 for inconclusive, 2 for a
/// significant high-polarity verdict. Monotone non-decreasing in the
/// threshold, which is what lets the searches bisect.
fn state_rank(verdict: Option<Assertion>, low_polarity: Assertion) -> u8 {
    match verdict {
        Some(a) if a == low_polarity => 0,
        None => 1,
        Some(_) => 2,
    }
}

/// Exact SPA confidence interval: evaluates the hypothesis test at every
/// distinct sample value (the only places the verdict can change) and
/// returns the innermost significant thresholds on each side.
///
/// The candidate values are sorted and the verdict sequence along them
/// is monotone, so the two boundaries are found by bisection — O(log n)
/// threshold tests instead of a full scan — with bit-identical results.
///
/// # Errors
///
/// * [`CoreError::EmptyData`] for no samples,
/// * [`CoreError::TooFewSamples`] if fewer than Eq. 8's minimum are
///   provided (the interval could never have two significant sides),
/// * [`CoreError::InvalidParameter`] for NaN samples.
///
/// # Examples
///
/// ```
/// use spa_core::ci::ci_exact;
/// use spa_core::property::Direction;
/// use spa_core::smc::SmcEngine;
///
/// # fn main() -> Result<(), spa_core::CoreError> {
/// let engine = SmcEngine::new(0.9, 0.5)?;
/// let samples: Vec<f64> = (1..=22).map(f64::from).collect();
/// let ci = ci_exact(&engine, &samples, Direction::AtMost)?;
/// // A median CI from 22 evenly spread samples brackets the middle.
/// assert!(ci.lower() < 11.5 && ci.upper() > 11.5);
/// # Ok(())
/// # }
/// ```
pub fn ci_exact(
    engine: &SmcEngine,
    samples: &[f64],
    direction: Direction,
) -> Result<ConfidenceInterval> {
    let _span = span!(obs_names::SPAN_CI_SEARCH);
    validate_samples(engine, samples)?;
    let mut eng = CiEngine::new(engine, samples)?;
    let values: Vec<f64> = eng.index().distinct().to_vec();

    let low_polarity = low_side_polarity(direction);
    let mut lower: Option<f64> = None; // innermost (largest) low-side threshold
    let mut upper: Option<f64> = None; // innermost (smallest) high-side threshold

    // A threshold just below the smallest sample has M = 0 (AtMost) or
    // M = N (AtLeast); if that verdict is already significant the flip
    // happens at or below the smallest sample, so the smallest sample is
    // a valid (conservative) lower bound even when the verdict exactly at
    // it is inconclusive.
    let n = eng.index().len();
    let below_min_m = match direction {
        Direction::AtMost => 0,
        Direction::AtLeast => n,
    };
    if eng.verdict_for_count(below_min_m)? == Some(low_polarity) {
        lower = Some(values[0]);
    }

    // Bisect for the end of the low-polarity prefix, then for the start
    // of the high-polarity suffix.
    let first_not_low = partition_point_by(values.len(), |i| {
        Ok(state_rank(eng.verdict_at(direction, values[i])?, low_polarity) == 0)
    })?;
    if first_not_low > 0 {
        lower = Some(values[first_not_low - 1]);
    }
    let first_high = first_not_low
        + partition_point_by(values.len() - first_not_low, |j| {
            Ok(state_rank(
                eng.verdict_at(direction, values[first_not_low + j])?,
                low_polarity,
            ) < 2)
        })?;
    if first_high < values.len() {
        upper = Some(values[first_high]);
    } else {
        // Symmetrically, a threshold just above the largest sample has
        // M = N (AtMost) or M = 0 (AtLeast); if that opposite-polarity
        // verdict is significant, the flip happens at or above the largest
        // sample, making it a valid conservative upper bound (matters for
        // duplicate-heavy data where the in-range candidates all stay
        // inconclusive or low-polarity).
        let above_max_m = match direction {
            Direction::AtMost => n,
            Direction::AtLeast => 0,
        };
        if eng
            .verdict_for_count(above_max_m)?
            .is_some_and(|a| a != low_polarity)
        {
            upper = Some(*values.last().expect("non-empty samples"));
        }
    }
    let lower = lower.unwrap_or(f64::NEG_INFINITY);
    let upper = upper.unwrap_or(f64::INFINITY);
    Ok(ConfidenceInterval::new(
        lower,
        upper,
        engine.confidence_level(),
        engine.proportion(),
    ))
}

/// Smallest `steps` such that `start + steps * granularity >= end`, so
/// the inclusive grid `start, start + g, …, start + steps * g` provably
/// covers `[start, end]` with exactly one point at or beyond `end`.
///
/// `ceil` on the floating-point quotient alone is not enough: the
/// division can round *down* past an integer boundary (leaving `end`
/// unvisited), or round *up* onto one (adding a duplicate end verdict —
/// notably when `end - start` is an exact multiple of `granularity`).
/// Computing the candidate by `ceil` and then correcting against the
/// actually-evaluated grid expression makes the guarantee independent of
/// rounding: after the two correction loops,
/// `start + (steps - 1) * g < end <= start + steps * g` holds, which
/// rules out a duplicated final grid point.
///
/// Interior grid points can still alias (`start + i*g == start + (i+1)*g`
/// when `g` is below the local ulp); the searches tolerate those
/// duplicates — bisection never reports a bound twice — and
/// [`ci_adaptive`] guards its marches against the same plateau.
fn granular_steps(start: f64, end: f64, granularity: f64) -> usize {
    debug_assert!(granularity > 0.0 && end >= start);
    let mut steps = ((end - start) / granularity).ceil() as usize;
    // Walk down while the previous point still covers `end` (ceil
    // rounded up), then up while the last point misses it (rounded
    // down). Each loop runs at most once or twice in practice.
    while steps > 0 && start + (steps - 1) as f64 * granularity >= end {
        steps -= 1;
    }
    while start + steps as f64 * granularity < end {
        steps += 1;
    }
    steps
}

/// SPA confidence interval by granularity search, as described in §4.2:
/// thresholds are visited on a grid of spacing `granularity` covering
/// the sample range, and the innermost significant thresholds on each
/// side become the interval bounds.
///
/// The grid points are `start + i * granularity` exactly as the paper's
/// linear walk evaluates them; only the visit order changes (monotone
/// bisection), so the bounds are bit-identical to that walk while
/// evaluating O(log steps) thresholds.
///
/// # Errors
///
/// As [`ci_exact`], plus [`CoreError::InvalidParameter`] for a
/// non-positive or non-finite `granularity`.
pub fn ci_granular(
    engine: &SmcEngine,
    samples: &[f64],
    direction: Direction,
    granularity: f64,
) -> Result<ConfidenceInterval> {
    validate_granularity(granularity)?;
    let _span = span!(obs_names::SPAN_CI_SEARCH);
    validate_samples(engine, samples)?;
    let mut eng = CiEngine::new(engine, samples)?;
    let lo = eng.index().min();
    let hi = eng.index().max();
    // One step beyond each end so both extreme verdicts are reachable.
    let start = lo - granularity;
    let end = hi + granularity;
    let steps = granular_steps(start, end, granularity);
    let grid = |i: usize| start + i as f64 * granularity;

    let low_polarity = low_side_polarity(direction);
    let mut lower: Option<f64> = None;
    let mut upper: Option<f64> = None;
    let points = steps + 1; // the grid is inclusive: i in 0..=steps
    let first_not_low = partition_point_by(points, |i| {
        Ok(state_rank(eng.verdict_at(direction, grid(i))?, low_polarity) == 0)
    })?;
    if first_not_low > 0 {
        lower = Some(grid(first_not_low - 1));
    }
    let first_high = first_not_low
        + partition_point_by(points - first_not_low, |j| {
            Ok(state_rank(
                eng.verdict_at(direction, grid(first_not_low + j))?,
                low_polarity,
            ) < 2)
        })?;
    if first_high < points {
        upper = Some(grid(first_high));
    }
    let lower = lower.unwrap_or(f64::NEG_INFINITY);
    let upper = upper.unwrap_or(f64::INFINITY);
    Ok(ConfidenceInterval::new(
        lower,
        upper,
        engine.confidence_level(),
        engine.proportion(),
    ))
}

/// Materializes the thresholds an outward march visits, reproducing the
/// exact floating-point sequence of repeated `±granularity` steps (which
/// is *not* the same as `v0 ± i*g` under rounding). `step` is applied
/// repeatedly while `keep_going` holds; a plateau (the step no longer
/// changes the value because `granularity` is below the local ulp) ends
/// the march — the equivalent naive loop would re-test the same
/// threshold forever.
fn march(v0: f64, keep_going: impl Fn(f64) -> bool, step: impl Fn(f64) -> f64) -> Vec<f64> {
    let mut candidates = Vec::new();
    let mut v = v0;
    while keep_going(v) {
        candidates.push(v);
        let next = step(v);
        if next == v {
            break;
        }
        v = next;
    }
    candidates
}

/// SPA confidence interval by the paper's *adaptive* §4.2 procedure:
/// start from an initial metric estimate `v0` (defaulting to the sample
/// mean), step outward by `granularity` in each direction until the
/// innermost significant verdict of each polarity is found.
///
/// Produces the same interval as [`ci_granular`] on the same grid
/// alignment while evaluating far fewer thresholds when `v0` lands
/// inside the inconclusive band (the common case, since the architect's
/// estimate comes from the data). The marches are bisected like the
/// other searches, and a `granularity` below the ulp of the search range
/// terminates with an unbounded side instead of re-testing one
/// threshold forever.
///
/// # Errors
///
/// As [`ci_granular`].
pub fn ci_adaptive(
    engine: &SmcEngine,
    samples: &[f64],
    direction: Direction,
    granularity: f64,
    v0: Option<f64>,
) -> Result<ConfidenceInterval> {
    validate_granularity(granularity)?;
    let _span = span!(obs_names::SPAN_CI_SEARCH);
    validate_samples(engine, samples)?;
    let mut eng = CiEngine::new(engine, samples)?;
    let v0 = v0.unwrap_or_else(|| samples.iter().sum::<f64>() / samples.len() as f64);
    let lo = eng.index().min();
    let hi = eng.index().max();
    let low_polarity = low_side_polarity(direction);

    // March downward from v0 until the low-side polarity turns
    // significant; high-side verdicts seen on the way down mean v0
    // overshot the band, so they tighten the upper bound instead.
    // Along the descent (thresholds decreasing) the state ranks are
    // monotone non-increasing: a high-polarity prefix, then the band,
    // then low-polarity.
    let descent = march(v0, |v| v >= lo - 2.0 * granularity, |v| v - granularity);
    let high_run = partition_point_by(descent.len(), |i| {
        Ok(state_rank(eng.verdict_at(direction, descent[i])?, low_polarity) == 2)
    })?;
    // The innermost high-side verdict seen on the way down is the last
    // (smallest) element of that prefix.
    let mut upper = (high_run > 0).then(|| descent[high_run - 1]);
    let first_low = high_run
        + partition_point_by(descent.len() - high_run, |j| {
            Ok(state_rank(
                eng.verdict_at(direction, descent[high_run + j])?,
                low_polarity,
            ) > 0)
        })?;
    let mut lower = (first_low < descent.len()).then(|| descent[first_low]);

    // March upward for the high side (skipped if the descent already
    // found it, which means everything above is also significant). Low
    // verdicts on the way up mean v0 undershot the band: the innermost
    // low-side threshold is the last (largest) of that prefix.
    if upper.is_none() {
        let ascent = march(
            v0 + granularity,
            |v| v <= hi + 2.0 * granularity,
            |v| v + granularity,
        );
        let low_run = partition_point_by(ascent.len(), |i| {
            Ok(state_rank(eng.verdict_at(direction, ascent[i])?, low_polarity) == 0)
        })?;
        if low_run > 0 {
            lower = Some(ascent[low_run - 1]);
        }
        let first_high = low_run
            + partition_point_by(ascent.len() - low_run, |j| {
                Ok(state_rank(
                    eng.verdict_at(direction, ascent[low_run + j])?,
                    low_polarity,
                ) < 2)
            })?;
        if first_high < ascent.len() {
            upper = Some(ascent[first_high]);
        }
    }
    Ok(ConfidenceInterval::new(
        lower.unwrap_or(f64::NEG_INFINITY),
        upper.unwrap_or(f64::INFINITY),
        engine.confidence_level(),
        engine.proportion(),
    ))
}

/// Evaluates the hypothesis test on a grid of thresholds and reports
/// every point — the data behind Fig. 4.
///
/// One [`CiEngine`] serves the whole sweep: each threshold costs an
/// indexed count plus memoized confidences, so a dense sweep performs
/// only O(distinct counts) beta evaluations regardless of how many
/// thresholds it visits.
///
/// # Errors
///
/// As [`ci_granular`].
pub fn sweep(
    engine: &SmcEngine,
    samples: &[f64],
    direction: Direction,
    thresholds: &[f64],
) -> Result<Vec<SweepPoint>> {
    validate_samples(engine, samples)?;
    let mut eng = CiEngine::new(engine, samples)?;
    thresholds
        .iter()
        .map(|&v| {
            let m = eng.count(direction, v);
            Ok(SweepPoint {
                threshold: v,
                positive_confidence: eng.positive_confidence_for_count(m)?,
                verdict: eng.verdict_for_count(m)?,
            })
        })
        .collect()
}

/// The pre-engine linear-scan implementations, kept verbatim as the
/// differential-testing oracle: the optimized searches must return
/// bit-identical results to these on every input.
///
/// The only intentional deviations: the oracle skips span
/// instrumentation; [`naive::ci_adaptive`] carries the same plateau
/// guard as the optimized search (the original loop would hang when
/// `granularity` is below the ulp of the range — on every input where
/// the original terminated, the guard never fires and the results are
/// unchanged); and [`naive::ci_granular`] skips consecutive duplicate
/// grid values (re-testing an identical threshold returns the identical
/// verdict, so the walk's bounds cannot change).
#[cfg(test)]
pub(crate) mod naive {
    use super::*;
    use crate::clopper_pearson::positive_confidence;
    use crate::property::MetricProperty;
    use spa_obs::metrics::global;

    /// Runs the fixed-sample SMC test for `metric direction threshold`
    /// on the samples and returns its verdict (O(n) count, two beta
    /// evaluations).
    pub(crate) fn verdict_at(
        engine: &SmcEngine,
        samples: &[f64],
        direction: Direction,
        threshold: f64,
    ) -> Result<Option<Assertion>> {
        global().counter(obs_names::CI_THRESHOLD_TESTS).incr();
        let property = MetricProperty::new(direction, threshold);
        let m = property.count_satisfying(samples);
        Ok(engine.run_counts(m, samples.len() as u64)?.assertion)
    }

    pub(crate) fn ci_exact(
        engine: &SmcEngine,
        samples: &[f64],
        direction: Direction,
    ) -> Result<ConfidenceInterval> {
        validate_samples(engine, samples)?;
        let mut values: Vec<f64> = samples.to_vec();
        values.sort_by(|a, b| a.partial_cmp(b).expect("NaN rejected above"));
        values.dedup();

        let low_polarity = low_side_polarity(direction);
        let mut lower: Option<f64> = None;
        let mut upper: Option<f64> = None;

        let n = samples.len() as u64;
        let below_min_m = match direction {
            Direction::AtMost => 0,
            Direction::AtLeast => n,
        };
        if engine.run_counts(below_min_m, n)?.assertion == Some(low_polarity) {
            lower = Some(values[0]);
        }

        for &v in &values {
            match verdict_at(engine, samples, direction, v)? {
                Some(a) if a == low_polarity => lower = Some(v),
                Some(_) => {
                    upper = Some(v);
                    break; // verdicts are monotone in the threshold
                }
                None => {}
            }
        }

        if upper.is_none() {
            let above_max_m = match direction {
                Direction::AtMost => n,
                Direction::AtLeast => 0,
            };
            if engine
                .run_counts(above_max_m, n)?
                .assertion
                .is_some_and(|a| a != low_polarity)
            {
                upper = Some(*values.last().expect("non-empty samples"));
            }
        }
        Ok(ConfidenceInterval::new(
            lower.unwrap_or(f64::NEG_INFINITY),
            upper.unwrap_or(f64::INFINITY),
            engine.confidence_level(),
            engine.proportion(),
        ))
    }

    pub(crate) fn ci_granular(
        engine: &SmcEngine,
        samples: &[f64],
        direction: Direction,
        granularity: f64,
    ) -> Result<ConfidenceInterval> {
        validate_granularity(granularity)?;
        validate_samples(engine, samples)?;
        let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let start = lo - granularity;
        let end = hi + granularity;
        let steps = granular_steps(start, end, granularity);

        let low_polarity = low_side_polarity(direction);
        let mut lower: Option<f64> = None;
        let mut upper: Option<f64> = None;
        let mut previous: Option<f64> = None;
        for i in 0..=steps {
            let v = start + i as f64 * granularity;
            // Skip plateau duplicates (granularity below the local ulp):
            // re-testing an identical threshold cannot change the walk.
            if previous == Some(v) {
                continue;
            }
            previous = Some(v);
            match verdict_at(engine, samples, direction, v)? {
                Some(a) if a == low_polarity => lower = Some(v),
                Some(_) => {
                    upper = Some(v);
                    break;
                }
                None => {}
            }
        }
        Ok(ConfidenceInterval::new(
            lower.unwrap_or(f64::NEG_INFINITY),
            upper.unwrap_or(f64::INFINITY),
            engine.confidence_level(),
            engine.proportion(),
        ))
    }

    pub(crate) fn ci_adaptive(
        engine: &SmcEngine,
        samples: &[f64],
        direction: Direction,
        granularity: f64,
        v0: Option<f64>,
    ) -> Result<ConfidenceInterval> {
        validate_granularity(granularity)?;
        validate_samples(engine, samples)?;
        let v0 = v0.unwrap_or_else(|| samples.iter().sum::<f64>() / samples.len() as f64);
        let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let low_polarity = low_side_polarity(direction);

        let mut lower = None;
        let mut upper_from_descent = None;
        let mut v = v0;
        while v >= lo - 2.0 * granularity {
            match verdict_at(engine, samples, direction, v)? {
                Some(a) if a == low_polarity => {
                    lower = Some(v);
                    break;
                }
                Some(_) => upper_from_descent = Some(v),
                None => {}
            }
            let next = v - granularity;
            if next == v {
                break; // plateau guard; the unguarded loop never ends
            }
            v = next;
        }
        let mut upper = upper_from_descent;
        if upper.is_none() {
            let mut v = v0 + granularity;
            while v <= hi + 2.0 * granularity {
                match verdict_at(engine, samples, direction, v)? {
                    Some(a) if a != low_polarity => {
                        upper = Some(v);
                        break;
                    }
                    Some(_) => {
                        lower = Some(v);
                    }
                    None => {}
                }
                let next = v + granularity;
                if next == v {
                    break; // plateau guard
                }
                v = next;
            }
        }
        Ok(ConfidenceInterval::new(
            lower.unwrap_or(f64::NEG_INFINITY),
            upper.unwrap_or(f64::INFINITY),
            engine.confidence_level(),
            engine.proportion(),
        ))
    }

    pub(crate) fn sweep(
        engine: &SmcEngine,
        samples: &[f64],
        direction: Direction,
        thresholds: &[f64],
    ) -> Result<Vec<SweepPoint>> {
        validate_samples(engine, samples)?;
        let n = samples.len() as u64;
        thresholds
            .iter()
            .map(|&v| {
                let property = MetricProperty::new(direction, v);
                let m = property.count_satisfying(samples);
                Ok(SweepPoint {
                    threshold: v,
                    positive_confidence: positive_confidence(m, n, engine.proportion())?,
                    verdict: engine.run_counts(m, n)?.assertion,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn engine(c: f64, f: f64) -> SmcEngine {
        SmcEngine::new(c, f).unwrap()
    }

    fn spread(n: usize) -> Vec<f64> {
        (1..=n).map(|i| i as f64).collect()
    }

    #[test]
    fn interval_type_behaviour() {
        let ci = ConfidenceInterval::new(1.0, 2.0, 0.9, 0.5);
        assert_eq!(ci.lower(), 1.0);
        assert_eq!(ci.upper(), 2.0);
        assert_eq!(ci.confidence(), 0.9);
        assert_eq!(ci.proportion(), 0.5);
        assert!(ci.contains(1.0) && ci.contains(2.0));
        assert!(!ci.contains(0.999));
        assert!(ci.to_string().contains("C = 0.9"));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn inverted_interval_panics() {
        let _ = ConfidenceInterval::new(2.0, 1.0, 0.9, 0.5);
    }

    #[test]
    fn exact_ci_median_brackets_sample_median() {
        let e = engine(0.9, 0.5);
        let xs = spread(22);
        let ci = ci_exact(&e, &xs, Direction::AtMost).unwrap();
        assert!(ci.lower() < 11.5, "lower {} too high", ci.lower());
        assert!(ci.upper() > 11.5, "upper {} too low", ci.upper());
        assert!(ci.lower().is_finite() && ci.upper().is_finite());
    }

    #[test]
    fn exact_ci_requires_min_samples() {
        let e = engine(0.9, 0.9);
        let xs = spread(10); // needs 22
        assert!(matches!(
            ci_exact(&e, &xs, Direction::AtMost),
            Err(CoreError::TooFewSamples {
                needed: 22,
                got: 10
            })
        ));
        assert!(matches!(
            ci_exact(&e, &[], Direction::AtMost),
            Err(CoreError::EmptyData)
        ));
    }

    #[test]
    fn exact_ci_rejects_nan() {
        let e = engine(0.9, 0.5);
        let mut xs = spread(22);
        xs[3] = f64::NAN;
        assert!(ci_exact(&e, &xs, Direction::AtMost).is_err());
    }

    #[test]
    fn at_least_direction_brackets_low_quantile() {
        // Direction::AtLeast with F = 0.9 targets the 0.1-quantile
        // (the speedup "at least X in 90 % of runs" value).
        let e = engine(0.9, 0.9);
        let xs = spread(100);
        let ci = ci_exact(&e, &xs, Direction::AtLeast).unwrap();
        // The 0.1-quantile of 1..=100 is near 10.
        assert!(ci.lower() <= 10.0 + 8.0 && ci.upper() >= 10.0 - 8.0);
        assert!(ci.lower() < ci.upper());
    }

    #[test]
    fn granular_nests_inside_exact() {
        // Exact mode anchors bounds at sample values, which can only
        // widen the interval relative to a fine grid search; the grid can
        // overshoot an exact bound by at most one step.
        let e = engine(0.9, 0.5);
        let xs = spread(30);
        let exact = ci_exact(&e, &xs, Direction::AtMost).unwrap();
        let grain = 0.25;
        let granular = ci_granular(&e, &xs, Direction::AtMost, grain).unwrap();
        assert!(granular.lower() >= exact.lower() - grain - 1e-9);
        assert!(granular.upper() <= exact.upper() + grain + 1e-9);
        // The two intervals must overlap substantially.
        assert!(granular.lower() < exact.upper());
        assert!(exact.lower() < granular.upper());
    }

    #[test]
    fn adaptive_matches_full_grid_scan() {
        let e = engine(0.9, 0.5);
        let xs = spread(30);
        let grain = 0.25;
        let full = ci_granular(&e, &xs, Direction::AtMost, grain).unwrap();
        // Same grid alignment: start the adaptive search on a grid point
        // near the sample mean (the full scan's grid starts at
        // min - grain = 0.75, so mean 15.5 is on it).
        let adaptive = ci_adaptive(&e, &xs, Direction::AtMost, grain, Some(15.5)).unwrap();
        assert!((adaptive.lower() - full.lower()).abs() < 1e-9);
        assert!((adaptive.upper() - full.upper()).abs() < 1e-9);
    }

    #[test]
    fn adaptive_handles_v0_outside_the_band() {
        let e = engine(0.9, 0.5);
        let xs = spread(30);
        let grain = 0.25;
        let inside = ci_adaptive(&e, &xs, Direction::AtMost, grain, Some(15.5)).unwrap();
        // v0 far below the band: the whole interval is found on the way up.
        let low = ci_adaptive(&e, &xs, Direction::AtMost, grain, Some(2.0)).unwrap();
        // v0 far above the band: found on the way down.
        let high = ci_adaptive(&e, &xs, Direction::AtMost, grain, Some(28.0)).unwrap();
        for ci in [&low, &high] {
            assert!(
                (ci.lower() - inside.lower()).abs() <= grain + 1e-9,
                "lower {} vs {}",
                ci.lower(),
                inside.lower()
            );
            assert!(
                (ci.upper() - inside.upper()).abs() <= grain + 1e-9,
                "upper {} vs {}",
                ci.upper(),
                inside.upper()
            );
        }
    }

    #[test]
    fn adaptive_default_v0_is_the_mean() {
        let e = engine(0.9, 0.5);
        let xs = spread(30);
        let a = ci_adaptive(&e, &xs, Direction::AtMost, 0.1, None).unwrap();
        let b = ci_adaptive(&e, &xs, Direction::AtMost, 0.1, Some(15.5)).unwrap();
        assert!((a.lower() - b.lower()).abs() < 1e-9);
        assert!((a.upper() - b.upper()).abs() < 1e-9);
        assert!(ci_adaptive(&e, &xs, Direction::AtMost, 0.0, None).is_err());
    }

    #[test]
    fn granular_grid_covers_exact_multiple_ranges() {
        // When (hi - lo) + 2g is an exact multiple of g, the grid must
        // end exactly at hi + g: one end point, not two (the old
        // `ceil(...) + 1` construction evaluated a duplicate), and the
        // end must be visited even when the FP quotient rounds down.
        for (start, end, g, want) in [
            (0.75, 30.25, 0.25, 118), // spread(30) with grain 0.25
            (0.0, 1.0, 0.1, 10),      // 1.0 / 0.1 rounds via FP
            (-1.0, 1.0, 0.5, 4),
            (2.5, 2.5 + 7.0 * 0.125, 0.125, 7),
        ] {
            let steps = granular_steps(start, end, g);
            assert_eq!(steps, want, "grid [{start}, {end}] by {g}");
            assert!(
                start + steps as f64 * g >= end,
                "top of range unvisited for [{start}, {end}] by {g}"
            );
            assert!(
                start + (steps - 1) as f64 * g < end,
                "duplicate end verdict for [{start}, {end}] by {g}"
            );
        }
    }

    #[test]
    fn granular_grid_never_duplicates_the_end_point() {
        // Regression: exact-multiple ranges (including FP-hostile large
        // magnitudes and non-representable grains) must visit exactly
        // one grid point at or beyond `end`.
        for (start, end, g) in [
            (0.0, 2.0, 0.1),
            (0.3, 0.3 + 50.0 * 0.1, 0.1),
            (1e9, 1e9 + 128.0, 0.5),
            (-30.25, -0.75, 0.25),
            (0.0, 0.7 * 11.0, 0.7),
        ] {
            let steps = granular_steps(start, end, g);
            let covered = (0..=steps).filter(|&i| start + i as f64 * g >= end).count();
            assert_eq!(
                covered, 1,
                "grid [{start}, {end}] by {g}: {covered} end points"
            );
        }
    }

    #[test]
    fn granular_plateau_grid_terminates_and_is_finite() {
        // Granularity below the local ulp: interior grid points alias
        // (1e16 + 0.5 == 1e16), the walk-equivalent grid is plateau-heavy,
        // and the search must still terminate with the same interval the
        // deduplicated naive walk finds.
        let e = engine(0.9, 0.5);
        let xs: Vec<f64> = (0..22).map(|i| 1e16 + 4.0 * i as f64).collect();
        let ci = ci_granular(&e, &xs, Direction::AtMost, 0.5).unwrap();
        let oracle = naive::ci_granular(&e, &xs, Direction::AtMost, 0.5).unwrap();
        assert_eq!(ci.lower().to_bits(), oracle.lower().to_bits());
        assert_eq!(ci.upper().to_bits(), oracle.upper().to_bits());
        assert!(ci.lower().is_finite() && ci.upper().is_finite());
    }

    #[test]
    fn adaptive_plateau_guard_terminates() {
        // Regression: with granularity far below the ulp of the sample
        // range, the original adaptive loop (`v -= g`) re-tested one
        // threshold forever. The guarded march terminates; with a step
        // that cannot move, neither side can resolve, so the interval is
        // honestly unbounded.
        let e = engine(0.9, 0.5);
        let xs: Vec<f64> = (0..22).map(|i| 1e16 + 4.0 * i as f64).collect();
        let ci = ci_adaptive(&e, &xs, Direction::AtMost, 1e-4, None).unwrap();
        let oracle = naive::ci_adaptive(&e, &xs, Direction::AtMost, 1e-4, None).unwrap();
        assert_eq!(ci.lower().to_bits(), oracle.lower().to_bits());
        assert_eq!(ci.upper().to_bits(), oracle.upper().to_bits());
    }

    #[test]
    fn granular_irregular_grain_still_covers_range() {
        // Non-representable grains where ceil alone can misfire.
        for (lo, hi, g) in [(1.0, 30.0, 0.3), (0.0, 1e6, 0.7), (5.0, 5.0, 0.1)] {
            let start = lo - g;
            let end = hi + g;
            let steps = granular_steps(start, end, g);
            assert!(start + steps as f64 * g >= end);
            assert!(steps == 0 || start + (steps - 1) as f64 * g < end);
        }
    }

    #[test]
    fn granular_exact_multiple_range_matches_exact_ci() {
        // End-to-end regression at an exact-multiple range: spread(30)
        // with grain 0.25 (grid start 0.75, end 30.25, 118 steps). The
        // granular interval must be finite and nest within one grain of
        // the exact interval.
        let e = engine(0.9, 0.5);
        let xs = spread(30);
        let exact = ci_exact(&e, &xs, Direction::AtMost).unwrap();
        let granular = ci_granular(&e, &xs, Direction::AtMost, 0.25).unwrap();
        assert!(granular.lower().is_finite() && granular.upper().is_finite());
        assert!((granular.lower() - exact.lower()).abs() <= 0.25 + 1e-9);
        assert!((granular.upper() - exact.upper()).abs() <= 0.25 + 1e-9);
    }

    #[test]
    fn granular_rejects_bad_granularity() {
        let e = engine(0.9, 0.5);
        let xs = spread(22);
        assert!(ci_granular(&e, &xs, Direction::AtMost, 0.0).is_err());
        assert!(ci_granular(&e, &xs, Direction::AtMost, -1.0).is_err());
        assert!(ci_granular(&e, &xs, Direction::AtMost, f64::INFINITY).is_err());
    }

    #[test]
    fn sweep_shows_fig4_structure() {
        // Verdicts along the threshold axis must be: one polarity,
        // then a None band, then the other polarity.
        let e = engine(0.9, 0.9);
        let xs = spread(22);
        let thresholds: Vec<f64> = (0..=23).map(|i| i as f64 + 0.5).collect();
        let points = sweep(&e, &xs, Direction::AtMost, &thresholds).unwrap();
        let states: Vec<i8> = points
            .iter()
            .map(|p| match p.verdict {
                Some(Assertion::Negative) => -1,
                None => 0,
                Some(Assertion::Positive) => 1,
            })
            .collect();
        // Monotone non-decreasing for AtMost.
        assert!(states.windows(2).all(|w| w[0] <= w[1]), "{states:?}");
        assert_eq!(*states.first().unwrap(), -1);
        assert_eq!(*states.last().unwrap(), 1);
        // Positive confidence is non-decreasing along the sweep.
        assert!(points
            .windows(2)
            .all(|w| w[0].positive_confidence <= w[1].positive_confidence + 1e-12));
    }

    #[test]
    fn duplicate_heavy_data_still_produces_interval() {
        // The paper's §6.4 point: unlike BCa bootstrapping, SMC is
        // untroubled by duplicates.
        let e = engine(0.9, 0.5);
        let xs: Vec<f64> = std::iter::repeat_n(5.0, 11)
            .chain(std::iter::repeat_n(7.0, 11))
            .collect();
        let ci = ci_exact(&e, &xs, Direction::AtMost).unwrap();
        assert!(ci.lower().is_finite() && ci.upper().is_finite());
        assert!(ci.contains(5.0) || ci.contains(7.0));
    }

    #[test]
    fn constant_data_interval_is_degenerate() {
        let e = engine(0.9, 0.5);
        let xs = vec![3.0; 22];
        for direction in [Direction::AtMost, Direction::AtLeast] {
            let ci = ci_exact(&e, &xs, direction).unwrap();
            // Only one distinct value: both bounds collapse onto it.
            assert!(ci.contains(3.0), "{direction:?}: {ci}");
            assert!(
                ci.lower().is_finite() && ci.upper().is_finite(),
                "{direction:?}: unbounded {ci}"
            );
        }
    }

    proptest! {
        #[test]
        fn exact_ci_covers_sample_target_quantile(
            xs in proptest::collection::vec(0.0_f64..1e3, 22..60),
            f in 0.3_f64..0.9,
        ) {
            use spa_stats::descriptive::{quantile, QuantileMethod};
            let e = engine(0.9, f);
            prop_assume!((xs.len() as u64) >= crate::min_samples::min_samples(0.9, f).unwrap());
            let ci = ci_exact(&e, &xs, Direction::AtMost).unwrap();
            // The CI's None band must contain the sample F-quantile
            // (LowerRank), because the verdict at that threshold has
            // M/N ≥ F barely — generically inconclusive — and the
            // interval covers the entire band between significant sides.
            let q = quantile(&xs, f, QuantileMethod::LowerRank).unwrap();
            prop_assert!(
                ci.lower() <= q + 1e-9 && q <= ci.upper() + 1e-9,
                "CI {:?} misses sample quantile {q}",
                (ci.lower(), ci.upper())
            );
        }

        #[test]
        fn verdicts_monotone_in_threshold(
            xs in proptest::collection::vec(0.0_f64..100.0, 22..40),
            f in 0.2_f64..0.8,
        ) {
            let e = engine(0.9, f);
            let mut sorted = xs.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut prev = -2_i8;
            for &v in &sorted {
                let s = match naive::verdict_at(&e, &xs, Direction::AtMost, v).unwrap() {
                    Some(Assertion::Negative) => -1,
                    None => 0,
                    Some(Assertion::Positive) => 1,
                };
                prop_assert!(s >= prev, "verdict regressed at {v}");
                prev = prev.max(s);
            }
        }
    }
}
