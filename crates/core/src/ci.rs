//! Confidence intervals for metrics, built from SMC hypothesis tests
//! (the paper's §4.1–4.2 and Fig. 4).
//!
//! For a fixed sample set, SPA re-runs the fixed-sample SMC test
//! (Algorithm 2) at different property thresholds `v` of
//! `metric direction v`. Thresholds far on one side produce significant
//! verdicts of one polarity, far on the other side the opposite
//! polarity, and a band in between does not converge. The confidence
//! interval is the closed span from the innermost threshold that still
//! converges on the low side to the innermost that converges on the high
//! side — the non-converging band sits strictly inside it (Fig. 4).
//!
//! # Coverage guarantee
//!
//! Following §4.1, the interval is composed from two opposing one-sided
//! hypothesis tests, each significant at confidence `C`. Since each
//! side errs with probability at most `1 − C`, the *guaranteed*
//! two-sided coverage is `2C − 1`; the Clopper–Pearson tests'
//! conservatism lifts empirical coverage to ≈ `C` at the paper's
//! settings (its §6 experiments observe exactly this), but callers
//! choosing unusual `(C, F)` combinations should budget for the
//! `2C − 1` floor.
//!
//! Two search strategies are provided:
//!
//! * [`ci_exact`] inspects only the sample values themselves (the
//!   outcome of a threshold test can only change there), giving the
//!   tightest interval the method supports with no tuning parameter;
//! * [`ci_granular`] reproduces the paper's user-specified-granularity
//!   search (§4.2) and also powers the threshold [`sweep`] of Fig. 4.

use serde::{Deserialize, Serialize};

use crate::clopper_pearson::{positive_confidence, Assertion};
use crate::min_samples::min_samples;
use crate::obs_names;
use crate::property::{Direction, MetricProperty};
use crate::smc::SmcEngine;
use crate::{CoreError, Result};
use spa_obs::{metrics::global, span};

/// A two-sided confidence interval for a metric, produced by SPA.
///
/// # Examples
///
/// ```
/// use spa_core::ci::ConfidenceInterval;
/// let ci = ConfidenceInterval::new(1.41, 1.48, 0.9, 0.9);
/// assert!(ci.contains(1.45));
/// assert!(!ci.contains(1.5));
/// assert!((ci.width() - 0.07).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    lower: f64,
    upper: f64,
    confidence: f64,
    proportion: f64,
}

impl ConfidenceInterval {
    /// Creates an interval `[lower, upper]` tagged with the confidence
    /// and proportion it was constructed for.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper` (NaN bounds are also rejected).
    pub fn new(lower: f64, upper: f64, confidence: f64, proportion: f64) -> Self {
        assert!(
            lower <= upper,
            "confidence interval bounds out of order: [{lower}, {upper}]"
        );
        Self {
            lower,
            upper,
            confidence,
            proportion,
        }
    }

    /// Lower bound.
    pub fn lower(&self) -> f64 {
        self.lower
    }

    /// Upper bound.
    pub fn upper(&self) -> f64 {
        self.upper
    }

    /// The confidence level `C` the interval was constructed for.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// The proportion `F` the interval targets.
    pub fn proportion(&self) -> f64 {
        self.proportion
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Whether `value` lies inside the closed interval.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:.6}, {:.6}] (C = {}, F = {})",
            self.lower, self.upper, self.confidence, self.proportion
        )
    }
}

/// One point of a threshold sweep (Fig. 4's plotted data).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The property threshold tested.
    pub threshold: f64,
    /// The positive-direction Clopper–Pearson confidence at this
    /// threshold — Fig. 4's y-axis. Values above `C` are significant
    /// positives; below `1 − C`, significant negatives.
    pub positive_confidence: f64,
    /// The Algorithm 2 verdict (`None` = inconclusive).
    pub verdict: Option<Assertion>,
}

fn validate_samples(engine: &SmcEngine, samples: &[f64]) -> Result<()> {
    if samples.is_empty() {
        return Err(CoreError::EmptyData);
    }
    if samples.iter().any(|x| x.is_nan()) {
        return Err(CoreError::InvalidParameter {
            name: "samples",
            value: f64::NAN,
            expected: "no NaN values",
        });
    }
    let needed = min_samples(engine.confidence_level(), engine.proportion())?;
    if (samples.len() as u64) < needed {
        return Err(CoreError::TooFewSamples {
            needed,
            got: samples.len() as u64,
        });
    }
    Ok(())
}

/// Runs the fixed-sample SMC test for `metric direction threshold` on
/// the samples and returns its verdict.
fn verdict_at(
    engine: &SmcEngine,
    samples: &[f64],
    direction: Direction,
    threshold: f64,
) -> Result<Option<Assertion>> {
    global().counter(obs_names::CI_THRESHOLD_TESTS).incr();
    let property = MetricProperty::new(direction, threshold);
    let m = property.count_satisfying(samples);
    Ok(engine.run_counts(m, samples.len() as u64)?.assertion)
}

/// The polarity a significant verdict takes for thresholds far below all
/// samples, given the property direction.
fn low_side_polarity(direction: Direction) -> Assertion {
    match direction {
        // metric ≤ v: a tiny v satisfies nothing ⇒ negative.
        Direction::AtMost => Assertion::Negative,
        // metric ≥ v: a tiny v satisfies everything ⇒ positive.
        Direction::AtLeast => Assertion::Positive,
    }
}

/// Exact SPA confidence interval: evaluates the hypothesis test at every
/// distinct sample value (the only places the verdict can change) and
/// returns the innermost significant thresholds on each side.
///
/// # Errors
///
/// * [`CoreError::EmptyData`] for no samples,
/// * [`CoreError::TooFewSamples`] if fewer than Eq. 8's minimum are
///   provided (the interval could never have two significant sides),
/// * [`CoreError::InvalidParameter`] for NaN samples.
///
/// # Examples
///
/// ```
/// use spa_core::ci::ci_exact;
/// use spa_core::property::Direction;
/// use spa_core::smc::SmcEngine;
///
/// # fn main() -> Result<(), spa_core::CoreError> {
/// let engine = SmcEngine::new(0.9, 0.5)?;
/// let samples: Vec<f64> = (1..=22).map(f64::from).collect();
/// let ci = ci_exact(&engine, &samples, Direction::AtMost)?;
/// // A median CI from 22 evenly spread samples brackets the middle.
/// assert!(ci.lower() < 11.5 && ci.upper() > 11.5);
/// # Ok(())
/// # }
/// ```
pub fn ci_exact(
    engine: &SmcEngine,
    samples: &[f64],
    direction: Direction,
) -> Result<ConfidenceInterval> {
    let _span = span!(obs_names::SPAN_CI_SEARCH);
    validate_samples(engine, samples)?;
    let mut values: Vec<f64> = samples.to_vec();
    values.sort_by(|a, b| a.partial_cmp(b).expect("NaN rejected above"));
    values.dedup();

    let low_polarity = low_side_polarity(direction);
    let mut lower: Option<f64> = None; // innermost (largest) low-side threshold
    let mut upper: Option<f64> = None; // innermost (smallest) high-side threshold

    // A threshold just below the smallest sample has M = 0 (AtMost) or
    // M = N (AtLeast); if that verdict is already significant the flip
    // happens at or below the smallest sample, so the smallest sample is
    // a valid (conservative) lower bound even when the verdict exactly at
    // it is inconclusive.
    let n = samples.len() as u64;
    let below_min_m = match direction {
        Direction::AtMost => 0,
        Direction::AtLeast => n,
    };
    if engine.run_counts(below_min_m, n)?.assertion == Some(low_polarity) {
        lower = Some(values[0]);
    }

    for &v in &values {
        match verdict_at(engine, samples, direction, v)? {
            Some(a) if a == low_polarity => lower = Some(v),
            Some(_) => {
                upper = Some(v);
                break; // verdicts are monotone in the threshold
            }
            None => {}
        }
    }

    // Symmetrically, a threshold just above the largest sample has
    // M = N (AtMost) or M = 0 (AtLeast); if that opposite-polarity
    // verdict is significant, the flip happens at or above the largest
    // sample, making it a valid conservative upper bound (matters for
    // duplicate-heavy data where the loop's candidates all stay
    // inconclusive or low-polarity).
    if upper.is_none() {
        let above_max_m = match direction {
            Direction::AtMost => n,
            Direction::AtLeast => 0,
        };
        if engine
            .run_counts(above_max_m, n)?
            .assertion
            .is_some_and(|a| a != low_polarity)
        {
            upper = Some(*values.last().expect("non-empty samples"));
        }
    }
    let lower = lower.unwrap_or(f64::NEG_INFINITY);
    let upper = upper.unwrap_or(f64::INFINITY);
    Ok(ConfidenceInterval::new(
        lower,
        upper,
        engine.confidence_level(),
        engine.proportion(),
    ))
}

/// Smallest `steps` such that `start + steps * granularity >= end`, so
/// the inclusive grid `start, start + g, …, start + steps * g` provably
/// covers `[start, end]` with exactly one point at or beyond `end`.
///
/// `ceil` on the floating-point quotient alone is not enough: the
/// division can round *down* past an integer boundary (leaving `end`
/// unvisited), or round *up* onto one (adding a duplicate end verdict).
/// Computing the candidate by `ceil` and then correcting against the
/// actually-evaluated grid expression makes the guarantee independent of
/// rounding.
fn granular_steps(start: f64, end: f64, granularity: f64) -> usize {
    debug_assert!(granularity > 0.0 && end >= start);
    let mut steps = ((end - start) / granularity).ceil() as usize;
    // Walk down while the previous point still covers `end` (ceil
    // rounded up), then up while the last point misses it (rounded
    // down). Each loop runs at most once or twice in practice.
    while steps > 0 && start + (steps - 1) as f64 * granularity >= end {
        steps -= 1;
    }
    while start + steps as f64 * granularity < end {
        steps += 1;
    }
    steps
}

/// SPA confidence interval by granularity search, as described in §4.2:
/// thresholds are visited on a grid of spacing `granularity` covering
/// the sample range, and the innermost significant thresholds on each
/// side become the interval bounds.
///
/// # Errors
///
/// As [`ci_exact`], plus [`CoreError::InvalidParameter`] for a
/// non-positive or non-finite `granularity`.
pub fn ci_granular(
    engine: &SmcEngine,
    samples: &[f64],
    direction: Direction,
    granularity: f64,
) -> Result<ConfidenceInterval> {
    if !granularity.is_finite() || granularity <= 0.0 {
        return Err(CoreError::InvalidParameter {
            name: "granularity",
            value: granularity,
            expected: "a finite value > 0",
        });
    }
    let _span = span!(obs_names::SPAN_CI_SEARCH);
    validate_samples(engine, samples)?;
    let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    // One step beyond each end so both extreme verdicts are reachable.
    let start = lo - granularity;
    let end = hi + granularity;
    let steps = granular_steps(start, end, granularity);

    let low_polarity = low_side_polarity(direction);
    let mut lower: Option<f64> = None;
    let mut upper: Option<f64> = None;
    for i in 0..=steps {
        let v = start + i as f64 * granularity;
        match verdict_at(engine, samples, direction, v)? {
            Some(a) if a == low_polarity => lower = Some(v),
            Some(_) => {
                upper = Some(v);
                break;
            }
            None => {}
        }
    }
    let lower = lower.unwrap_or(f64::NEG_INFINITY);
    let upper = upper.unwrap_or(f64::INFINITY);
    Ok(ConfidenceInterval::new(
        lower,
        upper,
        engine.confidence_level(),
        engine.proportion(),
    ))
}

/// SPA confidence interval by the paper's *adaptive* §4.2 procedure:
/// start from an initial metric estimate `v0` (defaulting to the sample
/// mean), step outward by `granularity` in each direction until the
/// innermost significant verdict of each polarity is found.
///
/// Produces the same interval as [`ci_granular`] on the same grid
/// alignment while evaluating far fewer thresholds when `v0` lands
/// inside the inconclusive band (the common case, since the architect's
/// estimate comes from the data).
///
/// # Errors
///
/// As [`ci_granular`].
pub fn ci_adaptive(
    engine: &SmcEngine,
    samples: &[f64],
    direction: Direction,
    granularity: f64,
    v0: Option<f64>,
) -> Result<ConfidenceInterval> {
    if !granularity.is_finite() || granularity <= 0.0 {
        return Err(CoreError::InvalidParameter {
            name: "granularity",
            value: granularity,
            expected: "a finite value > 0",
        });
    }
    let _span = span!(obs_names::SPAN_CI_SEARCH);
    validate_samples(engine, samples)?;
    let v0 = v0.unwrap_or_else(|| samples.iter().sum::<f64>() / samples.len() as f64);
    let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let low_polarity = low_side_polarity(direction);

    // March downward from v0 until the low-side polarity turns
    // significant; high-side verdicts seen on the way down mean v0
    // overshot the band, so they tighten the upper bound instead.
    let mut lower = None;
    let mut upper_from_descent = None;
    let mut v = v0;
    while v >= lo - 2.0 * granularity {
        match verdict_at(engine, samples, direction, v)? {
            Some(a) if a == low_polarity => {
                lower = Some(v);
                break;
            }
            Some(_) => upper_from_descent = Some(v),
            None => {}
        }
        v -= granularity;
    }
    // March upward for the high side (skipped if the descent already
    // found it, which means everything above is also significant).
    let mut upper = upper_from_descent;
    if upper.is_none() {
        let mut v = v0 + granularity;
        while v <= hi + 2.0 * granularity {
            match verdict_at(engine, samples, direction, v)? {
                Some(a) if a != low_polarity => {
                    upper = Some(v);
                    break;
                }
                Some(_) => {
                    // Still on the low side of the band: v0 undershot;
                    // the innermost low-side threshold is above v0.
                    lower = Some(v);
                }
                None => {}
            }
            v += granularity;
        }
    }
    Ok(ConfidenceInterval::new(
        lower.unwrap_or(f64::NEG_INFINITY),
        upper.unwrap_or(f64::INFINITY),
        engine.confidence_level(),
        engine.proportion(),
    ))
}

/// Evaluates the hypothesis test on a grid of thresholds and reports
/// every point — the data behind Fig. 4.
///
/// # Errors
///
/// As [`ci_granular`].
pub fn sweep(
    engine: &SmcEngine,
    samples: &[f64],
    direction: Direction,
    thresholds: &[f64],
) -> Result<Vec<SweepPoint>> {
    validate_samples(engine, samples)?;
    let n = samples.len() as u64;
    thresholds
        .iter()
        .map(|&v| {
            let property = MetricProperty::new(direction, v);
            let m = property.count_satisfying(samples);
            Ok(SweepPoint {
                threshold: v,
                positive_confidence: positive_confidence(m, n, engine.proportion())?,
                verdict: engine.run_counts(m, n)?.assertion,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn engine(c: f64, f: f64) -> SmcEngine {
        SmcEngine::new(c, f).unwrap()
    }

    fn spread(n: usize) -> Vec<f64> {
        (1..=n).map(|i| i as f64).collect()
    }

    #[test]
    fn interval_type_behaviour() {
        let ci = ConfidenceInterval::new(1.0, 2.0, 0.9, 0.5);
        assert_eq!(ci.lower(), 1.0);
        assert_eq!(ci.upper(), 2.0);
        assert_eq!(ci.confidence(), 0.9);
        assert_eq!(ci.proportion(), 0.5);
        assert!(ci.contains(1.0) && ci.contains(2.0));
        assert!(!ci.contains(0.999));
        assert!(ci.to_string().contains("C = 0.9"));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn inverted_interval_panics() {
        let _ = ConfidenceInterval::new(2.0, 1.0, 0.9, 0.5);
    }

    #[test]
    fn exact_ci_median_brackets_sample_median() {
        let e = engine(0.9, 0.5);
        let xs = spread(22);
        let ci = ci_exact(&e, &xs, Direction::AtMost).unwrap();
        assert!(ci.lower() < 11.5, "lower {} too high", ci.lower());
        assert!(ci.upper() > 11.5, "upper {} too low", ci.upper());
        assert!(ci.lower().is_finite() && ci.upper().is_finite());
    }

    #[test]
    fn exact_ci_requires_min_samples() {
        let e = engine(0.9, 0.9);
        let xs = spread(10); // needs 22
        assert!(matches!(
            ci_exact(&e, &xs, Direction::AtMost),
            Err(CoreError::TooFewSamples {
                needed: 22,
                got: 10
            })
        ));
        assert!(matches!(
            ci_exact(&e, &[], Direction::AtMost),
            Err(CoreError::EmptyData)
        ));
    }

    #[test]
    fn exact_ci_rejects_nan() {
        let e = engine(0.9, 0.5);
        let mut xs = spread(22);
        xs[3] = f64::NAN;
        assert!(ci_exact(&e, &xs, Direction::AtMost).is_err());
    }

    #[test]
    fn at_least_direction_brackets_low_quantile() {
        // Direction::AtLeast with F = 0.9 targets the 0.1-quantile
        // (the speedup "at least X in 90 % of runs" value).
        let e = engine(0.9, 0.9);
        let xs = spread(100);
        let ci = ci_exact(&e, &xs, Direction::AtLeast).unwrap();
        // The 0.1-quantile of 1..=100 is near 10.
        assert!(ci.lower() <= 10.0 + 8.0 && ci.upper() >= 10.0 - 8.0);
        assert!(ci.lower() < ci.upper());
    }

    #[test]
    fn granular_nests_inside_exact() {
        // Exact mode anchors bounds at sample values, which can only
        // widen the interval relative to a fine grid search; the grid can
        // overshoot an exact bound by at most one step.
        let e = engine(0.9, 0.5);
        let xs = spread(30);
        let exact = ci_exact(&e, &xs, Direction::AtMost).unwrap();
        let grain = 0.25;
        let granular = ci_granular(&e, &xs, Direction::AtMost, grain).unwrap();
        assert!(granular.lower() >= exact.lower() - grain - 1e-9);
        assert!(granular.upper() <= exact.upper() + grain + 1e-9);
        // The two intervals must overlap substantially.
        assert!(granular.lower() < exact.upper());
        assert!(exact.lower() < granular.upper());
    }

    #[test]
    fn adaptive_matches_full_grid_scan() {
        let e = engine(0.9, 0.5);
        let xs = spread(30);
        let grain = 0.25;
        let full = ci_granular(&e, &xs, Direction::AtMost, grain).unwrap();
        // Same grid alignment: start the adaptive search on a grid point
        // near the sample mean (the full scan's grid starts at
        // min - grain = 0.75, so mean 15.5 is on it).
        let adaptive = ci_adaptive(&e, &xs, Direction::AtMost, grain, Some(15.5)).unwrap();
        assert!((adaptive.lower() - full.lower()).abs() < 1e-9);
        assert!((adaptive.upper() - full.upper()).abs() < 1e-9);
    }

    #[test]
    fn adaptive_handles_v0_outside_the_band() {
        let e = engine(0.9, 0.5);
        let xs = spread(30);
        let grain = 0.25;
        let inside = ci_adaptive(&e, &xs, Direction::AtMost, grain, Some(15.5)).unwrap();
        // v0 far below the band: the whole interval is found on the way up.
        let low = ci_adaptive(&e, &xs, Direction::AtMost, grain, Some(2.0)).unwrap();
        // v0 far above the band: found on the way down.
        let high = ci_adaptive(&e, &xs, Direction::AtMost, grain, Some(28.0)).unwrap();
        for ci in [&low, &high] {
            assert!(
                (ci.lower() - inside.lower()).abs() <= grain + 1e-9,
                "lower {} vs {}",
                ci.lower(),
                inside.lower()
            );
            assert!(
                (ci.upper() - inside.upper()).abs() <= grain + 1e-9,
                "upper {} vs {}",
                ci.upper(),
                inside.upper()
            );
        }
    }

    #[test]
    fn adaptive_default_v0_is_the_mean() {
        let e = engine(0.9, 0.5);
        let xs = spread(30);
        let a = ci_adaptive(&e, &xs, Direction::AtMost, 0.1, None).unwrap();
        let b = ci_adaptive(&e, &xs, Direction::AtMost, 0.1, Some(15.5)).unwrap();
        assert!((a.lower() - b.lower()).abs() < 1e-9);
        assert!((a.upper() - b.upper()).abs() < 1e-9);
        assert!(ci_adaptive(&e, &xs, Direction::AtMost, 0.0, None).is_err());
    }

    #[test]
    fn granular_grid_covers_exact_multiple_ranges() {
        // When (hi - lo) + 2g is an exact multiple of g, the grid must
        // end exactly at hi + g: one end point, not two (the old
        // `ceil(...) + 1` construction evaluated a duplicate), and the
        // end must be visited even when the FP quotient rounds down.
        for (start, end, g, want) in [
            (0.75, 30.25, 0.25, 118), // spread(30) with grain 0.25
            (0.0, 1.0, 0.1, 10),      // 1.0 / 0.1 rounds via FP
            (-1.0, 1.0, 0.5, 4),
            (2.5, 2.5 + 7.0 * 0.125, 0.125, 7),
        ] {
            let steps = granular_steps(start, end, g);
            assert_eq!(steps, want, "grid [{start}, {end}] by {g}");
            assert!(
                start + steps as f64 * g >= end,
                "top of range unvisited for [{start}, {end}] by {g}"
            );
            assert!(
                start + (steps - 1) as f64 * g < end,
                "duplicate end verdict for [{start}, {end}] by {g}"
            );
        }
    }

    #[test]
    fn granular_irregular_grain_still_covers_range() {
        // Non-representable grains where ceil alone can misfire.
        for (lo, hi, g) in [(1.0, 30.0, 0.3), (0.0, 1e6, 0.7), (5.0, 5.0, 0.1)] {
            let start = lo - g;
            let end = hi + g;
            let steps = granular_steps(start, end, g);
            assert!(start + steps as f64 * g >= end);
            assert!(steps == 0 || start + (steps - 1) as f64 * g < end);
        }
    }

    #[test]
    fn granular_exact_multiple_range_matches_exact_ci() {
        // End-to-end regression at an exact-multiple range: spread(30)
        // with grain 0.25 (grid start 0.75, end 30.25, 118 steps). The
        // granular interval must be finite and nest within one grain of
        // the exact interval.
        let e = engine(0.9, 0.5);
        let xs = spread(30);
        let exact = ci_exact(&e, &xs, Direction::AtMost).unwrap();
        let granular = ci_granular(&e, &xs, Direction::AtMost, 0.25).unwrap();
        assert!(granular.lower().is_finite() && granular.upper().is_finite());
        assert!((granular.lower() - exact.lower()).abs() <= 0.25 + 1e-9);
        assert!((granular.upper() - exact.upper()).abs() <= 0.25 + 1e-9);
    }

    #[test]
    fn granular_rejects_bad_granularity() {
        let e = engine(0.9, 0.5);
        let xs = spread(22);
        assert!(ci_granular(&e, &xs, Direction::AtMost, 0.0).is_err());
        assert!(ci_granular(&e, &xs, Direction::AtMost, -1.0).is_err());
        assert!(ci_granular(&e, &xs, Direction::AtMost, f64::INFINITY).is_err());
    }

    #[test]
    fn sweep_shows_fig4_structure() {
        // Verdicts along the threshold axis must be: one polarity,
        // then a None band, then the other polarity.
        let e = engine(0.9, 0.9);
        let xs = spread(22);
        let thresholds: Vec<f64> = (0..=23).map(|i| i as f64 + 0.5).collect();
        let points = sweep(&e, &xs, Direction::AtMost, &thresholds).unwrap();
        let states: Vec<i8> = points
            .iter()
            .map(|p| match p.verdict {
                Some(Assertion::Negative) => -1,
                None => 0,
                Some(Assertion::Positive) => 1,
            })
            .collect();
        // Monotone non-decreasing for AtMost.
        assert!(states.windows(2).all(|w| w[0] <= w[1]), "{states:?}");
        assert_eq!(*states.first().unwrap(), -1);
        assert_eq!(*states.last().unwrap(), 1);
        // Positive confidence is non-decreasing along the sweep.
        assert!(points
            .windows(2)
            .all(|w| w[0].positive_confidence <= w[1].positive_confidence + 1e-12));
    }

    #[test]
    fn duplicate_heavy_data_still_produces_interval() {
        // The paper's §6.4 point: unlike BCa bootstrapping, SMC is
        // untroubled by duplicates.
        let e = engine(0.9, 0.5);
        let xs: Vec<f64> = std::iter::repeat_n(5.0, 11)
            .chain(std::iter::repeat_n(7.0, 11))
            .collect();
        let ci = ci_exact(&e, &xs, Direction::AtMost).unwrap();
        assert!(ci.lower().is_finite() && ci.upper().is_finite());
        assert!(ci.contains(5.0) || ci.contains(7.0));
    }

    #[test]
    fn constant_data_interval_is_degenerate() {
        let e = engine(0.9, 0.5);
        let xs = vec![3.0; 22];
        for direction in [Direction::AtMost, Direction::AtLeast] {
            let ci = ci_exact(&e, &xs, direction).unwrap();
            // Only one distinct value: both bounds collapse onto it.
            assert!(ci.contains(3.0), "{direction:?}: {ci}");
            assert!(
                ci.lower().is_finite() && ci.upper().is_finite(),
                "{direction:?}: unbounded {ci}"
            );
        }
    }

    proptest! {
        #[test]
        fn exact_ci_covers_sample_target_quantile(
            xs in proptest::collection::vec(0.0_f64..1e3, 22..60),
            f in 0.3_f64..0.9,
        ) {
            use spa_stats::descriptive::{quantile, QuantileMethod};
            let e = engine(0.9, f);
            prop_assume!((xs.len() as u64) >= crate::min_samples::min_samples(0.9, f).unwrap());
            let ci = ci_exact(&e, &xs, Direction::AtMost).unwrap();
            // The CI's None band must contain the sample F-quantile
            // (LowerRank), because the verdict at that threshold has
            // M/N ≥ F barely — generically inconclusive — and the
            // interval covers the entire band between significant sides.
            let q = quantile(&xs, f, QuantileMethod::LowerRank).unwrap();
            prop_assert!(
                ci.lower() <= q + 1e-9 && q <= ci.upper() + 1e-9,
                "CI {:?} misses sample quantile {q}",
                (ci.lower(), ci.upper())
            );
        }

        #[test]
        fn verdicts_monotone_in_threshold(
            xs in proptest::collection::vec(0.0_f64..100.0, 22..40),
            f in 0.2_f64..0.8,
        ) {
            let e = engine(0.9, f);
            let mut sorted = xs.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut prev = -2_i8;
            for &v in &sorted {
                let s = match verdict_at(&e, &xs, Direction::AtMost, v).unwrap() {
                    Some(Assertion::Negative) => -1,
                    None => 0,
                    Some(Assertion::Positive) => 1,
                };
                prop_assert!(s >= prev, "verdict regressed at {v}");
                prev = prev.max(s);
            }
        }
    }
}
