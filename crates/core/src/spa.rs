//! The push-button SPA driver (the paper's Fig. 3).
//!
//! [`Spa`] wraps the SMC engine with everything an architect needs:
//! it computes the minimum sample count (Eq. 8), collects executions
//! from a [`Sampler`] in parallel batches (§4.3), runs single hypothesis
//! tests for explicitly stated properties, and constructs confidence
//! intervals for metrics by threshold search (§4.1–4.2).

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::ci::{ci_exact, ci_granular, sweep, ConfidenceInterval, SweepPoint};
use crate::min_samples::min_samples;
use crate::property::MetricProperty;
use crate::smc::{FixedOutcome, SmcEngine};
use crate::{CoreError, Result};

pub use crate::property::Direction;

/// A source of sample executions: given a seed, produce one metric
/// observation.
///
/// Implementations are typically simulator adapters (run the simulator
/// with this seed, extract the metric). The trait is object-safe and the
/// SPA driver calls it from multiple threads, hence `Sync`.
pub trait Sampler: Sync {
    /// Runs one execution identified by `seed` and returns the metric of
    /// interest.
    fn sample(&self, seed: u64) -> f64;
}

impl<F> Sampler for F
where
    F: Fn(u64) -> f64 + Sync,
{
    fn sample(&self, seed: u64) -> f64 {
        self(seed)
    }
}

/// How SPA searches thresholds when constructing a confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Granularity {
    /// Evaluate only at distinct sample values (exact, no tuning knob).
    Exact,
    /// The paper's §4.2 search on a grid of the given spacing.
    Step(f64),
}

/// Builder for [`Spa`] (use [`Spa::builder`]).
#[derive(Debug, Clone)]
pub struct SpaBuilder {
    confidence: f64,
    proportion: f64,
    granularity: Granularity,
    batch_size: usize,
}

impl Default for SpaBuilder {
    fn default() -> Self {
        Self {
            confidence: 0.9,
            proportion: 0.9,
            granularity: Granularity::Exact,
            batch_size: 4,
        }
    }
}

impl SpaBuilder {
    /// Sets the confidence level `C` (default 0.9).
    pub fn confidence(mut self, c: f64) -> Self {
        self.confidence = c;
        self
    }

    /// Sets the proportion `F` (default 0.9).
    pub fn proportion(mut self, f: f64) -> Self {
        self.proportion = f;
        self
    }

    /// Sets the threshold-search granularity (default exact).
    pub fn granularity(mut self, g: Granularity) -> Self {
        self.granularity = g;
        self
    }

    /// Sets the number of simultaneous simulator executions when
    /// collecting samples (the paper's optional batch size `b`;
    /// default 4).
    pub fn batch_size(mut self, b: usize) -> Self {
        self.batch_size = b.max(1);
        self
    }

    /// Builds the driver.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `C` or `F` is outside
    /// `(0, 1)` or the granularity step is not positive.
    pub fn build(self) -> Result<Spa> {
        let engine = SmcEngine::new(self.confidence, self.proportion)?;
        if let Granularity::Step(g) = self.granularity {
            if !g.is_finite() || g <= 0.0 {
                return Err(CoreError::InvalidParameter {
                    name: "granularity",
                    value: g,
                    expected: "a finite value > 0",
                });
            }
        }
        Ok(Spa {
            engine,
            granularity: self.granularity,
            batch_size: self.batch_size,
        })
    }
}

/// The SPA framework driver.
///
/// # Examples
///
/// Confidence interval from existing data:
///
/// ```
/// use spa_core::spa::{Direction, Spa};
/// # fn main() -> Result<(), spa_core::CoreError> {
/// let samples: Vec<f64> = (0..30).map(|i| (i % 7) as f64).collect();
/// let spa = Spa::builder().confidence(0.9).proportion(0.5).build()?;
/// let ci = spa.confidence_interval(&samples, Direction::AtMost)?;
/// assert!(ci.lower() <= ci.upper());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Spa {
    engine: SmcEngine,
    granularity: Granularity,
    batch_size: usize,
}

impl Spa {
    /// Starts building a driver.
    pub fn builder() -> SpaBuilder {
        SpaBuilder::default()
    }

    /// The underlying SMC engine.
    pub fn engine(&self) -> &SmcEngine {
        &self.engine
    }

    /// The minimum number of executions SPA must collect before a CI can
    /// be produced (Eq. 8).
    pub fn required_samples(&self) -> u64 {
        min_samples(self.engine.confidence_level(), self.engine.proportion())
            .expect("engine parameters validated at construction")
    }

    /// Runs one SMC hypothesis test for an explicitly given property on
    /// fixed data (the "trivial" SPA path of §4.2).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyData`] for no samples.
    pub fn hypothesis_test(
        &self,
        property: &MetricProperty,
        samples: &[f64],
    ) -> Result<FixedOutcome> {
        if samples.is_empty() {
            return Err(CoreError::EmptyData);
        }
        let m = property.count_satisfying(samples);
        self.engine.run_counts(m, samples.len() as u64)
    }

    /// Constructs a confidence interval for the metric from fixed data,
    /// using the configured threshold-search granularity.
    ///
    /// # Errors
    ///
    /// See [`ci_exact`] / [`ci_granular`].
    pub fn confidence_interval(
        &self,
        samples: &[f64],
        direction: Direction,
    ) -> Result<ConfidenceInterval> {
        match self.granularity {
            Granularity::Exact => ci_exact(&self.engine, samples, direction),
            Granularity::Step(g) => ci_granular(&self.engine, samples, direction, g),
        }
    }

    /// Evaluates the hypothesis test across explicit thresholds (Fig. 4).
    ///
    /// # Errors
    ///
    /// See [`sweep`].
    pub fn sweep(
        &self,
        samples: &[f64],
        direction: Direction,
        thresholds: &[f64],
    ) -> Result<Vec<SweepPoint>> {
        sweep(&self.engine, samples, direction, thresholds)
    }

    /// Collects at least [`required_samples`](Self::required_samples)
    /// executions from the sampler — `batch_size` at a time on parallel
    /// threads (§4.3) — and returns the samples in seed order.
    ///
    /// Seeds are `seed_start, seed_start + 1, …`, so a given
    /// `(sampler, seed_start)` pair is fully reproducible regardless of
    /// batch size.
    pub fn collect_samples<S: Sampler + ?Sized>(
        &self,
        sampler: &S,
        seed_start: u64,
        count: Option<u64>,
    ) -> Vec<f64> {
        let total = count.unwrap_or_else(|| self.required_samples());
        let next = AtomicU64::new(0);
        let results: Mutex<Vec<(u64, f64)>> = Mutex::new(Vec::with_capacity(total as usize));
        let workers = self.batch_size.min(total as usize).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let value = sampler.sample(seed_start + i);
                    results.lock().push((i, value));
                });
            }
        });
        let mut pairs = results.into_inner();
        pairs.sort_by_key(|&(i, _)| i);
        pairs.into_iter().map(|(_, v)| v).collect()
    }

    /// End-to-end SPA (Fig. 3): collect the minimum number of executions
    /// from the sampler and construct the metric's confidence interval.
    ///
    /// # Errors
    ///
    /// Propagates CI-construction errors.
    pub fn run<S: Sampler + ?Sized>(
        &self,
        sampler: &S,
        seed_start: u64,
        direction: Direction,
    ) -> Result<SpaReport> {
        let samples = self.collect_samples(sampler, seed_start, None);
        let interval = self.confidence_interval(&samples, direction)?;
        Ok(SpaReport { samples, interval })
    }
}

/// The output of an end-to-end SPA run.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaReport {
    /// The collected metric samples, in seed order.
    pub samples: Vec<f64>,
    /// The constructed confidence interval.
    pub interval: ConfidenceInterval,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clopper_pearson::Assertion;

    #[test]
    fn builder_defaults_and_validation() {
        let spa = Spa::builder().build().unwrap();
        assert_eq!(spa.required_samples(), 22);
        assert!(Spa::builder().confidence(1.5).build().is_err());
        assert!(Spa::builder().proportion(0.0).build().is_err());
        assert!(Spa::builder()
            .granularity(Granularity::Step(0.0))
            .build()
            .is_err());
        // batch_size 0 is clamped to 1 rather than rejected.
        let spa = Spa::builder().batch_size(0).build().unwrap();
        assert_eq!(spa.batch_size, 1);
    }

    #[test]
    fn required_samples_median() {
        let spa = Spa::builder().proportion(0.5).build().unwrap();
        assert_eq!(spa.required_samples(), 4);
    }

    #[test]
    fn hypothesis_test_direct_property() {
        let spa = Spa::builder().confidence(0.9).proportion(0.9).build().unwrap();
        let samples = vec![1.0; 22];
        let p = MetricProperty::new(Direction::AtMost, 2.0);
        let out = spa.hypothesis_test(&p, &samples).unwrap();
        assert_eq!(out.assertion, Some(Assertion::Positive));
        let p = MetricProperty::new(Direction::AtMost, 0.5);
        let out = spa.hypothesis_test(&p, &samples).unwrap();
        assert_eq!(out.assertion, Some(Assertion::Negative));
        assert!(spa.hypothesis_test(&p, &[]).is_err());
    }

    #[test]
    fn collect_samples_is_reproducible_across_batch_sizes() {
        let sampler = |seed: u64| (seed as f64).sin();
        let spa1 = Spa::builder().batch_size(1).build().unwrap();
        let spa8 = Spa::builder().batch_size(8).build().unwrap();
        let a = spa1.collect_samples(&sampler, 100, Some(50));
        let b = spa8.collect_samples(&sampler, 100, Some(50));
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        // Seed offset shifts the stream.
        let c = spa8.collect_samples(&sampler, 101, Some(50));
        assert_ne!(a, c);
        assert_eq!(a[1], c[0]);
    }

    #[test]
    fn collect_samples_default_count_is_required_samples() {
        let spa = Spa::builder().build().unwrap();
        let samples = spa.collect_samples(&|s: u64| s as f64, 0, None);
        assert_eq!(samples.len() as u64, spa.required_samples());
    }

    #[test]
    fn end_to_end_run_produces_interval() {
        // A sampler with a deterministic spread of values.
        let sampler = |seed: u64| 1.0 + (seed % 10) as f64 * 0.1;
        let spa = Spa::builder()
            .confidence(0.9)
            .proportion(0.5)
            .batch_size(4)
            .build()
            .unwrap();
        let report = spa.run(&sampler, 0, Direction::AtMost).unwrap();
        assert_eq!(report.samples.len() as u64, spa.required_samples());
        assert!(report.interval.lower() <= report.interval.upper());
        assert!(report.interval.contains(1.4) || report.interval.width() < 1.0);
    }

    #[test]
    fn granular_mode_is_used_when_configured() {
        let samples: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let exact = Spa::builder().proportion(0.5).build().unwrap();
        let stepped = Spa::builder()
            .proportion(0.5)
            .granularity(Granularity::Step(0.5))
            .build()
            .unwrap();
        let a = exact.confidence_interval(&samples, Direction::AtMost).unwrap();
        let b = stepped
            .confidence_interval(&samples, Direction::AtMost)
            .unwrap();
        assert!((a.lower() - b.lower()).abs() <= 0.5 + 1e-9);
        assert!((a.upper() - b.upper()).abs() <= 0.5 + 1e-9);
    }

    #[test]
    fn sweep_passthrough() {
        let spa = Spa::builder().proportion(0.5).build().unwrap();
        let samples: Vec<f64> = (0..22).map(|i| i as f64).collect();
        let pts = spa
            .sweep(&samples, Direction::AtMost, &[-1.0, 10.5, 30.0])
            .unwrap();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].verdict, Some(Assertion::Negative));
        assert_eq!(pts[2].verdict, Some(Assertion::Positive));
    }
}
