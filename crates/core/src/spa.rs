//! The push-button SPA driver (the paper's Fig. 3).
//!
//! [`Spa`] wraps the SMC engine with everything an architect needs:
//! it computes the minimum sample count (Eq. 8), collects executions
//! from a [`Sampler`] in parallel batches (§4.3), runs single hypothesis
//! tests for explicitly stated properties, and constructs confidence
//! intervals for metrics by threshold search (§4.1–4.2).
//!
//! The fault-tolerant path ([`Spa::run_fallible`]) does all of the above
//! against a [`FallibleSampler`]: sampler calls are panic-isolated,
//! failed executions are retried under a [`RetryPolicy`] with
//! deterministically derived seeds, and if retries are exhausted the
//! report *degrades gracefully* — the confidence interval is re-derived
//! at the confidence level the collected `N' < N` samples can actually
//! support (Eq. 4–5), never silently reported at the requested `C`.

use std::panic::AssertUnwindSafe;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::ci::{ci_exact, ci_granular, sweep, ConfidenceInterval, SweepPoint};
use crate::fault::{
    derive_retry_seed, FailureCounts, FallibleSampler, RetryPolicy, SampleBatch, SampleError,
};
use crate::min_samples::{achievable_confidence, min_samples};
use crate::obs_names;
use crate::pipeline::collect_indexed;
use crate::property::MetricProperty;
use crate::smc::{FixedOutcome, SmcEngine};
use crate::{CoreError, Result};
use spa_obs::{metrics::global, span};

pub use crate::property::Direction;

/// A source of sample executions: given a seed, produce one metric
/// observation.
///
/// Implementations are typically simulator adapters (run the simulator
/// with this seed, extract the metric). The trait is object-safe and the
/// SPA driver calls it from multiple threads, hence `Sync`.
pub trait Sampler: Sync {
    /// Runs one execution identified by `seed` and returns the metric of
    /// interest.
    fn sample(&self, seed: u64) -> f64;
}

impl<F> Sampler for F
where
    F: Fn(u64) -> f64 + Sync,
{
    fn sample(&self, seed: u64) -> f64 {
        self(seed)
    }
}

/// How SPA searches thresholds when constructing a confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Granularity {
    /// Evaluate only at distinct sample values (exact, no tuning knob).
    Exact,
    /// The paper's §4.2 search on a grid of the given spacing.
    Step(f64),
}

/// Builder for [`Spa`] (use [`Spa::builder`]).
#[derive(Debug, Clone)]
pub struct SpaBuilder {
    confidence: f64,
    proportion: f64,
    granularity: Granularity,
    batch_size: usize,
}

impl Default for SpaBuilder {
    fn default() -> Self {
        Self {
            confidence: 0.9,
            proportion: 0.9,
            granularity: Granularity::Exact,
            batch_size: 4,
        }
    }
}

impl SpaBuilder {
    /// Sets the confidence level `C` (default 0.9).
    pub fn confidence(mut self, c: f64) -> Self {
        self.confidence = c;
        self
    }

    /// Sets the proportion `F` (default 0.9).
    pub fn proportion(mut self, f: f64) -> Self {
        self.proportion = f;
        self
    }

    /// Sets the threshold-search granularity (default exact).
    pub fn granularity(mut self, g: Granularity) -> Self {
        self.granularity = g;
        self
    }

    /// Sets the number of simultaneous simulator executions when
    /// collecting samples (the paper's optional batch size `b`;
    /// default 4).
    pub fn batch_size(mut self, b: usize) -> Self {
        self.batch_size = b.max(1);
        self
    }

    /// Builds the driver.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `C` or `F` is outside
    /// `(0, 1)` or the granularity step is not positive.
    pub fn build(self) -> Result<Spa> {
        let engine = SmcEngine::new(self.confidence, self.proportion)?;
        if let Granularity::Step(g) = self.granularity {
            if !g.is_finite() || g <= 0.0 {
                return Err(CoreError::InvalidParameter {
                    name: "granularity",
                    value: g,
                    expected: "a finite value > 0",
                });
            }
        }
        Ok(Spa {
            engine,
            granularity: self.granularity,
            batch_size: self.batch_size,
        })
    }
}

/// The SPA framework driver.
///
/// # Examples
///
/// Confidence interval from existing data:
///
/// ```
/// use spa_core::spa::{Direction, Spa};
/// # fn main() -> Result<(), spa_core::CoreError> {
/// let samples: Vec<f64> = (0..30).map(|i| (i % 7) as f64).collect();
/// let spa = Spa::builder().confidence(0.9).proportion(0.5).build()?;
/// let ci = spa.confidence_interval(&samples, Direction::AtMost)?;
/// assert!(ci.lower() <= ci.upper());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Spa {
    engine: SmcEngine,
    granularity: Granularity,
    batch_size: usize,
}

impl Spa {
    /// Starts building a driver.
    pub fn builder() -> SpaBuilder {
        SpaBuilder::default()
    }

    /// The underlying SMC engine.
    pub fn engine(&self) -> &SmcEngine {
        &self.engine
    }

    /// The minimum number of executions SPA must collect before a CI can
    /// be produced (Eq. 8).
    pub fn required_samples(&self) -> u64 {
        min_samples(self.engine.confidence_level(), self.engine.proportion())
            .expect("engine parameters validated at construction")
    }

    /// Runs one SMC hypothesis test for an explicitly given property on
    /// fixed data (the "trivial" SPA path of §4.2).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyData`] for no samples.
    pub fn hypothesis_test(
        &self,
        property: &MetricProperty,
        samples: &[f64],
    ) -> Result<FixedOutcome> {
        if samples.is_empty() {
            return Err(CoreError::EmptyData);
        }
        let m = property.count_satisfying(samples);
        self.engine.run_counts(m, samples.len() as u64)
    }

    /// Constructs a confidence interval for the metric from fixed data,
    /// using the configured threshold-search granularity.
    ///
    /// # Errors
    ///
    /// See [`ci_exact`] / [`ci_granular`].
    pub fn confidence_interval(
        &self,
        samples: &[f64],
        direction: Direction,
    ) -> Result<ConfidenceInterval> {
        match self.granularity {
            Granularity::Exact => ci_exact(&self.engine, samples, direction),
            Granularity::Step(g) => ci_granular(&self.engine, samples, direction, g),
        }
    }

    /// Evaluates the hypothesis test across explicit thresholds (Fig. 4).
    ///
    /// # Errors
    ///
    /// See [`sweep`].
    pub fn sweep(
        &self,
        samples: &[f64],
        direction: Direction,
        thresholds: &[f64],
    ) -> Result<Vec<SweepPoint>> {
        sweep(&self.engine, samples, direction, thresholds)
    }

    /// Collects at least [`required_samples`](Self::required_samples)
    /// executions from the sampler — `batch_size` at a time on parallel
    /// threads (§4.3) — and returns the samples in seed order.
    ///
    /// Seeds are `seed_start, seed_start + 1, …`, so a given
    /// `(sampler, seed_start)` pair is fully reproducible regardless of
    /// batch size.
    pub fn collect_samples<S: Sampler + ?Sized>(
        &self,
        sampler: &S,
        seed_start: u64,
        count: Option<u64>,
    ) -> Vec<f64> {
        let _span = span!(obs_names::SPAN_COLLECT);
        let total = count.unwrap_or_else(|| self.required_samples());
        global().counter(obs_names::SAMPLES_REQUESTED).add(total);
        let workers = self.batch_size.min(total as usize).max(1);
        let pairs = collect_indexed(total, workers, &|i| Some(sampler.sample(seed_start + i)));
        global()
            .counter(obs_names::SAMPLES_COLLECTED)
            .add(pairs.len() as u64);
        pairs.into_iter().map(|(_, v)| v).collect()
    }

    /// End-to-end SPA (Fig. 3): collect the minimum number of executions
    /// from the sampler and construct the metric's confidence interval.
    ///
    /// # Errors
    ///
    /// Propagates CI-construction errors.
    pub fn run<S: Sampler + ?Sized>(
        &self,
        sampler: &S,
        seed_start: u64,
        direction: Direction,
    ) -> Result<SpaReport> {
        let _span = span!(obs_names::SPAN_RUN);
        let samples = self.collect_samples(sampler, seed_start, None);
        let interval = self.confidence_interval(&samples, direction)?;
        let confidence = self.engine.confidence_level();
        Ok(SpaReport {
            samples,
            interval,
            failures: FailureCounts::default(),
            degraded: false,
            requested_confidence: confidence,
            achieved_confidence: confidence,
        })
    }

    /// Fault-tolerant variant of [`collect_samples`](Self::collect_samples):
    /// collects executions from a [`FallibleSampler`] in parallel batches,
    /// isolating panics, classifying failures, and retrying per `policy`.
    ///
    /// Each base seed `seed_start + i` is attempted up to
    /// [`RetryPolicy::max_attempts`] times; retry `k` runs with the
    /// deterministically derived seed [`derive_retry_seed`]`(base, k)`
    /// (attempt 0 is the base seed itself), so the collected population
    /// depends only on `(sampler, seed_start, policy)` — never on thread
    /// scheduling or wall-clock time. Seeds whose retry budget is
    /// exhausted are dropped; the returned [`SampleBatch`] records every
    /// failure by kind and may therefore hold fewer than `count` samples.
    pub fn collect_samples_fallible<S: FallibleSampler + ?Sized>(
        &self,
        sampler: &S,
        seed_start: u64,
        count: Option<u64>,
        policy: &RetryPolicy,
    ) -> SampleBatch {
        let _span = span!(obs_names::SPAN_COLLECT_FALLIBLE);
        let total = count.unwrap_or_else(|| self.required_samples());
        global().counter(obs_names::SAMPLES_REQUESTED).add(total);
        let failures: Mutex<FailureCounts> = Mutex::new(FailureCounts::default());
        let workers = self.batch_size.min(total as usize).max(1);
        let pairs = collect_indexed(total, workers, &|i| {
            let base_seed = seed_start + i;
            let mut local = FailureCounts::default();
            let mut collected = None;
            for attempt in 0..policy.max_attempts() {
                if attempt > 0 {
                    local.retries += 1;
                    let delay = policy.backoff_delay(base_seed, attempt);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
                let seed = derive_retry_seed(base_seed, attempt);
                match run_one_attempt(sampler, seed, policy.timeout()) {
                    Ok(value) => {
                        collected = Some(value);
                        break;
                    }
                    Err(error) => local.record(&error),
                }
            }
            if collected.is_none() {
                local.abandoned_seeds += 1;
            }
            failures.lock().merge(&local);
            collected
        });
        let failures = failures.into_inner();
        global()
            .counter(obs_names::SAMPLES_COLLECTED)
            .add(pairs.len() as u64);
        global().counter(obs_names::RETRIES).add(failures.retries);
        global().counter(obs_names::PANICS).add(failures.crashes);
        SampleBatch {
            samples: pairs.into_iter().map(|(_, v)| v).collect(),
            failures,
            requested: total,
        }
    }

    /// Fault-tolerant end-to-end SPA: like [`run`](Self::run), but
    /// against a [`FallibleSampler`] under a [`RetryPolicy`], with
    /// graceful statistical degradation when samples are lost.
    ///
    /// If every requested execution (or retry) succeeds, the report is
    /// identical to the infallible path's. If retry budgets are
    /// exhausted and only `N' < N` samples arrive, the confidence
    /// interval is rebuilt at the confidence those `N'` samples can
    /// actually support (see [`achievable_confidence`]), the report is
    /// flagged [`degraded`](SpaReport::degraded), and
    /// [`achieved_confidence`](SpaReport::achieved_confidence) carries
    /// the honest level — SPA never claims the requested `C` with data
    /// that cannot back it.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SamplingFailed`] if *no* usable samples were
    /// collected; otherwise propagates CI-construction errors.
    pub fn run_fallible<S: FallibleSampler + ?Sized>(
        &self,
        sampler: &S,
        seed_start: u64,
        direction: Direction,
        policy: &RetryPolicy,
    ) -> Result<SpaReport> {
        let _span = span!(obs_names::SPAN_RUN);
        let batch = self.collect_samples_fallible(sampler, seed_start, None, policy);
        self.report_from_batch(batch, direction)
    }

    /// Builds a [`SpaReport`] from an already-collected [`SampleBatch`],
    /// applying the graceful-degradation rules of
    /// [`run_fallible`](Self::run_fallible).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SamplingFailed`] for an empty batch;
    /// otherwise propagates CI-construction errors.
    pub fn report_from_batch(&self, batch: SampleBatch, direction: Direction) -> Result<SpaReport> {
        let requested_confidence = self.engine.confidence_level();
        let proportion = self.engine.proportion();
        let collected = batch.samples.len() as u64;
        if collected == 0 {
            return Err(CoreError::SamplingFailed {
                requested: batch.requested,
                collected: 0,
            });
        }
        if collected >= self.required_samples() {
            let interval = self.confidence_interval(&batch.samples, direction)?;
            return Ok(SpaReport {
                samples: batch.samples,
                interval,
                failures: batch.failures,
                degraded: false,
                requested_confidence,
                achieved_confidence: requested_confidence,
            });
        }
        // Degraded mode: N' < N samples survive. Recompute the
        // confidence those N' samples can actually deliver (Eq. 4–5 on
        // the unanimous paths) and rebuild the interval at that level.
        // The engine runs a hair below `achieved` because Algorithm 2
        // converges only on the strict C_CP > C; the unanimous boundary
        // cases sit at exactly C_CP = achieved. The reported interval is
        // re-tagged with the honest achieved value.
        global().counter(obs_names::DEGRADED_RUNS).incr();
        let achieved = achievable_confidence(collected, proportion)?;
        let engine = SmcEngine::new(achieved * (1.0 - 1e-9), proportion)?;
        let interval = match self.granularity {
            Granularity::Exact => ci_exact(&engine, &batch.samples, direction)?,
            Granularity::Step(g) => ci_granular(&engine, &batch.samples, direction, g)?,
        };
        let interval =
            ConfidenceInterval::new(interval.lower(), interval.upper(), achieved, proportion);
        Ok(SpaReport {
            samples: batch.samples,
            interval,
            failures: batch.failures,
            degraded: true,
            requested_confidence,
            achieved_confidence: achieved,
        })
    }
}

/// Runs one panic-isolated, timeout-checked, finiteness-checked sampler
/// attempt.
fn run_one_attempt<S: FallibleSampler + ?Sized>(
    sampler: &S,
    seed: u64,
    timeout: Option<Duration>,
) -> std::result::Result<f64, SampleError> {
    let start = Instant::now();
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| sampler.sample(seed)));
    let elapsed = start.elapsed();
    let value = match outcome {
        Ok(result) => result?,
        Err(payload) => {
            return Err(SampleError::Crash {
                message: panic_message(&payload),
            })
        }
    };
    // A soft budget: in-process samplers cannot be preempted, so the
    // attempt is classified after the fact and its value discarded.
    if let Some(budget) = timeout {
        if elapsed > budget {
            return Err(SampleError::Timeout);
        }
    }
    if !value.is_finite() {
        return Err(SampleError::InvalidMetric { value });
    }
    Ok(value)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "sampler panicked".to_string()
    }
}

/// The output of an end-to-end SPA run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SpaReport {
    /// The collected metric samples, in seed order.
    pub samples: Vec<f64>,
    /// The constructed confidence interval. In a degraded report its
    /// confidence equals [`achieved_confidence`](Self::achieved_confidence),
    /// not the requested level.
    pub interval: ConfidenceInterval,
    /// Per-kind counts of failed sampler attempts. All-zero on the
    /// infallible path and on clean fault-tolerant runs.
    pub failures: FailureCounts,
    /// True when retry budgets were exhausted and fewer samples arrived
    /// than Eq. 8 requires for the requested confidence.
    pub degraded: bool,
    /// The confidence level `C` the run was configured for.
    pub requested_confidence: f64,
    /// The confidence level the collected samples actually support —
    /// equals [`requested_confidence`](Self::requested_confidence) unless
    /// [`degraded`](Self::degraded).
    pub achieved_confidence: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clopper_pearson::Assertion;

    #[test]
    fn builder_defaults_and_validation() {
        let spa = Spa::builder().build().unwrap();
        assert_eq!(spa.required_samples(), 22);
        assert!(Spa::builder().confidence(1.5).build().is_err());
        assert!(Spa::builder().proportion(0.0).build().is_err());
        assert!(Spa::builder()
            .granularity(Granularity::Step(0.0))
            .build()
            .is_err());
        // batch_size 0 is clamped to 1 rather than rejected.
        let spa = Spa::builder().batch_size(0).build().unwrap();
        assert_eq!(spa.batch_size, 1);
    }

    #[test]
    fn required_samples_median() {
        let spa = Spa::builder().proportion(0.5).build().unwrap();
        assert_eq!(spa.required_samples(), 4);
    }

    #[test]
    fn hypothesis_test_direct_property() {
        let spa = Spa::builder()
            .confidence(0.9)
            .proportion(0.9)
            .build()
            .unwrap();
        let samples = vec![1.0; 22];
        let p = MetricProperty::new(Direction::AtMost, 2.0);
        let out = spa.hypothesis_test(&p, &samples).unwrap();
        assert_eq!(out.assertion, Some(Assertion::Positive));
        let p = MetricProperty::new(Direction::AtMost, 0.5);
        let out = spa.hypothesis_test(&p, &samples).unwrap();
        assert_eq!(out.assertion, Some(Assertion::Negative));
        assert!(spa.hypothesis_test(&p, &[]).is_err());
    }

    #[test]
    fn collect_samples_is_reproducible_across_batch_sizes() {
        let sampler = |seed: u64| (seed as f64).sin();
        let spa1 = Spa::builder().batch_size(1).build().unwrap();
        let spa8 = Spa::builder().batch_size(8).build().unwrap();
        let a = spa1.collect_samples(&sampler, 100, Some(50));
        let b = spa8.collect_samples(&sampler, 100, Some(50));
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        // Seed offset shifts the stream.
        let c = spa8.collect_samples(&sampler, 101, Some(50));
        assert_ne!(a, c);
        assert_eq!(a[1], c[0]);
    }

    #[test]
    fn collect_samples_default_count_is_required_samples() {
        let spa = Spa::builder().build().unwrap();
        let samples = spa.collect_samples(&|s: u64| s as f64, 0, None);
        assert_eq!(samples.len() as u64, spa.required_samples());
    }

    #[test]
    fn end_to_end_run_produces_interval() {
        // A sampler with a deterministic spread of values.
        let sampler = |seed: u64| 1.0 + (seed % 10) as f64 * 0.1;
        let spa = Spa::builder()
            .confidence(0.9)
            .proportion(0.5)
            .batch_size(4)
            .build()
            .unwrap();
        let report = spa.run(&sampler, 0, Direction::AtMost).unwrap();
        assert_eq!(report.samples.len() as u64, spa.required_samples());
        assert!(report.interval.lower() <= report.interval.upper());
        assert!(report.interval.contains(1.4) || report.interval.width() < 1.0);
    }

    #[test]
    fn granular_mode_is_used_when_configured() {
        let samples: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let exact = Spa::builder().proportion(0.5).build().unwrap();
        let stepped = Spa::builder()
            .proportion(0.5)
            .granularity(Granularity::Step(0.5))
            .build()
            .unwrap();
        let a = exact
            .confidence_interval(&samples, Direction::AtMost)
            .unwrap();
        let b = stepped
            .confidence_interval(&samples, Direction::AtMost)
            .unwrap();
        assert!((a.lower() - b.lower()).abs() <= 0.5 + 1e-9);
        assert!((a.upper() - b.upper()).abs() <= 0.5 + 1e-9);
    }

    #[test]
    fn sweep_passthrough() {
        let spa = Spa::builder().proportion(0.5).build().unwrap();
        let samples: Vec<f64> = (0..22).map(|i| i as f64).collect();
        let pts = spa
            .sweep(&samples, Direction::AtMost, &[-1.0, 10.5, 30.0])
            .unwrap();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].verdict, Some(Assertion::Negative));
        assert_eq!(pts[2].verdict, Some(Assertion::Positive));
    }

    // ---- fault-tolerant path -------------------------------------------

    use crate::fault::Reliable;
    use crate::min_samples::achievable_confidence;

    /// A sampler that fails deterministically (by kind chosen from the
    /// seed) whenever `seed % modulus == 0`, and otherwise returns a
    /// spread of values.
    fn flaky(modulus: u64) -> impl FallibleSampler {
        move |seed: u64| -> std::result::Result<f64, SampleError> {
            if seed % modulus == 0 {
                Err(match seed % 3 {
                    0 => SampleError::Crash {
                        message: format!("seed {seed} died"),
                    },
                    1 => SampleError::Timeout,
                    _ => SampleError::InvalidMetric { value: f64::NAN },
                })
            } else {
                Ok(1.0 + (seed % 10) as f64 * 0.1)
            }
        }
    }

    #[test]
    fn clean_fallible_run_matches_infallible_run() {
        let infallible = |seed: u64| 1.0 + (seed % 10) as f64 * 0.1;
        let spa = Spa::builder().proportion(0.5).build().unwrap();
        let plain = spa.run(&infallible, 7, Direction::AtMost).unwrap();
        let fallible = spa
            .run_fallible(
                &Reliable(infallible),
                7,
                Direction::AtMost,
                &RetryPolicy::default(),
            )
            .unwrap();
        // Attempt 0 derives to the base seed, so a clean run is
        // byte-identical to the infallible path.
        assert_eq!(plain, fallible);
        assert!(!fallible.degraded);
        assert!(fallible.failures.is_clean());
        assert_eq!(fallible.achieved_confidence, fallible.requested_confidence);
    }

    #[test]
    fn fallible_collection_is_reproducible_across_batch_sizes() {
        let sampler = flaky(5);
        let policy = RetryPolicy::new(3);
        let spa1 = Spa::builder().batch_size(1).build().unwrap();
        let spa8 = Spa::builder().batch_size(8).build().unwrap();
        let a = spa1.collect_samples_fallible(&sampler, 0, Some(60), &policy);
        let b = spa8.collect_samples_fallible(&sampler, 0, Some(60), &policy);
        assert_eq!(a, b);
        assert_eq!(a.requested, 60);
        assert!(!a.failures.is_clean());
    }

    #[test]
    fn panicking_sampler_is_isolated_and_retried() {
        // Panics (not Err) on every multiple of 7; retries re-roll the
        // seed, so the seed eventually succeeds.
        let sampler = |seed: u64| -> std::result::Result<f64, SampleError> {
            if seed % 7 == 0 {
                panic!("injected panic at seed {seed}");
            }
            Ok(seed as f64)
        };
        let spa = Spa::builder().batch_size(4).build().unwrap();
        let batch = spa.collect_samples_fallible(&sampler, 0, Some(30), &RetryPolicy::new(4));
        assert!(batch.failures.crashes >= 1);
        assert!(batch.samples.len() >= 25);
        // The panic payload is preserved as the crash message.
        let one = run_one_attempt(&sampler, 0, None);
        match one {
            Err(SampleError::Crash { message }) => assert!(message.contains("seed 0")),
            other => panic!("expected crash, got {other:?}"),
        }
    }

    #[test]
    fn retries_recover_lost_seeds() {
        // Attempt 0 fails for multiples of 4; derived retry seeds are
        // mixed, so each seed has further chances.
        let sampler = flaky(4);
        let spa = Spa::builder().proportion(0.5).build().unwrap();
        let no_retry =
            spa.collect_samples_fallible(&sampler, 1, Some(40), &RetryPolicy::no_retry());
        let with_retry = spa.collect_samples_fallible(&sampler, 1, Some(40), &RetryPolicy::new(5));
        assert!(no_retry.samples.len() < 40);
        assert!(with_retry.samples.len() > no_retry.samples.len());
        assert!(with_retry.failures.retries >= 1);
        assert_eq!(
            no_retry.failures.abandoned_seeds,
            40 - no_retry.samples.len() as u64
        );
    }

    #[test]
    fn degraded_report_is_statistically_honest() {
        // Drop enough seeds that fewer than the required 22 samples
        // survive, with retries disabled so the loss is certain.
        let sampler = flaky(3);
        let spa = Spa::builder()
            .confidence(0.9)
            .proportion(0.9)
            .build()
            .unwrap();
        let report = spa
            .run_fallible(&sampler, 0, Direction::AtMost, &RetryPolicy::no_retry())
            .unwrap();
        let collected = report.samples.len() as u64;
        assert!(collected < spa.required_samples());
        assert!(report.degraded);
        assert_eq!(report.requested_confidence, 0.9);
        let expected = achievable_confidence(collected, 0.9).unwrap();
        assert_eq!(report.achieved_confidence, expected);
        assert!(report.achieved_confidence < 0.9);
        assert_eq!(report.interval.confidence(), expected);
        assert_eq!(
            report.failures.abandoned_seeds,
            spa.required_samples() - collected
        );
        assert!(report.interval.lower() <= report.interval.upper());
    }

    #[test]
    fn all_failures_yield_sampling_failed() {
        let sampler =
            |_: u64| -> std::result::Result<f64, SampleError> { Err(SampleError::Timeout) };
        let spa = Spa::builder().build().unwrap();
        let err = spa
            .run_fallible(&sampler, 0, Direction::AtMost, &RetryPolicy::new(2))
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::SamplingFailed {
                requested: 22,
                collected: 0
            }
        ));
    }

    #[test]
    fn soft_timeout_classifies_slow_attempts() {
        let slow = |_: u64| -> std::result::Result<f64, SampleError> {
            std::thread::sleep(std::time::Duration::from_millis(20));
            Ok(1.0)
        };
        let policy = RetryPolicy::no_retry().with_timeout(std::time::Duration::from_millis(1));
        let spa = Spa::builder().batch_size(2).build().unwrap();
        let batch = spa.collect_samples_fallible(&slow, 0, Some(4), &policy);
        assert_eq!(batch.samples.len(), 0);
        assert_eq!(batch.failures.timeouts, 4);
        assert_eq!(batch.failures.abandoned_seeds, 4);
    }

    proptest::proptest! {
        #[test]
        fn degraded_achieved_confidence_never_exceeds_requested(
            c in 0.7_f64..0.99,
            f in 0.5_f64..0.95,
            keep in 1u64..60,
        ) {
            let spa = Spa::builder().confidence(c).proportion(f).build().unwrap();
            let keep = keep.min(spa.required_samples());
            let batch = SampleBatch {
                samples: (0..keep).map(|i| 1.0 + i as f64 * 0.01).collect(),
                failures: FailureCounts::default(),
                requested: spa.required_samples(),
            };
            let report = spa.report_from_batch(batch, Direction::AtMost).unwrap();
            proptest::prop_assert!(report.achieved_confidence <= c + 1e-12);
            if report.degraded {
                proptest::prop_assert!(report.achieved_confidence < c);
                proptest::prop_assert_eq!(
                    report.achieved_confidence,
                    achievable_confidence(keep, f).unwrap()
                );
            } else {
                proptest::prop_assert_eq!(report.achieved_confidence, c);
            }
        }
    }
}
