//! The fast CI-construction engine behind [`ci`](crate::ci).
//!
//! SPA's threshold search (§4.1–4.2) is the hottest path in the whole
//! system: every candidate threshold needs the success count `M` and a
//! Clopper–Pearson confidence, and a single run evaluates dozens to
//! thousands of thresholds over one fixed sample set. The naive shape —
//! an O(n) scan per count and two incomplete-beta evaluations per
//! confidence — does `O(thresholds × n)` comparisons and
//! `O(thresholds)` beta evaluations.
//!
//! This module removes both costs without changing a single output bit:
//!
//! * [`SortedSamples`] sorts the sample set once, after which the count
//!   at any threshold is an O(log n) [`partition_point`] — shared across
//!   every threshold of a run and across [`sweep`](crate::ci::sweep)
//!   entries;
//! * [`CiEngine`] memoizes Clopper–Pearson confidences keyed on the
//!   count `M` (for a fixed run, `N` and the proportion `F` never
//!   change, so `M` is the whole key) and exploits verdict monotonicity
//!   for an early exit: once a count is known to be a significant
//!   negative, every smaller count is too, without touching the beta
//!   function (and symmetrically for positives);
//! * the callers in [`ci`](crate::ci) replace their linear grid walks
//!   with monotone bisection over the same candidate thresholds.
//!
//! Because a memoized confidence is the *same* `f64` the naive code
//! would have computed, and bisection visits a subset of the naive
//! walk's thresholds while returning the same boundary elements, every
//! interval is bit-identical to the pre-engine code. The naive scans are
//! kept as a `#[cfg(test)]` oracle in [`ci`](crate::ci) and the
//! differential suite in this module proves the equivalence over
//! thousands of randomized cases.
//!
//! Instrumentation: engine work is counted locally and flushed to the
//! global registry on drop (once per construction, keeping hot loops
//! hot) under [`obs_names::CI_INDEX_HITS`],
//! [`obs_names::CP_CACHE_HITS`], and
//! [`obs_names::CI_THRESHOLD_TESTS`].
//!
//! [`partition_point`]: slice::partition_point

use crate::clopper_pearson::{assertion, confidence, positive_confidence, Assertion};
use crate::obs_names;
use crate::property::Direction;
use crate::smc::SmcEngine;
use crate::{CoreError, Result};
use spa_obs::metrics::global;

/// A sample set sorted once so that the success count of any threshold
/// test is an O(log n) binary search instead of an O(n) scan.
///
/// # Examples
///
/// ```
/// use spa_core::ci_engine::SortedSamples;
/// use spa_core::property::Direction;
///
/// let idx = SortedSamples::new(&[3.0, 1.0, 2.0, 2.0]).unwrap();
/// assert_eq!(idx.count_satisfying(Direction::AtMost, 2.0), 3);
/// assert_eq!(idx.count_satisfying(Direction::AtLeast, 2.0), 3);
/// assert_eq!(idx.distinct(), &[1.0, 2.0, 3.0]);
/// ```
#[derive(Debug, Clone)]
pub struct SortedSamples {
    sorted: Vec<f64>,
    distinct: Vec<f64>,
}

impl SortedSamples {
    /// Sorts `samples` into an index.
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptyData`] for an empty slice,
    /// [`CoreError::InvalidParameter`] for NaN samples.
    pub fn new(samples: &[f64]) -> Result<Self> {
        if samples.is_empty() {
            return Err(CoreError::EmptyData);
        }
        if samples.iter().any(|x| x.is_nan()) {
            return Err(CoreError::InvalidParameter {
                name: "samples",
                value: f64::NAN,
                expected: "no NaN values",
            });
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN rejected above"));
        let mut distinct = sorted.clone();
        distinct.dedup();
        Ok(Self { sorted, distinct })
    }

    /// Number of samples `N` (with duplicates).
    pub fn len(&self) -> u64 {
        self.sorted.len() as u64
    }

    /// Always false — construction rejects empty sample sets.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("construction rejects empty data")
    }

    /// The distinct sample values in ascending order — the only
    /// thresholds where a verdict can change.
    pub fn distinct(&self) -> &[f64] {
        &self.distinct
    }

    /// All samples in ascending order (duplicates kept) — the order
    /// statistics that [`band`](crate::band) read-offs index into.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// The success count `M` of `metric direction threshold` — Eq. 3's
    /// numerator — in O(log n).
    ///
    /// Agrees exactly with
    /// [`MetricProperty::count_satisfying`](crate::property::MetricProperty::count_satisfying):
    /// a NaN threshold satisfies nothing (every comparison with NaN is
    /// false), `AtMost` counts `x <= t`, `AtLeast` counts `x >= t`.
    pub fn count_satisfying(&self, direction: Direction, threshold: f64) -> u64 {
        if threshold.is_nan() {
            return 0;
        }
        match direction {
            Direction::AtMost => self.sorted.partition_point(|&x| x <= threshold) as u64,
            Direction::AtLeast => {
                (self.sorted.len() - self.sorted.partition_point(|&x| x < threshold)) as u64
            }
        }
    }
}

/// The memoizing threshold-test engine for one `(SmcEngine, samples)`
/// pair: indexed counts plus cached Clopper–Pearson confidences.
///
/// Construct once per CI search or sweep; every threshold test then
/// costs an O(log n) count and (at most) one beta evaluation per
/// *distinct count* rather than per threshold.
#[derive(Debug)]
pub struct CiEngine {
    smc: SmcEngine,
    index: SortedSamples,
    /// Memoized Eq. 4–5 assertion confidence by count `M` (the cache key
    /// is `(M, N, F)`; `N` and `F` are fixed per engine, so a dense
    /// `M`-indexed table suffices).
    conf: Vec<Option<f64>>,
    /// Memoized positive-direction confidence by count (Fig. 4's
    /// y-axis, used by sweeps).
    pos_conf: Vec<Option<f64>>,
    /// Monotonicity-aware early-exit bounds: every count `<= neg_known`
    /// is a significant negative, every count `>= pos_known` a
    /// significant positive (verdicts are monotone in `M`).
    neg_known: Option<u64>,
    pos_known: Option<u64>,
    index_hits: u64,
    cp_cache_hits: u64,
    threshold_tests: u64,
}

impl CiEngine {
    /// Builds the engine: sorts the samples and prepares empty caches.
    ///
    /// # Errors
    ///
    /// As [`SortedSamples::new`].
    pub fn new(engine: &SmcEngine, samples: &[f64]) -> Result<Self> {
        let index = SortedSamples::new(samples)?;
        let slots = index.sorted.len() + 1;
        Ok(Self {
            smc: *engine,
            index,
            conf: vec![None; slots],
            pos_conf: vec![None; slots],
            neg_known: None,
            pos_known: None,
            index_hits: 0,
            cp_cache_hits: 0,
            threshold_tests: 0,
        })
    }

    /// The sorted-sample index.
    pub fn index(&self) -> &SortedSamples {
        &self.index
    }

    /// The underlying SMC engine parameters.
    pub fn smc(&self) -> &SmcEngine {
        &self.smc
    }

    /// Indexed success count for a threshold (bumps
    /// [`obs_names::CI_INDEX_HITS`] on flush).
    pub fn count(&mut self, direction: Direction, threshold: f64) -> u64 {
        self.index_hits += 1;
        self.index.count_satisfying(direction, threshold)
    }

    /// Memoized Eq. 4–5 confidence for count `m` — the same `f64`
    /// [`confidence`] would return, computed at most once per count.
    fn confidence_for(&mut self, m: u64) -> Result<f64> {
        if let Some(c) = self.conf[m as usize] {
            self.cp_cache_hits += 1;
            return Ok(c);
        }
        let c = confidence(m, self.index.len(), self.smc.proportion())?;
        self.conf[m as usize] = Some(c);
        Ok(c)
    }

    /// The Algorithm 2 verdict for count `m`, exactly as
    /// [`SmcEngine::run_counts`] would decide it (significant iff
    /// `C_CP > C`, strictly), with memoization and monotone early exit.
    pub fn verdict_for_count(&mut self, m: u64) -> Result<Option<Assertion>> {
        if let Some(k) = self.neg_known {
            if m <= k {
                self.cp_cache_hits += 1;
                return Ok(Some(Assertion::Negative));
            }
        }
        if let Some(k) = self.pos_known {
            if m >= k {
                self.cp_cache_hits += 1;
                return Ok(Some(Assertion::Positive));
            }
        }
        let c = self.confidence_for(m)?;
        let verdict = if c > self.smc.confidence_level() {
            Some(assertion(m, self.index.len(), self.smc.proportion())?)
        } else {
            None
        };
        match verdict {
            Some(Assertion::Negative) => {
                self.neg_known = Some(self.neg_known.map_or(m, |k| k.max(m)));
            }
            Some(Assertion::Positive) => {
                self.pos_known = Some(self.pos_known.map_or(m, |k| k.min(m)));
            }
            None => {}
        }
        Ok(verdict)
    }

    /// Runs one fixed-sample SMC threshold test (count + verdict) —
    /// the engine-backed equivalent of the naive per-threshold test.
    pub fn verdict_at(
        &mut self,
        direction: Direction,
        threshold: f64,
    ) -> Result<Option<Assertion>> {
        self.threshold_tests += 1;
        let m = self.count(direction, threshold);
        self.verdict_for_count(m)
    }

    /// Memoized positive-direction confidence for count `m` (sweeps).
    pub fn positive_confidence_for_count(&mut self, m: u64) -> Result<f64> {
        if let Some(c) = self.pos_conf[m as usize] {
            self.cp_cache_hits += 1;
            return Ok(c);
        }
        let c = positive_confidence(m, self.index.len(), self.smc.proportion())?;
        self.pos_conf[m as usize] = Some(c);
        Ok(c)
    }
}

impl Drop for CiEngine {
    /// Flushes the locally accumulated counters to the global registry —
    /// one `add` per counter per engine lifetime, never per threshold.
    fn drop(&mut self) {
        let registry = global();
        if self.threshold_tests > 0 {
            registry
                .counter(obs_names::CI_THRESHOLD_TESTS)
                .add(self.threshold_tests);
        }
        if self.index_hits > 0 {
            registry
                .counter(obs_names::CI_INDEX_HITS)
                .add(self.index_hits);
        }
        if self.cp_cache_hits > 0 {
            registry
                .counter(obs_names::CP_CACHE_HITS)
                .add(self.cp_cache_hits);
        }
    }
}

/// `slice::partition_point` over a virtual `0..len` range with a
/// fallible predicate: the index of the first element for which `pred`
/// is false, assuming `pred` is monotone (a true-prefix then a
/// false-suffix).
pub(crate) fn partition_point_by<F>(len: usize, mut pred: F) -> Result<usize>
where
    F: FnMut(usize) -> Result<bool>,
{
    let mut lo = 0usize;
    let mut hi = len;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid)? {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    Ok(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ci::{self, naive, ConfidenceInterval};
    use crate::min_samples::min_samples;
    use crate::property::MetricProperty;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn index_counts_match_linear_scan_on_edge_values() {
        let xs = [2.0, 2.0, 2.0, 5.0, 7.0, 7.0];
        let idx = SortedSamples::new(&xs).unwrap();
        for direction in [Direction::AtMost, Direction::AtLeast] {
            for t in [
                f64::NEG_INFINITY,
                1.9,
                2.0,
                2.5,
                5.0,
                6.9,
                7.0,
                7.1,
                f64::INFINITY,
                f64::NAN,
            ] {
                let want = MetricProperty::new(direction, t).count_satisfying(&xs);
                assert_eq!(
                    idx.count_satisfying(direction, t),
                    want,
                    "{direction:?} at {t}"
                );
            }
        }
    }

    #[test]
    fn index_rejects_bad_input() {
        assert!(matches!(SortedSamples::new(&[]), Err(CoreError::EmptyData)));
        assert!(SortedSamples::new(&[1.0, f64::NAN]).is_err());
        let idx = SortedSamples::new(&[3.0, 1.0]).unwrap();
        assert_eq!((idx.min(), idx.max(), idx.len()), (1.0, 3.0, 2));
        assert!(!idx.is_empty());
    }

    #[test]
    fn partition_point_by_matches_std() {
        let xs = [1, 1, 2, 3, 3, 3, 9];
        for pivot in 0..=10 {
            let want = xs.partition_point(|&x| x < pivot);
            let got = partition_point_by(xs.len(), |i| Ok(xs[i] < pivot)).unwrap();
            assert_eq!(got, want, "pivot {pivot}");
        }
        assert_eq!(partition_point_by(0, |_| Ok(true)).unwrap(), 0);
        assert!(partition_point_by(3, |_| Err(CoreError::EmptyData)).is_err());
    }

    #[test]
    fn memoized_confidences_are_the_same_bits() {
        let smc = SmcEngine::new(0.9, 0.8).unwrap();
        let xs: Vec<f64> = (0..30).map(|i| i as f64 * 0.37).collect();
        let mut eng = CiEngine::new(&smc, &xs).unwrap();
        for m in 0..=30u64 {
            let direct = confidence(m, 30, 0.8).unwrap();
            // First call computes, second must hit the cache; both equal
            // the direct evaluation bit-for-bit.
            assert_eq!(eng.confidence_for(m).unwrap().to_bits(), direct.to_bits());
            assert_eq!(eng.confidence_for(m).unwrap().to_bits(), direct.to_bits());
            let pos = positive_confidence(m, 30, 0.8).unwrap();
            assert_eq!(
                eng.positive_confidence_for_count(m).unwrap().to_bits(),
                pos.to_bits()
            );
        }
        assert!(eng.cp_cache_hits > 0);
    }

    #[test]
    fn early_exit_bounds_agree_with_direct_verdicts() {
        let smc = SmcEngine::new(0.9, 0.5).unwrap();
        let xs: Vec<f64> = (0..40).map(f64::from).collect();
        let mut eng = CiEngine::new(&smc, &xs).unwrap();
        let n = eng.index().len();
        // Establish the extreme verdicts first so the monotone bounds are
        // active, then confirm every interior count still matches a fresh
        // engine's direct answer.
        eng.verdict_for_count(0).unwrap();
        eng.verdict_for_count(n).unwrap();
        for m in 0..=n {
            let mut fresh = CiEngine::new(&smc, &xs).unwrap();
            assert_eq!(
                eng.verdict_for_count(m).unwrap(),
                fresh.verdict_for_count(m).unwrap(),
                "count {m}"
            );
        }
    }

    fn assert_ci_eq(case: &str, got: &ConfidenceInterval, want: &ConfidenceInterval) {
        assert_eq!(
            got.lower().to_bits(),
            want.lower().to_bits(),
            "{case}: lower {} vs {}",
            got.lower(),
            want.lower()
        );
        assert_eq!(
            got.upper().to_bits(),
            want.upper().to_bits(),
            "{case}: upper {} vs {}",
            got.upper(),
            want.upper()
        );
        assert_eq!(got.confidence(), want.confidence(), "{case}: confidence");
        assert_eq!(got.proportion(), want.proportion(), "{case}: proportion");
    }

    fn random_samples(rng: &mut ChaCha8Rng, kind: usize, n: usize) -> Vec<f64> {
        match kind {
            // Continuous: ties essentially impossible.
            0 => (0..n).map(|_| rng.gen_range(-50.0..150.0)).collect(),
            // Quantized: heavy ties at one-decimal values.
            1 => (0..n)
                .map(|_| (rng.gen_range(0.0..20.0) * 10.0_f64).round() / 10.0)
                .collect(),
            // Few distinct values: the §6.4 duplicate-heavy regime.
            2 => {
                let pool = [1.5, 2.0, 7.25];
                (0..n).map(|_| pool[rng.gen_range(0..pool.len())]).collect()
            }
            // All samples equal.
            _ => vec![rng.gen_range(-5.0..5.0); n],
        }
    }

    /// The acceptance-criteria differential suite: ≥ 1000 randomized
    /// `(engine, samples, direction)` cases where every optimized search
    /// must reproduce the naive oracle bit-for-bit — including ties,
    /// all-equal samples, and thresholds outside the data range.
    #[test]
    fn differential_optimized_matches_naive_oracle() {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5AD1FF);
        let confidences = [0.8, 0.9, 0.95, 0.99];
        let proportions = [0.3, 0.5, 0.8, 0.9];
        let mut cases = 0usize;
        for round in 0..320 {
            let c = confidences[rng.gen_range(0..confidences.len())];
            let f = proportions[rng.gen_range(0..proportions.len())];
            let smc = SmcEngine::new(c, f).unwrap();
            let needed = min_samples(c, f).unwrap() as usize;
            let n = needed + rng.gen_range(0..40);
            let kind = round % 4;
            let xs = random_samples(&mut rng, kind, n);
            let direction = if rng.gen_bool(0.5) {
                Direction::AtMost
            } else {
                Direction::AtLeast
            };
            let tag = format!("round {round}: C={c} F={f} n={n} kind={kind} {direction:?}");

            let exact = ci::ci_exact(&smc, &xs, direction).unwrap();
            assert_ci_eq(
                &format!("{tag} exact"),
                &exact,
                &naive::ci_exact(&smc, &xs, direction).unwrap(),
            );

            let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let range = (hi - lo).max(1e-3);
            let granularity = range / rng.gen_range(3..60) as f64;
            assert_ci_eq(
                &format!("{tag} granular g={granularity}"),
                &ci::ci_granular(&smc, &xs, direction, granularity).unwrap(),
                &naive::ci_granular(&smc, &xs, direction, granularity).unwrap(),
            );

            let v0s = [
                None,
                Some(lo - range),
                Some(hi + range),
                Some(lo + range * rng.gen_range(0.0..1.0)),
            ];
            let v0 = v0s[rng.gen_range(0..v0s.len())];
            assert_ci_eq(
                &format!("{tag} adaptive v0={v0:?} g={granularity}"),
                &ci::ci_adaptive(&smc, &xs, direction, granularity, v0).unwrap(),
                &naive::ci_adaptive(&smc, &xs, direction, granularity, v0).unwrap(),
            );

            // Sweep over thresholds inside, outside, and exactly at
            // sample values.
            let mut thresholds = vec![
                lo - 3.0 * range - 1.0,
                hi + 3.0 * range + 1.0,
                xs[rng.gen_range(0..xs.len())],
            ];
            for _ in 0..8 {
                thresholds.push(lo - range + rng.gen_range(0.0..1.0) * 3.0 * range);
            }
            let fast = ci::sweep(&smc, &xs, direction, &thresholds).unwrap();
            let slow = naive::sweep(&smc, &xs, direction, &thresholds).unwrap();
            assert_eq!(fast.len(), slow.len());
            for (a, b) in fast.iter().zip(&slow) {
                assert_eq!(a.threshold.to_bits(), b.threshold.to_bits(), "{tag} sweep");
                assert_eq!(
                    a.positive_confidence.to_bits(),
                    b.positive_confidence.to_bits(),
                    "{tag} sweep at {}",
                    a.threshold
                );
                assert_eq!(a.verdict, b.verdict, "{tag} sweep at {}", a.threshold);
            }
            cases += 4;
        }
        assert!(cases >= 1000, "only {cases} differential cases ran");
    }

    proptest! {
        #[test]
        fn index_counts_match_linear_scan(
            xs in proptest::collection::vec(-100.0_f64..100.0, 1..80),
            t in -120.0_f64..120.0,
        ) {
            let idx = SortedSamples::new(&xs).unwrap();
            for direction in [Direction::AtMost, Direction::AtLeast] {
                let want = MetricProperty::new(direction, t).count_satisfying(&xs);
                prop_assert_eq!(idx.count_satisfying(direction, t), want);
            }
        }

        #[test]
        fn index_counts_match_at_sample_values(
            xs in proptest::collection::vec(-10.0_f64..10.0, 1..40),
            pick in any::<prop::sample::Index>(),
        ) {
            // Thresholds exactly at sample values are where the
            // inclusive/exclusive partition split can go wrong.
            let idx = SortedSamples::new(&xs).unwrap();
            let t = xs[pick.index(xs.len())];
            for direction in [Direction::AtMost, Direction::AtLeast] {
                let want = MetricProperty::new(direction, t).count_satisfying(&xs);
                prop_assert_eq!(idx.count_satisfying(direction, t), want);
            }
        }
    }
}
