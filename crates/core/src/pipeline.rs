//! The staged sampling pipeline: observation sources and evaluators.
//!
//! The paper's workflow (§4, Fig. 3) is *simulate → record → evaluate →
//! feed SMC*: an execution produces a raw observation (a scalar metric,
//! or a full signal trace), an evaluator maps that observation to the
//! `f64` sample SMC consumes (the metric itself, or an STL verdict over
//! the trace). Before this module, every consumer wired those two
//! stages together ad hoc inside a bespoke closure; now they are
//! first-class:
//!
//! * [`SampleSource`] — stage 1: given a seed, produce one raw
//!   observation (fallibly — sources crash, time out, emit garbage),
//! * [`Evaluator`] — stage 2: map an observation to one `f64` sample,
//! * [`Pipeline`] — the composition, which is itself a
//!   [`FallibleSampler`] and therefore plugs directly into the existing
//!   retry/panic-isolation/degradation machinery of
//!   [`Spa`](crate::spa::Spa),
//! * [`SamplerSource`] / [`FnSource`] / [`IdentityEvaluator`] — adapters
//!   that express the pre-existing scalar API (`Sampler`,
//!   `FallibleSampler`, [`Reliable`](crate::fault::Reliable)) as
//!   pipeline stages, and
//! * [`collect_indexed`] — the shared claim-by-index parallel collection
//!   engine behind [`Spa::collect_samples`](crate::spa::Spa::collect_samples),
//!   [`Spa::collect_samples_fallible`](crate::spa::Spa::collect_samples_fallible),
//!   and the server's round collector.
//!
//! The adapters are behavior-preserving: a scalar workload routed
//! through the pipeline produces byte-identical reports to the
//! pre-pipeline code (enforced by the differential tests in
//! `tests/determinism.rs`).

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::fault::{FallibleSampler, SampleError};
use crate::spa::Sampler;

/// Stage 1 of the pipeline: a seed-addressed source of raw observations.
///
/// An observation is whatever one execution produces before any
/// statistical interpretation — a scalar metric, a struct of metrics, or
/// a recorded signal trace. Sources are called from multiple threads
/// (hence `Sync`) and report failures as values so the driver's retry
/// machinery can classify them.
pub trait SampleSource: Sync {
    /// The raw observation one execution produces.
    type Obs;

    /// Runs one execution identified by `seed` and returns its raw
    /// observation.
    ///
    /// # Errors
    ///
    /// A [`SampleError`] classifying how the execution failed.
    fn observe(&self, seed: u64) -> std::result::Result<Self::Obs, SampleError>;
}

/// Stage 2 of the pipeline: maps one observation to the `f64` sample
/// SMC consumes.
///
/// Evaluators are pure with respect to the observation (no seed, no
/// shared mutable state), which is what makes the pipeline reproducible:
/// the sample depends only on what the source observed.
pub trait Evaluator: Sync {
    /// The observation type this evaluator consumes.
    type Obs;

    /// Maps one observation to a sample.
    ///
    /// # Errors
    ///
    /// A [`SampleError`] when the observation cannot be evaluated (e.g.
    /// a non-finite metric, or a trace missing a signal the property
    /// refers to).
    fn evaluate(&self, obs: &Self::Obs) -> std::result::Result<f64, SampleError>;
}

/// The two stages composed: `observe(seed)` then `evaluate(obs)`.
///
/// A `Pipeline` is itself a [`FallibleSampler`], so it plugs directly
/// into [`Spa::run_fallible`](crate::spa::Spa::run_fallible) and
/// inherits panic isolation, per-seed retries, and graceful statistical
/// degradation unchanged.
///
/// # Examples
///
/// ```
/// use spa_core::fault::FallibleSampler;
/// use spa_core::pipeline::{FnSource, IdentityEvaluator, Pipeline};
///
/// let p = Pipeline::new(FnSource(|seed: u64| Ok(seed as f64)), IdentityEvaluator);
/// assert_eq!(p.sample(3), Ok(3.0));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Pipeline<S, E> {
    source: S,
    evaluator: E,
}

impl<S, E> Pipeline<S, E> {
    /// Composes a source and an evaluator.
    pub fn new(source: S, evaluator: E) -> Self {
        Self { source, evaluator }
    }

    /// The source stage.
    pub fn source(&self) -> &S {
        &self.source
    }

    /// The evaluator stage.
    pub fn evaluator(&self) -> &E {
        &self.evaluator
    }
}

impl<S, E> FallibleSampler for Pipeline<S, E>
where
    S: SampleSource,
    E: Evaluator<Obs = S::Obs>,
{
    fn sample(&self, seed: u64) -> std::result::Result<f64, SampleError> {
        let obs = self.source.observe(seed)?;
        self.evaluator.evaluate(&obs)
    }
}

/// Adapts an infallible scalar [`Sampler`] into a [`SampleSource`] whose
/// observation is the metric itself.
///
/// Composed with [`IdentityEvaluator`] this reproduces
/// [`Reliable`](crate::fault::Reliable) exactly: the source never fails,
/// and the evaluator rejects non-finite values.
#[derive(Debug, Clone, Copy)]
pub struct SamplerSource<S>(pub S);

impl<S: Sampler> SampleSource for SamplerSource<S> {
    type Obs = f64;

    fn observe(&self, seed: u64) -> std::result::Result<f64, SampleError> {
        Ok(self.0.sample(seed))
    }
}

/// Adapts a fallible closure (or any [`FallibleSampler`]) into a
/// [`SampleSource`] with `f64` observations.
#[derive(Debug, Clone, Copy)]
pub struct FnSource<S>(pub S);

impl<S: FallibleSampler> SampleSource for FnSource<S> {
    type Obs = f64;

    fn observe(&self, seed: u64) -> std::result::Result<f64, SampleError> {
        self.0.sample(seed)
    }
}

/// The trivial evaluator for scalar pipelines: passes a finite `f64`
/// observation through unchanged and classifies NaN/±∞ as
/// [`SampleError::InvalidMetric`].
///
/// This is the evaluation stage of the legacy scalar path —
/// [`Reliable`](crate::fault::Reliable) delegates its finiteness check
/// here.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityEvaluator;

impl Evaluator for IdentityEvaluator {
    type Obs = f64;

    fn evaluate(&self, obs: &f64) -> std::result::Result<f64, SampleError> {
        if obs.is_finite() {
            Ok(*obs)
        } else {
            Err(SampleError::InvalidMetric { value: *obs })
        }
    }
}

/// The shared parallel collection engine: runs `work(i)` for every index
/// `i in 0..total` across `workers` scoped threads and returns the
/// produced values sorted by index.
///
/// Indices are claimed with a relaxed atomic fetch-add, so the partition
/// of indices onto threads is scheduling-dependent — but the *output* is
/// not: each index's work is a pure function of `i`, results are
/// reassembled in index order, and `work` returning `None` (a
/// permanently failed index) simply leaves a gap. The scalar and
/// fault-tolerant collection loops in this crate are adapters over this
/// engine; the simulator and server fan out through the sim crate's
/// batch population engine, which makes the same determinism guarantee
/// with bounded-channel backpressure.
///
/// Spans and observability counters stay at the call sites: the engine
/// itself is accounting-neutral.
pub fn collect_indexed<T: Send>(
    total: u64,
    workers: usize,
    work: &(dyn Fn(u64) -> Option<T> + Sync),
) -> Vec<(u64, T)> {
    let next = AtomicU64::new(0);
    let results: Mutex<Vec<(u64, T)>> = Mutex::new(Vec::with_capacity(total as usize));
    let workers = workers.max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                if let Some(value) = work(i) {
                    results.lock().push((i, value));
                }
            });
        }
    });
    let mut pairs = results.into_inner();
    pairs.sort_by_key(|&(i, _)| i);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Reliable;
    use crate::property::Direction;
    use crate::spa::Spa;

    #[test]
    fn pipeline_composes_source_and_evaluator() {
        struct Doubler;
        impl Evaluator for Doubler {
            type Obs = f64;
            fn evaluate(&self, obs: &f64) -> std::result::Result<f64, SampleError> {
                Ok(obs * 2.0)
            }
        }
        let p = Pipeline::new(FnSource(|seed: u64| Ok(seed as f64)), Doubler);
        assert_eq!(p.sample(21), Ok(42.0));
        assert_eq!(p.source().observe(21), Ok(21.0));
        assert_eq!(p.evaluator().evaluate(&21.0), Ok(42.0));
    }

    #[test]
    fn source_errors_short_circuit_evaluation() {
        let p = Pipeline::new(
            FnSource(|_: u64| Err(SampleError::Timeout)),
            IdentityEvaluator,
        );
        assert_eq!(p.sample(0), Err(SampleError::Timeout));
    }

    #[test]
    fn identity_evaluator_matches_reliable() {
        // The pipeline spelling of the scalar path agrees with Reliable
        // on both finite and non-finite values.
        for value in [1.5, 0.0, -3.25, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let via_reliable = Reliable(move |_: u64| value).sample(0);
            let via_pipeline =
                Pipeline::new(SamplerSource(move |_: u64| value), IdentityEvaluator).sample(0);
            match (via_reliable, via_pipeline) {
                (Ok(a), Ok(b)) => assert_eq!(a, b),
                (
                    Err(SampleError::InvalidMetric { value: a }),
                    Err(SampleError::InvalidMetric { value: b }),
                ) => assert_eq!(a.is_nan(), b.is_nan()),
                (a, b) => panic!("diverged: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn pipeline_runs_end_to_end_through_spa() {
        // A Pipeline is a FallibleSampler, so the full fault-tolerant
        // driver accepts it unchanged.
        let p = Pipeline::new(
            FnSource(|seed: u64| Ok(1.0 + (seed % 10) as f64 * 0.1)),
            IdentityEvaluator,
        );
        let spa = Spa::builder().proportion(0.5).build().unwrap();
        let report = spa
            .run_fallible(
                &p,
                7,
                Direction::AtMost,
                &crate::fault::RetryPolicy::default(),
            )
            .unwrap();
        let direct = spa
            .run(
                &|seed: u64| 1.0 + (seed % 10) as f64 * 0.1,
                7,
                Direction::AtMost,
            )
            .unwrap();
        assert_eq!(report, direct);
    }

    #[test]
    fn collect_indexed_is_deterministic_across_worker_counts() {
        let work = |i: u64| Some(i * 3);
        let one = collect_indexed(40, 1, &work);
        let eight = collect_indexed(40, 8, &work);
        assert_eq!(one, eight);
        assert_eq!(one.len(), 40);
        assert!(one.windows(2).all(|w| w[0].0 < w[1].0), "sorted by index");
    }

    #[test]
    fn collect_indexed_skips_none_and_clamps_workers() {
        let work = |i: u64| (i % 2 == 0).then_some(i);
        // workers = 0 is clamped to 1 rather than deadlocking.
        let rows = collect_indexed(10, 0, &work);
        assert_eq!(
            rows.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            [0, 2, 4, 6, 8]
        );
        assert!(collect_indexed::<u64>(0, 4, &|_| None).is_empty());
    }
}
