//! The SMC engine: the paper's Algorithm 1 (sequential) and Algorithm 2
//! (fixed sample size).
//!
//! Algorithm 1 keeps drawing sample executions, updating the assertion
//! (Eq. 3) and its Clopper–Pearson confidence (Eq. 4–5), and stops as
//! soon as the confidence reaches the requested level. Algorithm 2 —
//! SPA's modification — consumes *every* provided sample and reports the
//! assertion only if it is significant at the requested level, otherwise
//! `None`; this keeps the sample set identical across different property
//! thresholds so that their outcomes are directly comparable (§4.1).

use serde::{Deserialize, Serialize};

use crate::clopper_pearson::{assertion, check_unit_open, confidence, Assertion};
use crate::obs_names;
use crate::{CoreError, Result};
use spa_obs::span;

/// An SMC engine configured with a confidence level `C` and a proportion
/// `F` (the hypothesis is `P(φ) ≥ F`).
///
/// # Examples
///
/// ```
/// use spa_core::smc::SmcEngine;
/// # fn main() -> Result<(), spa_core::CoreError> {
/// let engine = SmcEngine::new(0.9, 0.9)?;
/// // 22 all-true outcomes converge to a positive verdict (paper §4.3).
/// let run = engine.run_sequential(std::iter::repeat(true))?;
/// assert_eq!(run.samples_used, 22);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmcEngine {
    confidence: f64,
    proportion: f64,
}

/// Result of the sequential Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SequentialOutcome {
    /// The converged assertion.
    pub assertion: Assertion,
    /// The Clopper–Pearson confidence at termination (≥ the requested
    /// level).
    pub achieved_confidence: f64,
    /// Number of satisfying samples (`M`).
    pub satisfied: u64,
    /// Total samples drawn (`N`).
    pub samples_used: u64,
}

/// Result of the fixed-sample Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FixedOutcome {
    /// The assertion if significant at the requested confidence,
    /// `None` if the test did not converge (the paper's "None" result).
    pub assertion: Option<Assertion>,
    /// The Clopper–Pearson confidence after all samples.
    pub achieved_confidence: f64,
    /// Number of satisfying samples (`M`).
    pub satisfied: u64,
    /// Total samples consumed (`N`).
    pub samples_used: u64,
}

impl FixedOutcome {
    /// Whether the test converged to a significant verdict.
    pub fn converged(&self) -> bool {
        self.assertion.is_some()
    }
}

impl SmcEngine {
    /// Creates an engine for confidence `confidence` and proportion
    /// `proportion`, both in the open interval `(0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for out-of-range values.
    pub fn new(confidence: f64, proportion: f64) -> Result<Self> {
        check_unit_open("confidence", confidence)?;
        check_unit_open("proportion", proportion)?;
        Ok(Self {
            confidence,
            proportion,
        })
    }

    /// The configured confidence level `C`.
    pub fn confidence_level(&self) -> f64 {
        self.confidence
    }

    /// The configured proportion `F`.
    pub fn proportion(&self) -> f64 {
        self.proportion
    }

    /// Algorithm 1: draws outcomes from `outcomes` until the assertion is
    /// significant at the configured confidence, then stops.
    ///
    /// The iterator is only consumed as far as needed — pass an infinite
    /// iterator backed by a simulator to get the textbook SMC loop.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyData`] if the iterator is exhausted
    /// before convergence.
    pub fn run_sequential<I>(&self, outcomes: I) -> Result<SequentialOutcome>
    where
        I: IntoIterator<Item = bool>,
    {
        let _span = span!(obs_names::SPAN_SEQUENTIAL);
        let mut m = 0u64;
        let mut n = 0u64;
        for sat in outcomes {
            n += 1;
            if sat {
                m += 1;
            }
            let c = confidence(m, n, self.proportion)?;
            if c >= self.confidence {
                return Ok(SequentialOutcome {
                    assertion: assertion(m, n, self.proportion)?,
                    achieved_confidence: c,
                    satisfied: m,
                    samples_used: n,
                });
            }
        }
        Err(CoreError::EmptyData)
    }

    /// Algorithm 2: consumes *all* outcomes, then reports the assertion
    /// only if it is significant (`C_CP > C`), otherwise `None`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyData`] for an empty iterator.
    pub fn run_fixed<I>(&self, outcomes: I) -> Result<FixedOutcome>
    where
        I: IntoIterator<Item = bool>,
    {
        let _span = span!(obs_names::SPAN_FIXED);
        let mut m = 0u64;
        let mut n = 0u64;
        for sat in outcomes {
            n += 1;
            if sat {
                m += 1;
            }
        }
        if n == 0 {
            return Err(CoreError::EmptyData);
        }
        let c = confidence(m, n, self.proportion)?;
        let verdict = if c > self.confidence {
            Some(assertion(m, n, self.proportion)?)
        } else {
            None
        };
        Ok(FixedOutcome {
            assertion: verdict,
            achieved_confidence: c,
            satisfied: m,
            samples_used: n,
        })
    }

    /// Convenience: Algorithm 2 on pre-counted totals.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `satisfied > total` or
    /// `total == 0`.
    pub fn run_counts(&self, satisfied: u64, total: u64) -> Result<FixedOutcome> {
        let c = confidence(satisfied, total, self.proportion)?;
        let verdict = if c > self.confidence {
            Some(assertion(satisfied, total, self.proportion)?)
        } else {
            None
        };
        Ok(FixedOutcome {
            assertion: verdict,
            achieved_confidence: c,
            satisfied,
            samples_used: total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn engine_validates_parameters() {
        assert!(SmcEngine::new(0.0, 0.9).is_err());
        assert!(SmcEngine::new(0.9, 1.0).is_err());
        let e = SmcEngine::new(0.95, 0.8).unwrap();
        assert_eq!(e.confidence_level(), 0.95);
        assert_eq!(e.proportion(), 0.8);
    }

    #[test]
    fn sequential_all_true_takes_n_positive_samples() {
        let e = SmcEngine::new(0.9, 0.9).unwrap();
        let out = e.run_sequential(std::iter::repeat(true)).unwrap();
        assert_eq!(out.samples_used, 22);
        assert_eq!(out.assertion, Assertion::Positive);
        assert!(out.achieved_confidence >= 0.9);
        assert_eq!(out.satisfied, 22);
    }

    #[test]
    fn sequential_all_false_takes_n_negative_samples() {
        let e = SmcEngine::new(0.9, 0.9).unwrap();
        let out = e.run_sequential(std::iter::repeat(false)).unwrap();
        assert_eq!(out.samples_used, 1);
        assert_eq!(out.assertion, Assertion::Negative);
    }

    #[test]
    fn sequential_exhausted_iterator_errors() {
        let e = SmcEngine::new(0.9, 0.9).unwrap();
        // 5 all-true samples cannot reach C = 0.9 at F = 0.9.
        assert!(matches!(
            e.run_sequential([true; 5]),
            Err(CoreError::EmptyData)
        ));
    }

    #[test]
    fn sequential_terminates_on_mixed_stream() {
        // Alternating outcomes: M/N → 0.5 < F, so the negative assertion
        // eventually becomes significant.
        let e = SmcEngine::new(0.9, 0.9).unwrap();
        let out = e.run_sequential((0..).map(|i| i % 2 == 0)).unwrap();
        assert_eq!(out.assertion, Assertion::Negative);
        assert!(out.achieved_confidence >= 0.9);
    }

    #[test]
    fn fixed_reports_none_when_inconclusive() {
        let e = SmcEngine::new(0.9, 0.9).unwrap();
        // 20 of 22 satisfied: M/N ≈ 0.909 ≥ F, but the positive assertion
        // is weak near the boundary — confirm whatever the verdict is,
        // the reported confidence matches Eq. 4.
        let outcomes: Vec<bool> = (0..22).map(|i| i < 20).collect();
        let out = e.run_fixed(outcomes).unwrap();
        assert_eq!(out.satisfied, 20);
        assert_eq!(out.samples_used, 22);
        let c = confidence(20, 22, 0.9).unwrap();
        assert_eq!(out.achieved_confidence, c);
        assert_eq!(out.converged(), c > 0.9);
        // Near the F boundary the test must NOT be significant.
        assert_eq!(out.assertion, None);
    }

    #[test]
    fn fixed_converges_far_from_boundary() {
        let e = SmcEngine::new(0.9, 0.9).unwrap();
        let all_true = e.run_fixed(vec![true; 22]).unwrap();
        assert_eq!(all_true.assertion, Some(Assertion::Positive));
        let mostly_false: Vec<bool> = (0..22).map(|i| i < 2).collect();
        let out = e.run_fixed(mostly_false).unwrap();
        assert_eq!(out.assertion, Some(Assertion::Negative));
    }

    #[test]
    fn fixed_empty_errors() {
        let e = SmcEngine::new(0.9, 0.9).unwrap();
        assert!(matches!(
            e.run_fixed(std::iter::empty()),
            Err(CoreError::EmptyData)
        ));
    }

    #[test]
    fn counts_shortcut_matches_iterator_path() {
        let e = SmcEngine::new(0.9, 0.5).unwrap();
        let by_iter = e.run_fixed((0..30).map(|i| i % 3 != 0)).unwrap();
        let by_counts = e.run_counts(20, 30).unwrap();
        assert_eq!(by_iter, by_counts);
        assert!(e.run_counts(31, 30).is_err());
    }

    proptest! {
        #[test]
        fn sequential_verdict_matches_final_counts(
            outcomes in proptest::collection::vec(any::<bool>(), 200..400),
            c in 0.5_f64..0.95,
            f in 0.1_f64..0.9,
        ) {
            let e = SmcEngine::new(c, f).unwrap();
            if let Ok(out) = e.run_sequential(outcomes.iter().copied()) {
                // Verdict agrees with Eq. 3 on the consumed prefix.
                let m: u64 = outcomes[..out.samples_used as usize]
                    .iter()
                    .filter(|&&b| b)
                    .count() as u64;
                prop_assert_eq!(m, out.satisfied);
                let expect = assertion(m, out.samples_used, f).unwrap();
                prop_assert_eq!(out.assertion, expect);
                prop_assert!(out.achieved_confidence >= c);
            }
        }

        #[test]
        fn fixed_confidence_threshold_is_strict(
            m in 0_u64..100,
            extra in 0_u64..100,
            c in 0.5_f64..0.95,
            f in 0.1_f64..0.9,
        ) {
            let n = m + extra;
            prop_assume!(n > 0);
            let e = SmcEngine::new(c, f).unwrap();
            let out = e.run_counts(m, n).unwrap();
            match out.assertion {
                Some(_) => prop_assert!(out.achieved_confidence > c),
                None => prop_assert!(out.achieved_confidence <= c),
            }
        }
    }
}
