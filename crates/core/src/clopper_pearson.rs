//! The Clopper–Pearson exact confidence of an SMC assertion.
//!
//! This module implements Eq. 3–5 of the paper. Given `N` sample
//! executions of which `M` satisfied the property, the statistical
//! assertion for the hypothesis `P(φ) ≥ F` is
//!
//! ```text
//! A = negative  if M/N < F
//! A = positive  if M/N ≥ F        (Eq. 3)
//! ```
//!
//! and its confidence level is the Clopper–Pearson probability mass of
//! the binomial parameter lying on the asserted side of `F`:
//!
//! ```text
//! C_CP(a,b | M,N) = (1−a)^N − (1−b)^N                      if M = 0
//!                 = b^N − a^N                              if M = N
//!                 = B(b | M+1, N−M) − B(a | M, N−M+1)      otherwise
//! with (a,b) = (0,F) when M/N < F and (F,1) when M/N ≥ F.  (Eq. 4–5)
//! ```

use serde::{Deserialize, Serialize};

use crate::{CoreError, Result};
use spa_stats::beta::BetaDist;

/// The verdict of an SMC hypothesis test for `P(φ) ≥ F` (the paper's
/// Eq. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Assertion {
    /// The hypothesis is asserted true: `M/N ≥ F`.
    Positive,
    /// The hypothesis is asserted false: `M/N < F`.
    Negative,
}

impl std::fmt::Display for Assertion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Assertion::Positive => "positive",
            Assertion::Negative => "negative",
        })
    }
}

/// Validates a proportion/confidence parameter in the open interval
/// `(0, 1)`.
pub(crate) fn check_unit_open(name: &'static str, v: f64) -> Result<()> {
    if v > 0.0 && v < 1.0 {
        Ok(())
    } else {
        Err(CoreError::InvalidParameter {
            name,
            value: v,
            expected: "a value in the open interval (0, 1)",
        })
    }
}

/// The statistical assertion of Eq. 3.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `m > n`, `n == 0`, or
/// `proportion ∉ (0, 1)`.
///
/// # Examples
///
/// ```
/// use spa_core::clopper_pearson::{assertion, Assertion};
/// assert_eq!(assertion(20, 22, 0.9)?, Assertion::Positive);
/// assert_eq!(assertion(10, 22, 0.9)?, Assertion::Negative);
/// # Ok::<(), spa_core::CoreError>(())
/// ```
pub fn assertion(m: u64, n: u64, proportion: f64) -> Result<Assertion> {
    validate_mn(m, n)?;
    check_unit_open("proportion", proportion)?;
    Ok(if (m as f64) / (n as f64) < proportion {
        Assertion::Negative
    } else {
        Assertion::Positive
    })
}

fn validate_mn(m: u64, n: u64) -> Result<()> {
    if n == 0 {
        return Err(CoreError::InvalidParameter {
            name: "n",
            value: 0.0,
            expected: "at least one sample",
        });
    }
    if m > n {
        return Err(CoreError::InvalidParameter {
            name: "m",
            value: m as f64,
            expected: "m <= n",
        });
    }
    Ok(())
}

/// Clopper–Pearson confidence `C_CP(a, b | M, N)` for explicit interval
/// bounds `a < b` (the raw Eq. 4).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for `m > n`, `n == 0`, or
/// bounds outside `0 ≤ a < b ≤ 1`.
pub fn confidence_with_bounds(m: u64, n: u64, a: f64, b: f64) -> Result<f64> {
    validate_mn(m, n)?;
    if !(0.0..=1.0).contains(&a) || !(0.0..=1.0).contains(&b) || a >= b {
        return Err(CoreError::InvalidParameter {
            name: "a/b",
            value: a,
            expected: "bounds with 0 <= a < b <= 1",
        });
    }
    let nf = n as f64;
    let c = if m == 0 {
        (1.0 - a).powf(nf) - (1.0 - b).powf(nf)
    } else if m == n {
        b.powf(nf) - a.powf(nf)
    } else {
        let upper = BetaDist::new(m as f64 + 1.0, (n - m) as f64)?.cdf(b);
        let lower = BetaDist::new(m as f64, (n - m) as f64 + 1.0)?.cdf(a);
        upper - lower
    };
    // Numerical noise can push the difference infinitesimally outside
    // [0, 1]; clamp.
    Ok(c.clamp(0.0, 1.0))
}

/// The confidence level of the Eq. 3 assertion, choosing the bounds of
/// Eq. 5 automatically: `(a, b) = (0, F)` for a negative assertion and
/// `(F, 1)` for a positive one.
///
/// # Errors
///
/// Same conditions as [`assertion`].
///
/// # Examples
///
/// ```
/// use spa_core::clopper_pearson::confidence;
/// // All 22 of 22 samples satisfied the property: the positive assertion
/// // for F = 0.9 carries confidence 1 − 0.9²² ≈ 0.902.
/// let c = confidence(22, 22, 0.9)?;
/// assert!((c - (1.0 - 0.9f64.powi(22))).abs() < 1e-12);
/// # Ok::<(), spa_core::CoreError>(())
/// ```
pub fn confidence(m: u64, n: u64, proportion: f64) -> Result<f64> {
    let a = assertion(m, n, proportion)?;
    match a {
        Assertion::Negative => confidence_with_bounds(m, n, 0.0, proportion),
        Assertion::Positive => confidence_with_bounds(m, n, proportion, 1.0),
    }
}

/// The confidence that would be reported for a *positive* assertion at
/// these counts, regardless of which side `M/N` falls on.
///
/// This is what Fig. 4 of the paper plots on its y-axis: points above
/// `C` are significant positives, points below `1 − C` are significant
/// negatives, and the band between is inconclusive.
///
/// # Errors
///
/// Same conditions as [`assertion`].
pub fn positive_confidence(m: u64, n: u64, proportion: f64) -> Result<f64> {
    check_unit_open("proportion", proportion)?;
    validate_mn(m, n)?;
    confidence_with_bounds(m, n, proportion, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn assertion_follows_eq3() {
        assert_eq!(assertion(0, 10, 0.5).unwrap(), Assertion::Negative);
        assert_eq!(assertion(5, 10, 0.5).unwrap(), Assertion::Positive); // M/N == F counts as positive
        assert_eq!(assertion(4, 10, 0.5).unwrap(), Assertion::Negative);
        assert_eq!(assertion(10, 10, 0.5).unwrap(), Assertion::Positive);
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(assertion(5, 0, 0.5).is_err());
        assert!(assertion(11, 10, 0.5).is_err());
        assert!(assertion(5, 10, 0.0).is_err());
        assert!(assertion(5, 10, 1.0).is_err());
        assert!(confidence_with_bounds(5, 10, 0.5, 0.5).is_err());
        assert!(confidence_with_bounds(5, 10, -0.1, 0.5).is_err());
    }

    #[test]
    fn boundary_cases_match_closed_forms() {
        // M = 0, negative: C = 1 − (1−F)^N.
        let c = confidence(0, 5, 0.3).unwrap();
        assert!((c - (1.0 - 0.7_f64.powi(5))).abs() < 1e-12);
        // M = N, positive: C = 1 − F^N.
        let c = confidence(5, 5, 0.3).unwrap();
        assert!((c - (1.0 - 0.3_f64.powi(5))).abs() < 1e-12);
    }

    #[test]
    fn paper_convergence_numbers() {
        // §4.3: at C = F = 0.9, 22 all-true samples suffice, 21 do not.
        assert!(confidence(22, 22, 0.9).unwrap() >= 0.9);
        assert!(confidence(21, 21, 0.9).unwrap() < 0.9);
        // A single all-false sample suffices for the negative assertion.
        assert!(confidence(0, 1, 0.9).unwrap() >= 0.9);
    }

    #[test]
    fn interior_case_is_binomial_tail() {
        // For a positive assertion, C = 1 − B(F | M, N−M+1)
        //                             = P(Bin(N, F) < M)  (CP duality).
        // Check against a direct binomial sum.
        let (m, n, f) = (20_u64, 22_u64, 0.8_f64);
        let c = confidence(m, n, f).unwrap();
        let binom = spa_stats::binomial::Binomial::new(n, f).unwrap();
        let direct: f64 = (0..m).map(|k| binom.pmf(k)).sum();
        assert!(
            (c - direct).abs() < 1e-10,
            "confidence {c} vs binomial tail {direct}"
        );
    }

    #[test]
    fn negative_interior_case_is_binomial_tail() {
        // For a negative assertion, C = B(F | M+1, N−M) = P(Bin(N,F) > M).
        let (m, n, f) = (5_u64, 22_u64, 0.8_f64);
        let c = confidence(m, n, f).unwrap();
        let binom = spa_stats::binomial::Binomial::new(n, f).unwrap();
        let direct: f64 = ((m + 1)..=n).map(|k| binom.pmf(k)).sum();
        assert!(
            (c - direct).abs() < 1e-10,
            "confidence {c} vs binomial tail {direct}"
        );
    }

    #[test]
    fn positive_confidence_is_low_on_negative_side() {
        // With very few satisfying samples the positive-direction
        // confidence must be small (Fig. 4's lower region).
        let c = positive_confidence(2, 22, 0.9).unwrap();
        assert!(c < 0.1, "positive confidence {c} should be < 1 − C");
        // And high when nearly all satisfy.
        let c = positive_confidence(22, 22, 0.9).unwrap();
        assert!(c > 0.9);
    }

    proptest! {
        #[test]
        fn confidence_in_unit_interval(n in 1_u64..200, m_frac in 0.0_f64..=1.0,
                                       f in 0.01_f64..0.99) {
            let m = ((n as f64) * m_frac).round() as u64;
            let c = confidence(m.min(n), n, f).unwrap();
            prop_assert!((0.0..=1.0).contains(&c));
        }

        #[test]
        fn more_unanimous_samples_more_confidence(n1 in 1_u64..100, extra in 1_u64..100,
                                                  f in 0.05_f64..0.95) {
            // All-true runs: confidence grows with N.
            let c1 = confidence(n1, n1, f).unwrap();
            let c2 = confidence(n1 + extra, n1 + extra, f).unwrap();
            prop_assert!(c2 >= c1 - 1e-12);
        }

        #[test]
        fn assertion_and_confidence_consistent(n in 1_u64..100, m_frac in 0.0_f64..=1.0,
                                               f in 0.05_f64..0.95) {
            let m = ((n as f64) * m_frac).round().min(n as f64) as u64;
            let a = assertion(m, n, f).unwrap();
            let c = confidence(m, n, f).unwrap();
            let cp = positive_confidence(m, n, f).unwrap();
            match a {
                // For a positive assertion the generic positive-direction
                // confidence IS the assertion confidence.
                Assertion::Positive => prop_assert!((c - cp).abs() < 1e-12),
                // For a negative assertion the positive-direction
                // confidence must not ALSO be convincing.
                Assertion::Negative => prop_assert!(cp <= 0.5 + 1e-12 || c < 0.5 + 1e-12),
            }
        }
    }
}
