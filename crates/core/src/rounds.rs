//! Round-based aggregation for *parallel* sequential SMC.
//!
//! The sequential Algorithm 1 ([`SmcEngine::run_sequential`]) stops the
//! moment its Clopper–Pearson confidence reaches the requested level —
//! which is only statistically sound if the order in which outcomes
//! enter the test is fixed *before* any of them is observed. A naive
//! parallelisation that folds worker results first-come-first-served
//! breaks that assumption: fast executions (which on real simulators
//! correlate with the metric being measured) would systematically enter
//! the test earlier than slow ones, biasing the stopping rule.
//!
//! Following Bulychev et al., *"Distributed Parametric and Statistical
//! Model Checking"*, this module aggregates outcomes in **fixed-size
//! rounds** instead. The seed stream is partitioned a priori into
//! consecutive rounds of `round_size` executions (round `r` covers seeds
//! `seed_start + r·R … seed_start + (r+1)·R − 1`); workers produce whole
//! rounds in any order and at any speed, and the [`RoundAggregator`]
//! folds them strictly in round-index order, evaluating the stopping
//! rule only at complete round boundaries. Which samples are consumed —
//! rounds `0..k` in index order — therefore never depends on thread
//! scheduling, wall-clock time, or the sampled values themselves, so the
//! stopping rule remains exactly as unbiased as the single-threaded
//! loop (it is the single-threaded loop, checked every `R` samples).
//!
//! [`run_hypothesis_rounds`] is the bundled driver: it fans rounds out
//! over scoped worker threads, each with a deterministic slice of the
//! seed stream, and returns as soon as the aggregator concludes.
//!
//! # Examples
//!
//! ```
//! use spa_core::clopper_pearson::Assertion;
//! use spa_core::rounds::RoundAggregator;
//! use spa_core::smc::SmcEngine;
//!
//! # fn main() -> Result<(), spa_core::CoreError> {
//! let engine = SmcEngine::new(0.9, 0.9)?;
//! let mut agg = RoundAggregator::new(engine, 11)?;
//! // Rounds may arrive out of order; round 1 is buffered until round 0
//! // lands.
//! assert!(agg.submit(1, vec![true; 11])?.is_none());
//! let outcome = agg.submit(0, vec![true; 11])?.expect("22 all-true converge");
//! assert_eq!(outcome.assertion, Assertion::Positive);
//! assert_eq!(outcome.samples_used, 22);
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::clopper_pearson::{assertion, confidence};
use crate::obs_names;
use crate::property::MetricProperty;
use crate::smc::{SequentialOutcome, SmcEngine};
use crate::spa::Sampler;
use crate::{CoreError, Result};
use spa_obs::{metrics::global, span};

/// The seeds belonging to round `round` of a stream starting at
/// `seed_start` with rounds of `round_size` executions.
///
/// # Errors
///
/// Returns [`CoreError::SeedOverflow`] when the round's range would
/// exceed `u64::MAX`. The arithmetic is checked: the unchecked version
/// panicked in debug builds and silently *wrapped* in release builds,
/// reusing seeds from the start of the stream and biasing rounds toward
/// already-observed executions.
///
/// # Examples
///
/// ```
/// use spa_core::rounds::round_seeds;
/// # fn main() -> Result<(), spa_core::CoreError> {
/// assert_eq!(round_seeds(100, 0, 8)?, 100..108);
/// assert_eq!(round_seeds(100, 2, 8)?, 116..124);
/// assert!(round_seeds(u64::MAX - 4, 0, 8).is_err());
/// # Ok(())
/// # }
/// ```
pub fn round_seeds(seed_start: u64, round: u64, round_size: u64) -> Result<Range<u64>> {
    round
        .checked_mul(round_size)
        .and_then(|offset| seed_start.checked_add(offset))
        .and_then(|start| start.checked_add(round_size).map(|end| start..end))
        .ok_or(CoreError::SeedOverflow {
            seed_start,
            round,
            round_size,
        })
}

/// Aggregates per-round boolean outcomes in strict round-index order and
/// applies Algorithm 1's stopping rule only at complete round
/// boundaries.
///
/// Out-of-order rounds are buffered; duplicate or wrongly sized rounds
/// are rejected. Once the test concludes, further rounds are discarded
/// (parallel workers legitimately overshoot the stopping point).
#[derive(Debug)]
pub struct RoundAggregator {
    engine: SmcEngine,
    round_size: u64,
    /// Index of the next round to fold (rounds 0..next_round are folded).
    next_round: u64,
    /// Out-of-order rounds waiting for their predecessors.
    buffered: BTreeMap<u64, Vec<bool>>,
    satisfied: u64,
    seen: u64,
    last_confidence: f64,
    concluded: Option<SequentialOutcome>,
}

impl RoundAggregator {
    /// Creates an aggregator for the given engine and round size.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `round_size` is zero.
    pub fn new(engine: SmcEngine, round_size: u64) -> Result<Self> {
        if round_size == 0 {
            return Err(CoreError::InvalidParameter {
                name: "round_size",
                value: 0.0,
                expected: "a round size of at least 1",
            });
        }
        Ok(Self {
            engine,
            round_size,
            next_round: 0,
            buffered: BTreeMap::new(),
            satisfied: 0,
            seen: 0,
            last_confidence: 0.0,
            concluded: None,
        })
    }

    /// The configured round size `R`.
    pub fn round_size(&self) -> u64 {
        self.round_size
    }

    /// Number of rounds folded into the test so far (in index order).
    pub fn rounds_folded(&self) -> u64 {
        self.next_round
    }

    /// Total outcomes folded so far (`rounds_folded · round_size`).
    pub fn samples_seen(&self) -> u64 {
        self.seen
    }

    /// Satisfying outcomes folded so far (`M`).
    pub fn satisfied(&self) -> u64 {
        self.satisfied
    }

    /// The Clopper–Pearson confidence after the last folded round
    /// (0 before any round has been folded).
    pub fn current_confidence(&self) -> f64 {
        self.last_confidence
    }

    /// The concluded outcome, if the stopping rule has fired.
    pub fn outcome(&self) -> Option<&SequentialOutcome> {
        self.concluded.as_ref()
    }

    /// Whether the stopping rule has fired.
    pub fn is_concluded(&self) -> bool {
        self.concluded.is_some()
    }

    /// Submits one round of outcomes. Rounds may arrive in any order;
    /// they are folded in index order and the stopping rule is evaluated
    /// after each folded round. Returns the concluded outcome once
    /// available (and on every later call).
    ///
    /// After conclusion, extra rounds are silently discarded — workers
    /// racing past the stopping point are expected under parallelism.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for a round whose length is not
    /// `round_size` or that was already submitted.
    pub fn submit(&mut self, round: u64, outcomes: Vec<bool>) -> Result<Option<SequentialOutcome>> {
        if self.concluded.is_some() {
            return Ok(self.concluded);
        }
        if outcomes.len() as u64 != self.round_size {
            return Err(CoreError::InvalidParameter {
                name: "round_len",
                value: outcomes.len() as f64,
                expected: "exactly round_size outcomes per round",
            });
        }
        if round < self.next_round || self.buffered.contains_key(&round) {
            return Err(CoreError::InvalidParameter {
                name: "round",
                value: round as f64,
                expected: "each round index submitted exactly once",
            });
        }
        self.buffered.insert(round, outcomes);
        let _span = span!(obs_names::SPAN_FOLD);
        let mut folded = 0u64;
        while let Some(ready) = self.buffered.remove(&self.next_round) {
            self.next_round += 1;
            folded += 1;
            for sat in ready {
                self.seen += 1;
                if sat {
                    self.satisfied += 1;
                }
            }
            let c = confidence(self.satisfied, self.seen, self.engine.proportion())?;
            self.last_confidence = c;
            if c >= self.engine.confidence_level() {
                self.concluded = Some(SequentialOutcome {
                    assertion: assertion(self.satisfied, self.seen, self.engine.proportion())?,
                    achieved_confidence: c,
                    satisfied: self.satisfied,
                    samples_used: self.seen,
                });
                // Later rounds are never folded; drop any buffered ones.
                self.buffered.clear();
                break;
            }
        }
        if folded > 0 {
            global().counter(obs_names::ROUNDS_FOLDED).add(folded);
        }
        Ok(self.concluded)
    }
}

/// The result of a round-based parallel sequential-SMC run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RoundsOutcome {
    /// The converged verdict, or `None` if `max_rounds` was exhausted
    /// first.
    pub outcome: Option<SequentialOutcome>,
    /// Rounds folded into the test, in index order.
    pub rounds_used: u64,
    /// Outcomes consumed by the test (`rounds_used · round_size`).
    pub samples_used: u64,
    /// The Clopper–Pearson confidence after the last folded round.
    pub last_confidence: f64,
}

/// Runs the property's sequential hypothesis test against the sampler
/// with round-based parallel aggregation.
///
/// `workers` threads each claim round indices and execute that round's
/// seed slice (`round_seeds`); the shared [`RoundAggregator`] folds
/// completed rounds in index order and fires the stopping rule at round
/// boundaries. The verdict depends only on
/// `(sampler, property, seed_start, round_size)` — never on `workers`,
/// scheduling, or timing — because the consumed prefix of the seed
/// stream is fixed a priori.
///
/// At most `max_rounds` rounds are consumed; if the test has not
/// concluded by then, [`RoundsOutcome::outcome`] is `None`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for a zero `round_size`,
/// `max_rounds`, or `workers`, and [`CoreError::SeedOverflow`] when
/// `max_rounds` rounds from `seed_start` would run past `u64::MAX`.
pub fn run_hypothesis_rounds<S: Sampler + ?Sized>(
    engine: &SmcEngine,
    sampler: &S,
    property: &MetricProperty,
    seed_start: u64,
    round_size: u64,
    max_rounds: u64,
    workers: usize,
) -> Result<RoundsOutcome> {
    if max_rounds == 0 {
        return Err(CoreError::InvalidParameter {
            name: "max_rounds",
            value: 0.0,
            expected: "at least one round",
        });
    }
    if workers == 0 {
        return Err(CoreError::InvalidParameter {
            name: "workers",
            value: 0.0,
            expected: "at least one worker",
        });
    }
    // Fail fast if any round in the budget would overflow the seed
    // stream; workers below can then unwrap safely.
    round_seeds(seed_start, max_rounds - 1, round_size)?;
    let aggregator = Mutex::new(RoundAggregator::new(*engine, round_size)?);
    let next = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let round = next.fetch_add(1, Ordering::Relaxed);
                if round >= max_rounds {
                    break;
                }
                let seeds = round_seeds(seed_start, round, round_size)
                    .expect("round < max_rounds was range-checked above");
                let outcomes: Vec<bool> = seeds
                    .map(|seed| property.satisfies(sampler.sample(seed)))
                    .collect();
                let mut agg = aggregator.lock();
                // submit() cannot fail here: every index is claimed once
                // and rounds are exactly round_size long.
                if let Ok(Some(_)) = agg.submit(round, outcomes) {
                    stop.store(true, Ordering::Relaxed);
                    break;
                }
            });
        }
    });
    let agg = aggregator.into_inner();
    Ok(RoundsOutcome {
        outcome: agg.outcome().copied(),
        rounds_used: agg.rounds_folded(),
        samples_used: agg.samples_seen(),
        last_confidence: agg.current_confidence(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clopper_pearson::Assertion;
    use crate::property::Direction;

    fn engine() -> SmcEngine {
        SmcEngine::new(0.9, 0.9).unwrap()
    }

    /// Reference implementation: fold the outcome stream round by round
    /// in order, checking the stopping rule at boundaries only.
    fn reference(
        eng: &SmcEngine,
        outcomes: impl Iterator<Item = bool>,
        round_size: u64,
    ) -> Option<SequentialOutcome> {
        let (mut m, mut n) = (0u64, 0u64);
        let mut in_round = 0u64;
        for sat in outcomes {
            n += 1;
            in_round += 1;
            if sat {
                m += 1;
            }
            if in_round == round_size {
                in_round = 0;
                let c = confidence(m, n, eng.proportion()).unwrap();
                if c >= eng.confidence_level() {
                    return Some(SequentialOutcome {
                        assertion: assertion(m, n, eng.proportion()).unwrap(),
                        achieved_confidence: c,
                        satisfied: m,
                        samples_used: n,
                    });
                }
            }
        }
        None
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(RoundAggregator::new(engine(), 0).is_err());
        let sampler = |seed: u64| seed as f64;
        let p = MetricProperty::new(Direction::AtMost, 1e9);
        assert!(run_hypothesis_rounds(&engine(), &sampler, &p, 0, 4, 0, 1).is_err());
        assert!(run_hypothesis_rounds(&engine(), &sampler, &p, 0, 4, 8, 0).is_err());
        assert!(run_hypothesis_rounds(&engine(), &sampler, &p, 0, 0, 8, 1).is_err());
    }

    #[test]
    fn seed_overflow_is_a_typed_error() {
        // Near the top of the seed space, the range itself overflows.
        assert!(matches!(
            round_seeds(u64::MAX - 4, 0, 8),
            Err(CoreError::SeedOverflow {
                seed_start,
                round: 0,
                round_size: 8,
            }) if seed_start == u64::MAX - 4
        ));
        // The round offset multiplication overflows.
        assert!(round_seeds(0, u64::MAX / 2, 4).is_err());
        // The largest representable round still works.
        let last = round_seeds(u64::MAX - 8, 0, 8).unwrap();
        assert_eq!(last, u64::MAX - 8..u64::MAX);

        // The driver surfaces the same typed error up front instead of
        // wrapping mid-run.
        let sampler = |seed: u64| seed as f64;
        let p = MetricProperty::new(Direction::AtMost, 1e9);
        assert!(matches!(
            run_hypothesis_rounds(&engine(), &sampler, &p, u64::MAX - 16, 8, 64, 2),
            Err(CoreError::SeedOverflow { .. })
        ));
    }

    #[test]
    fn all_true_concludes_at_round_boundary() {
        // 22 all-true samples converge; with R = 8 the first boundary at
        // or past 22 is 24.
        let mut agg = RoundAggregator::new(engine(), 8).unwrap();
        for r in 0..2 {
            assert!(agg.submit(r, vec![true; 8]).unwrap().is_none());
        }
        let out = agg
            .submit(2, vec![true; 8])
            .unwrap()
            .expect("round 3 concludes");
        assert_eq!(out.samples_used, 24);
        assert_eq!(out.assertion, Assertion::Positive);
        assert!(out.achieved_confidence >= 0.9);
        assert!(agg.is_concluded());
        assert_eq!(agg.rounds_folded(), 3);
    }

    #[test]
    fn submission_order_does_not_matter() {
        // A deterministic mixed stream.
        let stream = |i: u64| i % 5 != 0; // 80 % satisfied < F = 0.9 ⇒ negative eventually
        let rounds: Vec<Vec<bool>> = (0..40u64)
            .map(|r| (r * 4..(r + 1) * 4).map(stream).collect())
            .collect();

        let run = |order: &[usize]| {
            let mut agg = RoundAggregator::new(engine(), 4).unwrap();
            let mut result = None;
            for &idx in order {
                if agg.is_concluded() {
                    break;
                }
                result = agg.submit(idx as u64, rounds[idx].clone()).unwrap();
                if result.is_some() {
                    break;
                }
            }
            result.expect("stream converges within 40 rounds")
        };

        let in_order: Vec<usize> = (0..40).collect();
        let mut reversed_tail = in_order.clone();
        reversed_tail[1..].reverse();
        let interleaved: Vec<usize> = (0..20).flat_map(|i| [i * 2 + 1, i * 2]).collect();

        let a = run(&in_order);
        let b = run(&reversed_tail);
        let c = run(&interleaved);
        assert_eq!(a, b);
        assert_eq!(a, c);
        // And the result matches the sequential reference truncated to
        // round boundaries.
        let expected = reference(&engine(), (0..160).map(stream), 4).unwrap();
        assert_eq!(a, expected);
    }

    #[test]
    fn duplicate_and_malformed_rounds_are_rejected() {
        let mut agg = RoundAggregator::new(engine(), 4).unwrap();
        agg.submit(0, vec![true; 4]).unwrap();
        assert!(agg.submit(0, vec![true; 4]).is_err()); // already folded
        agg.submit(2, vec![true; 4]).unwrap(); // buffered
        assert!(agg.submit(2, vec![true; 4]).is_err()); // already buffered
        assert!(agg.submit(3, vec![true; 3]).is_err()); // wrong size
    }

    #[test]
    fn post_conclusion_rounds_are_discarded() {
        let mut agg = RoundAggregator::new(engine(), 22).unwrap();
        let out = agg.submit(0, vec![true; 22]).unwrap().unwrap();
        assert_eq!(out.samples_used, 22);
        // Extra rounds (even malformed ones) are ignored once concluded.
        assert_eq!(agg.submit(1, vec![false; 22]).unwrap(), Some(out));
        assert_eq!(agg.submit(7, vec![true; 3]).unwrap(), Some(out));
        assert_eq!(agg.samples_seen(), 22);
    }

    #[test]
    fn driver_is_deterministic_across_worker_counts() {
        // Sampler with a deterministic spread; threshold in the middle.
        let sampler = |seed: u64| (seed % 10) as f64;
        let p = MetricProperty::new(Direction::AtMost, 8.5); // 90 % satisfy
        let eng = engine();
        let one = run_hypothesis_rounds(&eng, &sampler, &p, 5, 8, 64, 1).unwrap();
        let four = run_hypothesis_rounds(&eng, &sampler, &p, 5, 8, 64, 4).unwrap();
        let eight = run_hypothesis_rounds(&eng, &sampler, &p, 5, 8, 64, 8).unwrap();
        assert_eq!(one, four);
        assert_eq!(one, eight);
        // Matches the sequential reference over the same seed stream.
        let expected = reference(&eng, (0..64 * 8).map(|i| p.satisfies(sampler(5 + i))), 8);
        assert_eq!(one.outcome, expected);
    }

    #[test]
    fn driver_reports_exhaustion() {
        // 50/50 stream at F = 0.9 converges negative quickly, so use a
        // boundary stream that cannot converge in the budget: exactly at
        // the proportion the confidence hovers below C.
        let eng = SmcEngine::new(0.999999, 0.5).unwrap();
        let sampler = |seed: u64| (seed % 2) as f64;
        let p = MetricProperty::new(Direction::AtMost, 0.5); // half satisfy
        let out = run_hypothesis_rounds(&eng, &sampler, &p, 0, 4, 3, 2).unwrap();
        assert!(out.outcome.is_none());
        assert_eq!(out.rounds_used, 3);
        assert_eq!(out.samples_used, 12);
        assert!(out.last_confidence < 0.999999);
    }

    #[test]
    fn aggregator_tracks_progress_counters() {
        let mut agg = RoundAggregator::new(engine(), 5).unwrap();
        assert_eq!(agg.round_size(), 5);
        assert_eq!(agg.samples_seen(), 0);
        assert_eq!(agg.current_confidence(), 0.0);
        agg.submit(0, vec![true, false, true, true, false]).unwrap();
        assert_eq!(agg.samples_seen(), 5);
        assert_eq!(agg.satisfied(), 3);
        assert!(agg.current_confidence() > 0.0);
        assert!(!agg.is_concluded());
    }
}
