//! Minimum sample counts for SMC convergence (the paper's Eq. 6–8).
//!
//! The fastest path to a positive verdict is `M = N` (every execution
//! satisfied the property); convergence then needs `1^N − F^N ≥ C`
//! (Eq. 6). The fastest negative path is `M = 0`, needing
//! `1 − (1−F)^N ≥ C` (Eq. 7). SPA batches at least
//! `max(N₊, N₋)` executions (Eq. 8) so that a confidence interval can be
//! produced whatever the data says.
//!
//! For the paper's running example `C = F = 0.9` these are 22 and 1, so
//! [`min_samples`] returns 22.

use crate::clopper_pearson::check_unit_open;
use crate::Result;

/// Smallest `N` such that an all-true run converges to a positive
/// verdict: `1 − F^N ≥ C` (Eq. 6).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`](crate::CoreError::InvalidParameter)
/// unless both arguments are in `(0, 1)`.
///
/// # Examples
///
/// ```
/// use spa_core::min_samples::n_positive;
/// assert_eq!(n_positive(0.9, 0.9)?, 22); // the paper's §4.3 number
/// # Ok::<(), spa_core::CoreError>(())
/// ```
pub fn n_positive(confidence: f64, proportion: f64) -> Result<u64> {
    check_unit_open("confidence", confidence)?;
    check_unit_open("proportion", proportion)?;
    // 1 − F^N ≥ C  ⇔  N ≥ ln(1−C) / ln(F). Non-strict, exactly as the
    // paper's Eq. 6 (its Algorithm 1 stops when C_CP ≥ C; only the
    // fixed-sample Algorithm 2 demands the strict C_CP > C).
    let n = ((1.0 - confidence).ln() / proportion.ln()).ceil();
    let mut n = (n.max(1.0)) as u64;
    // Guard against floating-point edge cases by checking the inequality
    // directly and adjusting at most one step in each direction.
    while 1.0 - proportion.powf(n as f64) < confidence {
        n += 1;
    }
    while n > 1 && 1.0 - proportion.powf((n - 1) as f64) >= confidence {
        n -= 1;
    }
    Ok(n)
}

/// Smallest `N` such that an all-false run converges to a negative
/// verdict: `1 − (1−F)^N ≥ C` (Eq. 7).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`](crate::CoreError::InvalidParameter)
/// unless both arguments are in `(0, 1)`.
///
/// # Examples
///
/// ```
/// use spa_core::min_samples::n_negative;
/// assert_eq!(n_negative(0.9, 0.9)?, 1); // the paper's §4.3 number
/// # Ok::<(), spa_core::CoreError>(())
/// ```
pub fn n_negative(confidence: f64, proportion: f64) -> Result<u64> {
    // By symmetry this is n_positive with F ↦ 1 − F.
    n_positive(confidence, 1.0 - proportion)
}

/// The minimum number of samples SPA requires before it can construct a
/// confidence interval: `max(N₊, N₋)` (Eq. 8).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`](crate::CoreError::InvalidParameter)
/// unless both arguments are in `(0, 1)`.
///
/// # Examples
///
/// ```
/// use spa_core::min_samples::min_samples;
/// assert_eq!(min_samples(0.9, 0.9)?, 22);
/// assert_eq!(min_samples(0.9, 0.5)?, 4);
/// # Ok::<(), spa_core::CoreError>(())
/// ```
pub fn min_samples(confidence: f64, proportion: f64) -> Result<u64> {
    Ok(n_positive(confidence, proportion)?.max(n_negative(confidence, proportion)?))
}

/// The confidence level actually achievable with `n` samples, whatever
/// the data says: `min(1 − F^n, 1 − (1−F)^n)` (the Eq. 6/7 bounds read
/// backwards).
///
/// This is the inverse question of [`min_samples`]: instead of "how many
/// samples does confidence `C` need?", it answers "having collected only
/// `n` samples, what confidence can every verdict reach?". The binding
/// constraint is the slower of the two unanimous paths (Eq. 4 with
/// `M = N` and Eq. 5 with `M = 0`), because a confidence interval must
/// be able to resolve thresholds in either direction. SPA's graceful
/// degradation ([`Spa::run_fallible`](crate::spa::Spa::run_fallible))
/// uses this to report an honest confidence when failures leave it with
/// `N' <` [`min_samples`] samples.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`](crate::CoreError::InvalidParameter)
/// if `n` is zero or `proportion` is not in `(0, 1)`.
///
/// # Examples
///
/// ```
/// use spa_core::min_samples::{achievable_confidence, min_samples};
/// // 22 samples achieve the requested 0.9…
/// assert!(achievable_confidence(22, 0.9)? >= 0.9);
/// // …but 18 fall short, and this says by exactly how much.
/// let achieved = achievable_confidence(18, 0.9)?;
/// assert!(achieved < 0.9 && achieved > 0.8);
/// # Ok::<(), spa_core::CoreError>(())
/// ```
pub fn achievable_confidence(n: u64, proportion: f64) -> Result<f64> {
    if n == 0 {
        return Err(crate::CoreError::InvalidParameter {
            name: "n",
            value: 0.0,
            expected: "at least 1 sample",
        });
    }
    check_unit_open("proportion", proportion)?;
    let positive = 1.0 - proportion.powf(n as f64);
    let negative = 1.0 - (1.0 - proportion).powf(n as f64);
    Ok(positive.min(negative))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clopper_pearson::confidence;
    use proptest::prelude::*;

    #[test]
    fn paper_section_43_numbers() {
        assert_eq!(n_positive(0.9, 0.9).unwrap(), 22);
        assert_eq!(n_negative(0.9, 0.9).unwrap(), 1);
        assert_eq!(min_samples(0.9, 0.9).unwrap(), 22);
    }

    #[test]
    fn symmetric_at_half() {
        // At F = 0.5 both directions need the same count: 1−0.5^N ≥ 0.9
        // ⇒ N = 4.
        assert_eq!(n_positive(0.9, 0.5).unwrap(), 4);
        assert_eq!(n_negative(0.9, 0.5).unwrap(), 4);
        assert_eq!(min_samples(0.9, 0.5).unwrap(), 4);
    }

    #[test]
    fn higher_confidence_needs_more_samples() {
        let n90 = min_samples(0.90, 0.9).unwrap();
        let n99 = min_samples(0.99, 0.9).unwrap();
        let n999 = min_samples(0.999, 0.9).unwrap();
        assert!(n90 < n99 && n99 < n999);
        // 1 − 0.9^N ≥ 0.99 ⇒ N ≥ 43.7 ⇒ 44.
        assert_eq!(n99, 44);
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(n_positive(0.0, 0.9).is_err());
        assert!(n_positive(1.0, 0.9).is_err());
        assert!(n_positive(0.9, 0.0).is_err());
        assert!(n_positive(0.9, 1.0).is_err());
        assert!(achievable_confidence(0, 0.9).is_err());
        assert!(achievable_confidence(10, 0.0).is_err());
        assert!(achievable_confidence(10, 1.0).is_err());
    }

    #[test]
    fn achievable_confidence_inverts_min_samples() {
        // At the Eq. 8 count the requested confidence is reached…
        assert!(achievable_confidence(22, 0.9).unwrap() >= 0.9);
        // …and one sample short of it, it is not.
        assert!(achievable_confidence(21, 0.9).unwrap() < 0.9);
        // The binding path at F = 0.9 is the positive one: 1 − 0.9^n.
        let a = achievable_confidence(10, 0.9).unwrap();
        assert!((a - (1.0 - 0.9f64.powi(10))).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn returned_n_is_minimal(c in 0.5_f64..0.999, f in 0.01_f64..0.99) {
            let n = n_positive(c, f).unwrap();
            // N satisfies Eq. 6…
            prop_assert!(1.0 - f.powf(n as f64) >= c);
            // …and N − 1 does not (unless N = 1).
            if n > 1 {
                prop_assert!(1.0 - f.powf((n - 1) as f64) < c);
            }
        }

        #[test]
        fn achievable_matches_min_samples_threshold(c in 0.5_f64..0.999,
                                                    f in 0.05_f64..0.95,
                                                    n in 1u64..200) {
            // achievable_confidence(n, f) ≥ c  ⇔  n ≥ min_samples(c, f):
            // the two functions are inverse views of Eq. 6–8.
            let needed = min_samples(c, f).unwrap();
            let achieved = achievable_confidence(n, f).unwrap();
            if n >= needed {
                prop_assert!(achieved >= c - 1e-12);
            } else {
                prop_assert!(achieved < c + 1e-12);
            }
        }

        #[test]
        fn consistent_with_clopper_pearson(c in 0.5_f64..0.99, f in 0.05_f64..0.95) {
            // An all-true run of exactly n_positive samples must reach
            // confidence c under the full Eq. 4 computation.
            let n = n_positive(c, f).unwrap();
            prop_assert!(confidence(n, n, f).unwrap() >= c - 1e-12);
            let n_neg = n_negative(c, f).unwrap();
            prop_assert!(confidence(0, n_neg, f).unwrap() >= c - 1e-12);
        }
    }
}
