//! The engine's observability taxonomy: every span and metric name
//! `spa-core` emits, in one place.
//!
//! Instrumentation records into the process-global
//! [`spa_obs::metrics::global`] registry and the global span subscriber.
//! It is strictly *verdict-neutral*: spans observe time, counters
//! observe events, and nothing here is ever consulted by a sampling or
//! stopping decision. Counters are bumped once per batch or round, never
//! per sample, so the hot loops stay hot.
//!
//! The simulation substrate follows the same conventions with its own
//! families, defined next to the code that flushes them (spa-core does
//! not depend on spa-sim, so they cannot live here):
//!
//! * `sim.batch.*` — population batches, runs, and worker counts
//!   (`spa_sim::batch`);
//! * `sim.trace.*` — trace-collection anomalies such as
//!   `sim.trace.events_dropped`;
//! * `sim.sched.*` — the event-driven core's per-run totals
//!   (`spa_sim::sched`): `events_popped`, `idle_skips`, and
//!   `runahead_cycles`, flushed once per execution.

/// Span around [`Spa::collect_samples`](crate::spa::Spa::collect_samples).
pub const SPAN_COLLECT: &str = "spa.collect_samples";
/// Span around
/// [`Spa::collect_samples_fallible`](crate::spa::Spa::collect_samples_fallible).
pub const SPAN_COLLECT_FALLIBLE: &str = "spa.collect_samples_fallible";
/// Span around an end-to-end [`Spa::run`](crate::spa::Spa::run) or
/// [`Spa::run_fallible`](crate::spa::Spa::run_fallible).
pub const SPAN_RUN: &str = "spa.run";
/// Span around one sequential SMC loop (Algorithm 1).
pub const SPAN_SEQUENTIAL: &str = "smc.sequential";
/// Span around one fixed-sample-size SMC evaluation (Algorithm 2).
pub const SPAN_FIXED: &str = "smc.fixed";
/// Span around folding one round into a
/// [`RoundAggregator`](crate::rounds::RoundAggregator).
pub const SPAN_FOLD: &str = "rounds.fold";
/// Span around one confidence-interval threshold search
/// ([`ci_exact`](crate::ci::ci_exact) /
/// [`ci_granular`](crate::ci::ci_granular)).
pub const SPAN_CI_SEARCH: &str = "ci.search";

/// Counter: executions requested from a sampler (bumped per collection
/// call with the batch size, before any are run).
pub const SAMPLES_REQUESTED: &str = "core.samples.requested";
/// Counter: executions that produced a usable metric sample.
pub const SAMPLES_COLLECTED: &str = "core.samples.collected";
/// Counter: sampler retries performed by the fault-tolerant path.
pub const RETRIES: &str = "core.retries";
/// Counter: sampler panics caught and isolated.
pub const PANICS: &str = "core.panics";
/// Counter: SPA runs that finished in graceful statistical degradation
/// (fewer samples than Eq. 8 requires, honest reduced confidence).
pub const DEGRADED_RUNS: &str = "core.degraded_runs";
/// Counter: rounds folded into round aggregators.
pub const ROUNDS_FOLDED: &str = "core.rounds.folded";
/// Counter: SMC hypothesis tests evaluated during CI threshold searches.
pub const CI_THRESHOLD_TESTS: &str = "core.ci.threshold_tests";
/// Counter: threshold success counts served by the sorted-sample index
/// (each an O(log n) `partition_point` replacing an O(n) scan).
pub const CI_INDEX_HITS: &str = "core.ci.index_hits";
/// Counter: Clopper–Pearson evaluations answered from the
/// [`CiEngine`](crate::ci_engine::CiEngine) memo cache or its monotone
/// early-exit bounds instead of fresh incomplete-beta evaluations.
pub const CP_CACHE_HITS: &str = "core.ci.cp_cache_hits";
/// Counter: anytime-valid interval updates folded by
/// [`AnytimeRun::observe`](crate::seq::AnytimeRun::observe) (bumped per
/// round, never per sample).
pub const SEQ_UPDATES: &str = "core.seq.updates";
/// Counter: anytime runs stopped early because the interval width
/// reached its target.
pub const SEQ_EARLY_STOPS: &str = "core.seq.early_stops";
/// Counter: DKW confidence bands constructed
/// ([`CdfBand::dkw`](crate::band::CdfBand::dkw)).
pub const BAND_BUILDS: &str = "core.band.builds";
/// Counter: quantile CIs read off a band
/// ([`CdfBand::quantile_ci`](crate::band::CdfBand::quantile_ci)).
pub const BAND_QUANTILE_QUERIES: &str = "core.band.quantile_queries";
/// Counter: CVaR bound queries answered from a band
/// ([`CdfBand::cvar_ci`](crate::band::CdfBand::cvar_ci)).
pub const BAND_CVAR_QUERIES: &str = "core.band.cvar_queries";
