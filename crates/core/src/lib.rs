#![warn(missing_docs)]

//! # spa-core — the SMC-for-Processor-Analysis engine
//!
//! This crate implements the contribution of *"Rigorous Evaluation of
//! Computer Processors with Statistical Model Checking"* (MICRO 2023):
//!
//! * [`clopper_pearson`] — the exact confidence level of a statistical
//!   assertion (the paper's Eq. 3–5),
//! * [`min_samples`] — the minimum sample counts for convergence
//!   (Eq. 6–8; 22 samples for `C = F = 0.9`),
//! * [`smc`] — the sequential SMC loop (Algorithm 1) and the
//!   fixed-sample-size variant used for CI construction (Algorithm 2),
//! * [`ci`] — confidence intervals for arbitrary metrics built from
//!   repeated SMC hypothesis tests (§4.1–4.2), in both the paper's
//!   granularity-search form and an exact order-statistic form,
//! * [`ci_engine`] — the fast CI-construction engine behind [`ci`]: a
//!   sorted-sample index for O(log n) threshold counts, memoized
//!   Clopper–Pearson confidences, and the bisection primitives that
//!   replace linear threshold walks,
//! * [`property`] — scalar metric properties (Table 1 rows 1–2) that
//!   map samples to the booleans SMC consumes,
//! * [`hyper`] — hyperproperties over tuples of executions (the paper's
//!   §3.1/§8 future-work extension),
//! * [`sprt`] — Wald's sequential probability ratio test, the
//!   alternative SMC engine the paper's §3.3 contrasts against,
//! * [`spa`] — the push-button [`Spa`](spa::Spa) driver that manages the
//!   engine and batches simulator executions in parallel (§4.3),
//! * [`fault`] — fault-tolerant sampling: fallible samplers, retry
//!   policies with deterministic seed derivation, and the failure
//!   accounting behind SPA's graceful statistical degradation, and
//! * [`pipeline`] — the staged sampling pipeline (observation source →
//!   evaluator) that every collection loop is an adapter over, letting
//!   trace-valued workloads (STL properties over simulator traces) plug
//!   into the same SMC machinery as scalar metrics, and
//! * [`seq`] — anytime-valid inference: time-uniform confidence
//!   sequences (Hoeffding and betting/e-process boundaries) and the
//!   [`AnytimeRun`](seq::AnytimeRun) driver whose intervals stay valid
//!   under optional stopping, powering streaming jobs with live
//!   early-stop and bias-free preempt/resume, and
//! * [`band`] — simultaneous whole-CDF confidence bands via the exact
//!   finite-sample DKW inequality: one band per sample set answers
//!   every quantile CI and brackets tail risk (CVaR) by integrating
//!   the band envelopes over the sorted samples.
//!
//! # Quick start
//!
//! ```
//! use spa_core::spa::{Spa, Direction};
//!
//! # fn main() -> Result<(), spa_core::CoreError> {
//! // 22 samples of a metric (≥ the minimum for C = F = 0.9).
//! let samples: Vec<f64> = (0..22).map(|i| 1.0 + 0.01 * i as f64).collect();
//!
//! let spa = Spa::builder()
//!     .confidence(0.9)
//!     .proportion(0.9)
//!     .build()?;
//! assert_eq!(spa.required_samples(), 22);
//!
//! let ci = spa.confidence_interval(&samples, Direction::AtMost)?;
//! assert!(ci.lower() <= ci.upper());
//! # Ok(())
//! # }
//! ```

pub mod band;
pub mod ci;
pub mod ci_engine;
pub mod clopper_pearson;
pub mod fault;
pub mod hyper;
pub mod min_samples;
pub mod obs_names;
pub mod pipeline;
pub mod property;
pub mod rounds;
pub mod seq;
pub mod smc;
pub mod spa;
pub mod sprt;

mod error;

pub use error::CoreError;

/// Convenience alias used by fallible functions in this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
