use std::fmt;

use spa_stats::StatsError;

/// Error type for the SMC engine and SPA framework.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A parameter lies outside its domain, e.g. a confidence level not
    /// in `(0, 1)`.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable description of the accepted domain.
        expected: &'static str,
    },
    /// The operation needs data but none was provided.
    EmptyData,
    /// Fewer samples were provided than SMC needs to converge for the
    /// requested confidence and proportion (Eq. 8 of the paper).
    TooFewSamples {
        /// Samples required by Eq. 8.
        needed: u64,
        /// Samples actually provided.
        got: u64,
    },
    /// Fault-tolerant sampling exhausted every retry budget without
    /// collecting a single usable sample, so no statistical statement —
    /// however degraded — can be made.
    SamplingFailed {
        /// Executions requested.
        requested: u64,
        /// Usable samples collected.
        collected: u64,
    },
    /// A round's seed range would exceed `u64::MAX`. Wrapping instead
    /// would silently reuse seeds from the start of the stream, biasing
    /// rounds toward already-observed executions.
    SeedOverflow {
        /// First seed of the stream.
        seed_start: u64,
        /// Round index whose range overflowed.
        round: u64,
        /// Executions per round.
        round_size: u64,
    },
    /// An underlying numerical computation failed.
    Stats(StatsError),
    /// A property evaluation failed (e.g. an STL template referenced a
    /// missing metric).
    Property(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter {
                name,
                value,
                expected,
            } => write!(
                f,
                "invalid parameter `{name}` = {value}; expected {expected}"
            ),
            CoreError::EmptyData => write!(f, "empty data set"),
            CoreError::TooFewSamples { needed, got } => write!(
                f,
                "SMC needs at least {needed} samples to converge but only {got} were provided"
            ),
            CoreError::SamplingFailed {
                requested,
                collected,
            } => write!(
                f,
                "sampling failed: {collected} of {requested} requested executions \
                 produced a usable sample after exhausting retries"
            ),
            CoreError::SeedOverflow {
                seed_start,
                round,
                round_size,
            } => write!(
                f,
                "seed stream exhausted: round {round} of size {round_size} \
                 starting at seed {seed_start} exceeds u64::MAX"
            ),
            CoreError::Stats(e) => write!(f, "numerical error: {e}"),
            CoreError::Property(msg) => write!(f, "property evaluation failed: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StatsError> for CoreError {
    fn from(e: StatsError) -> Self {
        CoreError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::TooFewSamples { needed: 22, got: 5 };
        assert!(e.to_string().contains("22"));
        assert!(e.to_string().contains('5'));

        let e = CoreError::from(StatsError::EmptyData);
        assert!(e.to_string().contains("empty"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
