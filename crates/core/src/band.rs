//! Whole-CDF confidence bands, quantile CIs, and CVaR bounds via the
//! Dvoretzky–Kiefer–Wolfowitz (DKW) inequality.
//!
//! SPA's threshold search ([`ci`](crate::ci)) answers *one* quantile
//! question per construction: every new proportion `F` re-runs the
//! Clopper–Pearson bisection over the sample set. The DKW inequality
//! ("Statistical Model Checking Beyond Means", see PAPERS.md) gives a
//! *simultaneous* guarantee instead: with probability at least `C`, the
//! entire true CDF lies within `±ε` of the empirical CDF, where
//!
//! ```text
//! ε = sqrt( ln(2 / (1 − C)) / (2 n) )
//! ```
//!
//! is the exact finite-sample constant of Massart's tight version of the
//! inequality (valid at every `n ≥ 1`, no asymptotics). One band
//! therefore yields confidence intervals for *all* quantiles at once —
//! each a constant-time order-statistic read-off against PR 4's
//! [`SortedSamples`] index — plus bounds on tail-risk functionals
//! (CVaR / expected shortfall) by integrating the band envelopes over
//! the sorted samples.
//!
//! # Quantile read-off
//!
//! On the event that the band holds, the true `q`-quantile is bracketed
//! by the points where the band envelopes cross `q`: the lower endpoint
//! is the smallest sample at which the *upper* envelope reaches `q`
//! (the order statistic of rank `⌈n (q − ε)⌉`), the upper endpoint the
//! smallest sample at which the *lower* envelope reaches `q` (rank
//! `⌈n (q + ε)⌉`). A rank that falls off the sample range means the
//! band cannot bound that side — the endpoint is honestly reported as
//! unbounded ([`None`]) rather than clamped.
//!
//! # CVaR envelopes
//!
//! `CVaR_α` is the average of the quantile function over a tail:
//! `(1/(1−α)) ∫_α^1 Q(u) du` for the upper tail (expected shortfall of
//! the worst `1−α` fraction of the highest outcomes) and
//! `(1/(1−α)) ∫_0^{1−α} Q(u) du` for the lower tail. Since a larger CDF
//! means a smaller quantile function, the band's envelopes bracket
//! `Q(u)` between two shifted empirical quantile functions, and the tail
//! integrals of those step functions bracket the true CVaR. Where a
//! shifted rank leaves `(0, 1]`, the envelope is clamped to the observed
//! extremes — so the CVaR bounds are exact under a bounded-support
//! assumption anchored at the sample min/max (the usual SMC setting of
//! bounded reward; see DESIGN.md § CDF bands and tail risk).
//!
//! Everything here is pure arithmetic over one [`SortedSamples`] index:
//! no Clopper–Pearson evaluations, no threshold bisection — which is why
//! `k` quantile queries from one band beat `k` repeated per-quantile
//! SPA searches (BENCH_pr9.json enforces the margin in CI).

use serde::{Deserialize, Serialize};

use crate::ci_engine::SortedSamples;
use crate::fault::{FailureCounts, SampleBatch};
use crate::obs_names;
use crate::{CoreError, Result};
use spa_obs::metrics::global;

/// A simultaneous two-sided DKW confidence band over the empirical CDF
/// of one sample set.
///
/// # Examples
///
/// ```
/// use spa_core::band::CdfBand;
/// use spa_core::ci_engine::SortedSamples;
///
/// # fn main() -> Result<(), spa_core::CoreError> {
/// let samples: Vec<f64> = (1..=100).map(f64::from).collect();
/// let index = SortedSamples::new(&samples)?;
/// let band = CdfBand::dkw(&index, 0.9)?;
/// // One band answers every quantile question on this sample set.
/// let median = band.quantile_ci(0.5)?;
/// assert!(median.lower.unwrap() < 50.0 && median.upper.unwrap() > 50.0);
/// let p90 = band.quantile_ci(0.9)?;
/// assert!(p90.lower.unwrap() >= median.lower.unwrap());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CdfBand {
    sorted: Vec<f64>,
    confidence: f64,
    epsilon: f64,
}

/// A confidence interval for one quantile, read off a [`CdfBand`].
///
/// `None` endpoints are honest: a rank pushed outside `(0, 1]` by the
/// band's half-width means the data cannot bound that side at this
/// confidence (common for extreme quantiles at small `n`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantileCi {
    /// The quantile the interval targets.
    pub q: f64,
    /// Lower endpoint (`None` = unbounded below).
    pub lower: Option<f64>,
    /// Upper endpoint (`None` = unbounded above).
    pub upper: Option<f64>,
}

impl QuantileCi {
    /// Whether `value` lies inside the (possibly half-unbounded)
    /// interval.
    pub fn covers(&self, value: f64) -> bool {
        self.lower.is_none_or(|l| value >= l) && self.upper.is_none_or(|u| value <= u)
    }

    /// Interval width; infinite when either side is unbounded.
    pub fn width(&self) -> f64 {
        match (self.lower, self.upper) {
            (Some(l), Some(u)) => u - l,
            _ => f64::INFINITY,
        }
    }
}

/// Lower/upper bounds on one tail's CVaR, from the band envelopes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TailBounds {
    /// Lower bound on the tail expectation.
    pub lower: f64,
    /// Upper bound on the tail expectation.
    pub upper: f64,
}

impl TailBounds {
    /// Whether `value` lies inside the closed bounds.
    pub fn covers(&self, value: f64) -> bool {
        self.lower <= value && value <= self.upper
    }
}

/// CVaR bounds at one level `α`, for both tails.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CvarCi {
    /// The CVaR level `α` (both tails average a `1 − α` mass).
    pub alpha: f64,
    /// Bounds on `(1/(1−α)) ∫_α^1 Q(u) du` — the expected shortfall of
    /// the highest `1 − α` fraction of outcomes.
    pub upper_tail: TailBounds,
    /// Bounds on `(1/(1−α)) ∫_0^{1−α} Q(u) du` — the expectation of the
    /// lowest `1 − α` fraction of outcomes.
    pub lower_tail: TailBounds,
}

/// A level parameter (confidence, quantile, CVaR α) must lie strictly
/// inside the unit interval.
fn check_unit_open(name: &'static str, v: f64) -> Result<()> {
    if v.is_finite() && 0.0 < v && v < 1.0 {
        Ok(())
    } else {
        Err(CoreError::InvalidParameter {
            name,
            value: v,
            expected: "a value strictly inside (0, 1)",
        })
    }
}

impl CdfBand {
    /// Builds the DKW band at confidence `C` over an existing
    /// [`SortedSamples`] index: `ε = sqrt(ln(2/(1−C)) / (2n))`, the
    /// exact finite-sample constant (Massart's tight DKW).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for a confidence outside `(0, 1)`.
    pub fn dkw(index: &SortedSamples, confidence: f64) -> Result<Self> {
        check_unit_open("confidence", confidence)?;
        let n = index.len() as f64;
        let alpha = 1.0 - confidence;
        let epsilon = ((2.0 / alpha).ln() / (2.0 * n)).sqrt();
        global().counter(obs_names::BAND_BUILDS).incr();
        Ok(Self {
            sorted: index.values().to_vec(),
            confidence,
            epsilon,
        })
    }

    /// Convenience constructor: index the raw samples, then
    /// [`dkw`](Self::dkw).
    ///
    /// # Errors
    ///
    /// As [`SortedSamples::new`] plus [`dkw`](Self::dkw).
    pub fn from_samples(samples: &[f64], confidence: f64) -> Result<Self> {
        let index = SortedSamples::new(samples)?;
        Self::dkw(&index, confidence)
    }

    /// The simultaneous confidence level `C` of the band.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// The band half-width `ε`. A value `≥ 1` means the sample set is
    /// too small for this confidence and the band is vacuous.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of samples `n`.
    pub fn len(&self) -> u64 {
        self.sorted.len() as u64
    }

    /// Always false — [`SortedSamples`] rejects empty sample sets.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("construction rejects empty data")
    }

    /// The empirical CDF `F̂(x)` — the fraction of samples `≤ x`.
    pub fn empirical_cdf(&self, x: f64) -> f64 {
        if x.is_nan() {
            return 0.0;
        }
        self.sorted.partition_point(|&s| s <= x) as f64 / self.sorted.len() as f64
    }

    /// The band's lower envelope `max(0, F̂(x) − ε)`: with probability
    /// `≥ C`, the true CDF is at least this everywhere.
    pub fn lower_envelope(&self, x: f64) -> f64 {
        (self.empirical_cdf(x) - self.epsilon).max(0.0)
    }

    /// The band's upper envelope `min(1, F̂(x) + ε)`: with probability
    /// `≥ C`, the true CDF is at most this everywhere.
    pub fn upper_envelope(&self, x: f64) -> f64 {
        (self.empirical_cdf(x) + self.epsilon).min(1.0)
    }

    /// The order statistic of rank `⌈n c⌉` for `c ∈ (0, 1]` — the
    /// partition point where the empirical CDF first reaches `c`.
    fn order_stat(&self, c: f64) -> f64 {
        let n = self.sorted.len();
        let rank = ((c * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[rank - 1]
    }

    /// The simultaneous confidence interval for the `q`-quantile, read
    /// off the band: the lower endpoint is where the upper envelope
    /// first reaches `q`, the upper endpoint where the lower envelope
    /// does. Because the whole band holds at once with probability
    /// `≥ C`, *every* interval this returns covers its true quantile on
    /// the same event — no multiplicity correction needed across
    /// queries.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for `q` outside `(0, 1)`.
    pub fn quantile_ci(&self, q: f64) -> Result<QuantileCi> {
        check_unit_open("quantile", q)?;
        global().counter(obs_names::BAND_QUANTILE_QUERIES).incr();
        let eps = self.epsilon;
        // inf{x : F̂(x) + ε ≥ q}: unbounded below once q ≤ ε (the
        // envelope already clears q left of every sample).
        let lower = (q > eps).then(|| self.order_stat(q - eps));
        // inf{x : F̂(x) − ε ≥ q}: unbounded above once q + ε > 1 (the
        // lower envelope never reaches q inside the sample range).
        let upper = (q + eps <= 1.0).then(|| self.order_stat(q + eps));
        Ok(QuantileCi { q, lower, upper })
    }

    /// `∫_a^b Q̂(v) dv` over the empirical quantile function — the step
    /// function taking the `i`-th order statistic on `(i/n, (i+1)/n]`.
    fn quantile_integral(&self, a: f64, b: f64) -> f64 {
        let n = self.sorted.len();
        let nf = n as f64;
        let a = a.clamp(0.0, 1.0);
        let b = b.clamp(0.0, 1.0);
        if b <= a {
            return 0.0;
        }
        let first = ((a * nf).floor() as usize).min(n - 1);
        let last = ((b * nf).ceil() as usize).clamp(first + 1, n);
        let mut total = 0.0;
        for i in first..last {
            let lo = (i as f64 / nf).max(a);
            let hi = ((i + 1) as f64 / nf).min(b);
            if hi > lo {
                total += self.sorted[i] * (hi - lo);
            }
        }
        total
    }

    /// CVaR bounds at level `α` for both tails, by integrating the band
    /// envelopes over the sorted samples.
    ///
    /// The quantile function is bracketed by the empirical quantile
    /// function evaluated at ranks shifted by `±ε`; ranks pushed outside
    /// `(0, 1]` are clamped to the observed extremes, so the bounds are
    /// exact under a bounded-support assumption anchored at the sample
    /// min/max (see the module docs). Both tails average a `1 − α`
    /// mass: the upper tail is the classical expected shortfall of the
    /// highest outcomes, the lower tail its mirror over the lowest.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for `α` outside `(0, 1)`.
    pub fn cvar_ci(&self, alpha: f64) -> Result<CvarCi> {
        check_unit_open("cvar_alpha", alpha)?;
        global().counter(obs_names::BAND_CVAR_QUERIES).incr();
        // A vacuous band (ε ≥ 1) degenerates cleanly to [min, max]
        // bounds under the same clamped-rank arithmetic.
        let e = self.epsilon.min(1.0);
        let (lo_clamp, hi_clamp) = (self.min(), self.max());
        let tail = 1.0 - alpha;

        // Upper tail: (1/(1−α)) ∫_α^1 Q(u) du with Q bracketed by
        // Q̂(u − ε) (below) and Q̂(u + ε) (above), clamp mass at the ends.
        let upper_tail = TailBounds {
            lower: (lo_clamp * (e - alpha).max(0.0)
                + self.quantile_integral((alpha - e).max(0.0), 1.0 - e))
                / tail,
            upper: (self.quantile_integral((alpha + e).min(1.0), 1.0)
                + hi_clamp * ((1.0 + e) - (alpha + e).max(1.0)))
                / tail,
        };
        // Lower tail: (1/(1−α)) ∫_0^{1−α} Q(u) du, same bracketing.
        let lower_tail = TailBounds {
            lower: (lo_clamp * e.min(tail) + self.quantile_integral(0.0, (tail - e).max(0.0)))
                / tail,
            upper: (self.quantile_integral(e, (tail + e).min(1.0))
                + hi_clamp * (e - alpha).max(0.0))
                / tail,
        };
        Ok(CvarCi {
            alpha,
            upper_tail,
            lower_tail,
        })
    }
}

/// The serializable result of one band construction: the band's
/// parameters plus the quantile CIs and CVaR bounds that were requested
/// from it — the payload of `ModeSpec::Band` server jobs and
/// `spa analyze --band`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandReport {
    /// The simultaneous confidence level `C` of the band.
    pub confidence: f64,
    /// The DKW half-width `ε = sqrt(ln(2/(1−C)) / (2n))` at the
    /// *collected* sample count — a shortfall widens the band honestly
    /// instead of failing the job.
    pub epsilon: f64,
    /// Samples the band was built over.
    pub samples: u64,
    /// Executions requested (equals [`samples`](Self::samples) on a
    /// clean collection).
    pub requested: u64,
    /// Smallest sample (the lower clamp of the CVaR envelopes).
    pub min: f64,
    /// Largest sample (the upper clamp of the CVaR envelopes).
    pub max: f64,
    /// One simultaneous CI per requested quantile, in canonical
    /// (ascending, deduplicated) order.
    pub quantiles: Vec<QuantileCi>,
    /// CVaR bounds at the requested level, if one was requested.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub cvar: Option<CvarCi>,
    /// Per-kind counts of failed sampler attempts (all-zero away from
    /// the fault-tolerant collection path).
    pub failures: FailureCounts,
}

impl BandReport {
    /// Builds a report from a fault-tolerant collection pass: the band
    /// is constructed over whatever samples arrived, and the requested
    /// quantile list is canonicalized (validated, sorted ascending,
    /// exact-duplicates removed) so respelled requests produce
    /// byte-identical reports.
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptyData`] when the batch collected nothing,
    /// [`CoreError::InvalidParameter`] for NaN samples or any quantile
    /// or `cvar_alpha` outside `(0, 1)`, as the underlying
    /// constructions.
    pub fn from_batch(
        batch: &SampleBatch,
        confidence: f64,
        quantiles: &[f64],
        cvar_alpha: Option<f64>,
    ) -> Result<Self> {
        let qs = canonical_quantiles(quantiles)?;
        if let Some(a) = cvar_alpha {
            check_unit_open("cvar_alpha", a)?;
        }
        let index = SortedSamples::new(&batch.samples)?;
        let band = CdfBand::dkw(&index, confidence)?;
        let quantiles = qs
            .iter()
            .map(|&q| band.quantile_ci(q))
            .collect::<Result<Vec<_>>>()?;
        let cvar = cvar_alpha.map(|a| band.cvar_ci(a)).transpose()?;
        Ok(Self {
            confidence,
            epsilon: band.epsilon(),
            samples: band.len(),
            requested: batch.requested,
            min: band.min(),
            max: band.max(),
            quantiles,
            cvar,
            failures: batch.failures,
        })
    }

    /// Builds a report from a clean sample set (no collection
    /// failures).
    ///
    /// # Errors
    ///
    /// As [`from_batch`](Self::from_batch).
    pub fn from_samples(
        samples: &[f64],
        confidence: f64,
        quantiles: &[f64],
        cvar_alpha: Option<f64>,
    ) -> Result<Self> {
        let batch = SampleBatch {
            samples: samples.to_vec(),
            failures: FailureCounts::default(),
            requested: samples.len() as u64,
        };
        Self::from_batch(&batch, confidence, quantiles, cvar_alpha)
    }
}

/// Validates and canonicalizes a quantile list: every entry strictly
/// inside `(0, 1)`, sorted ascending, exact duplicates removed. The
/// same normal form the server's canonical cache key uses, so respelled
/// lists share one cache slot *and* one report rendering.
///
/// # Errors
///
/// [`CoreError::InvalidParameter`] for any entry outside `(0, 1)`.
pub fn canonical_quantiles(quantiles: &[f64]) -> Result<Vec<f64>> {
    for &q in quantiles {
        check_unit_open("quantile", q)?;
    }
    let mut qs = quantiles.to_vec();
    qs.sort_by(|a, b| a.partial_cmp(b).expect("validated finite above"));
    qs.dedup();
    Ok(qs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ci::ci_exact;
    use crate::property::Direction;
    use crate::smc::SmcEngine;
    use proptest::prelude::*;

    fn band_of(samples: &[f64], c: f64) -> CdfBand {
        CdfBand::from_samples(samples, c).unwrap()
    }

    fn assert_close(got: f64, want: f64) {
        assert!((got - want).abs() < 1e-9, "expected {want}, got {got}");
    }

    fn assert_tail_close(tail: TailBounds, lower: f64, upper: f64) {
        assert_close(tail.lower, lower);
        assert_close(tail.upper, upper);
    }

    #[test]
    fn epsilon_is_the_exact_dkw_constant() {
        // C = 0.9, n = 100: ε = sqrt(ln 20 / 200).
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        let band = band_of(&xs, 0.9);
        let want = (20.0_f64.ln() / 200.0).sqrt();
        assert!((band.epsilon() - want).abs() < 1e-15, "{}", band.epsilon());
        assert_eq!(band.confidence(), 0.9);
        assert_eq!(band.len(), 100);
        assert!(!band.is_empty());
        // More samples tighten the band; more confidence widens it.
        let more: Vec<f64> = (1..=400).map(f64::from).collect();
        assert!(band_of(&more, 0.9).epsilon() < band.epsilon());
        assert!(band_of(&xs, 0.99).epsilon() > band.epsilon());
    }

    #[test]
    fn typed_errors_on_bad_input() {
        assert!(matches!(
            CdfBand::from_samples(&[], 0.9),
            Err(CoreError::EmptyData)
        ));
        assert!(matches!(
            CdfBand::from_samples(&[1.0, f64::NAN], 0.9),
            Err(CoreError::InvalidParameter {
                name: "samples",
                ..
            })
        ));
        for c in [0.0, 1.0, -0.1, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                CdfBand::from_samples(&[1.0, 2.0], c),
                Err(CoreError::InvalidParameter {
                    name: "confidence",
                    ..
                })
            ));
        }
        let band = band_of(&[1.0, 2.0, 3.0], 0.9);
        for q in [0.0, 1.0, -1.0, f64::NAN] {
            assert!(matches!(
                band.quantile_ci(q),
                Err(CoreError::InvalidParameter {
                    name: "quantile",
                    ..
                })
            ));
            assert!(matches!(
                band.cvar_ci(q),
                Err(CoreError::InvalidParameter {
                    name: "cvar_alpha",
                    ..
                })
            ));
        }
    }

    #[test]
    fn single_sample_band_is_vacuous_but_typed() {
        // n = 1 at C = 0.9: ε = sqrt(ln 20 / 2) ≈ 1.22 > 1 — the band
        // cannot bound any quantile, and says so with None endpoints
        // rather than fabricating finite ones.
        let band = band_of(&[5.0], 0.9);
        assert!(band.epsilon() > 1.0);
        let ci = band.quantile_ci(0.5).unwrap();
        assert_eq!((ci.lower, ci.upper), (None, None));
        assert!(ci.covers(-1e300) && ci.covers(1e300));
        assert!(ci.width().is_infinite());
        // CVaR bounds degenerate cleanly to the sample point.
        let cvar = band.cvar_ci(0.9).unwrap();
        assert_tail_close(cvar.upper_tail, 5.0, 5.0);
        assert_tail_close(cvar.lower_tail, 5.0, 5.0);
    }

    #[test]
    fn all_equal_samples_collapse_bounded_endpoints() {
        let band = band_of(&[4.0; 200], 0.9);
        let ci = band.quantile_ci(0.5).unwrap();
        assert_eq!(ci.lower, Some(4.0));
        assert_eq!(ci.upper, Some(4.0));
        assert_eq!(ci.width(), 0.0);
        let cvar = band.cvar_ci(0.8).unwrap();
        assert_tail_close(cvar.upper_tail, 4.0, 4.0);
        assert_tail_close(cvar.lower_tail, 4.0, 4.0);
    }

    #[test]
    fn count_satisfying_tie_behavior_is_pinned_at_duplicated_thresholds() {
        // The band read-off leans on SortedSamples' tie semantics:
        // AtMost counts x <= t inclusively, AtLeast counts x >= t
        // inclusively, and the empirical CDF here must agree with the
        // AtMost count at every duplicated value. Regression-pin all
        // three at thresholds sitting exactly on runs of duplicates.
        let xs = [2.0, 2.0, 2.0, 5.0, 7.0, 7.0];
        let idx = SortedSamples::new(&xs).unwrap();
        assert_eq!(idx.count_satisfying(Direction::AtMost, 2.0), 3);
        assert_eq!(idx.count_satisfying(Direction::AtLeast, 2.0), 6);
        assert_eq!(idx.count_satisfying(Direction::AtMost, 5.0), 4);
        assert_eq!(idx.count_satisfying(Direction::AtLeast, 5.0), 3);
        assert_eq!(idx.count_satisfying(Direction::AtMost, 7.0), 6);
        assert_eq!(idx.count_satisfying(Direction::AtLeast, 7.0), 2);
        assert_eq!(idx.count_satisfying(Direction::AtMost, 1.999), 0);
        assert_eq!(idx.count_satisfying(Direction::AtMost, f64::NAN), 0);
        let band = CdfBand::dkw(&idx, 0.9).unwrap();
        for t in [1.0, 2.0, 3.0, 5.0, 6.9, 7.0, 8.0] {
            assert_eq!(
                band.empirical_cdf(t),
                idx.count_satisfying(Direction::AtMost, t) as f64 / 6.0,
                "empirical CDF diverged from the AtMost count at {t}"
            );
        }
        // Quantile endpoints land on the duplicated values themselves.
        let wide = band_of(&[2.0, 2.0, 2.0, 2.0, 7.0, 7.0, 7.0, 7.0].repeat(25), 0.9);
        let ci = wide.quantile_ci(0.5).unwrap();
        assert_eq!(ci.lower, Some(2.0));
        assert_eq!(ci.upper, Some(7.0));
    }

    #[test]
    fn report_canonicalizes_quantiles_and_serializes() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        let a = BandReport::from_samples(&xs, 0.9, &[0.9, 0.5, 0.5, 0.25], Some(0.95)).unwrap();
        let b = BandReport::from_samples(&xs, 0.9, &[0.25, 0.50, 0.90], Some(0.95)).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "respelled quantile lists must render identically"
        );
        assert_eq!(
            a.quantiles.iter().map(|c| c.q).collect::<Vec<_>>(),
            vec![0.25, 0.5, 0.9]
        );
        assert_eq!(a.samples, 100);
        assert_eq!(a.requested, 100);
        assert!(a.failures.is_clean());
        assert!(a.cvar.is_some());
        // Unbounded endpoints survive a JSON round trip as null.
        let tiny = BandReport::from_samples(&[1.0, 2.0], 0.9, &[0.5], None).unwrap();
        let json = serde_json::to_string(&tiny).unwrap();
        let back: BandReport = serde_json::from_str(&json).unwrap();
        assert_eq!(tiny, back);
        assert_eq!(back.quantiles[0].lower, None);
        // No cvar requested → the field stays off the wire.
        assert!(!json.contains("cvar"), "{json}");
    }

    #[test]
    fn report_rejects_bad_requests() {
        let xs: Vec<f64> = (1..=30).map(f64::from).collect();
        assert!(matches!(
            BandReport::from_samples(&xs, 0.9, &[0.5, 1.5], None),
            Err(CoreError::InvalidParameter {
                name: "quantile",
                ..
            })
        ));
        assert!(matches!(
            BandReport::from_samples(&xs, 0.9, &[0.5], Some(0.0)),
            Err(CoreError::InvalidParameter {
                name: "cvar_alpha",
                ..
            })
        ));
    }

    #[test]
    fn cvar_bounds_bracket_the_empirical_cvar() {
        // The empirical CVaR (ε = 0 analogue) must sit inside the
        // bounds, and the bounds must straddle the target quantile
        // sensibly: upper tail above the empirical mean, lower below.
        let xs: Vec<f64> = (1..=1000).map(f64::from).collect();
        let band = band_of(&xs, 0.9);
        let cvar = band.cvar_ci(0.9).unwrap();
        // Empirical upper CVaR of uniform 1..=1000 at α = 0.9: mean of
        // the top 100 values = 950.5.
        assert!(cvar.upper_tail.lower <= 950.5 && 950.5 <= cvar.upper_tail.upper);
        // Empirical lower CVaR: mean of the bottom 100 values = 50.5.
        assert!(cvar.lower_tail.lower <= 50.5 && 50.5 <= cvar.lower_tail.upper);
        let mean = 500.5;
        assert!(cvar.upper_tail.lower > mean);
        assert!(cvar.lower_tail.upper < mean);
    }

    #[test]
    fn band_quantile_ci_is_consistent_with_ci_exact() {
        // Spot-check the differential claim the workspace suite runs at
        // scale: same samples, same C, quantile q vs proportion F = q.
        let xs: Vec<f64> = (0..80)
            .map(|i| (i as f64 * 0.37).sin() * 10.0 + 20.0)
            .collect();
        for q in [0.3, 0.5, 0.8] {
            let band = band_of(&xs, 0.9);
            let dkw = band.quantile_ci(q).unwrap();
            let engine = SmcEngine::new(0.9, q).unwrap();
            let spa = ci_exact(&engine, &xs, Direction::AtMost).unwrap();
            let dkw_lo = dkw.lower.unwrap_or(f64::NEG_INFINITY);
            let dkw_hi = dkw.upper.unwrap_or(f64::INFINITY);
            assert!(
                dkw_lo <= spa.upper() && spa.lower() <= dkw_hi,
                "q={q}: DKW [{dkw_lo}, {dkw_hi}] disjoint from SPA [{}, {}]",
                spa.lower(),
                spa.upper()
            );
        }
    }

    proptest! {
        #[test]
        fn envelopes_are_monotone_and_bracket_the_edf(
            xs in proptest::collection::vec(-100.0_f64..100.0, 1..120),
            points in proptest::collection::vec(-120.0_f64..120.0, 1..40),
            c in 0.5_f64..0.999,
        ) {
            let band = CdfBand::from_samples(&xs, c).unwrap();
            let mut points = points;
            points.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut prev = (0.0_f64, 0.0_f64, 0.0_f64);
            for (i, &x) in points.iter().enumerate() {
                let lo = band.lower_envelope(x);
                let edf = band.empirical_cdf(x);
                let hi = band.upper_envelope(x);
                prop_assert!((0.0..=1.0).contains(&lo));
                prop_assert!((0.0..=1.0).contains(&hi));
                prop_assert!(lo <= edf && edf <= hi, "envelope order broke at {x}");
                if i > 0 {
                    prop_assert!(lo >= prev.0, "lower envelope decreased at {x}");
                    prop_assert!(edf >= prev.1, "EDF decreased at {x}");
                    prop_assert!(hi >= prev.2, "upper envelope decreased at {x}");
                }
                prev = (lo, edf, hi);
            }
        }

        #[test]
        fn quantile_endpoints_are_monotone_in_q(
            xs in proptest::collection::vec(-50.0_f64..50.0, 2..150),
            c in 0.5_f64..0.99,
        ) {
            let band = CdfBand::from_samples(&xs, c).unwrap();
            let qs: Vec<f64> = (1..20).map(|i| i as f64 / 20.0).collect();
            let cis: Vec<QuantileCi> =
                qs.iter().map(|&q| band.quantile_ci(q).unwrap()).collect();
            for pair in cis.windows(2) {
                let (a, b) = (&pair[0], &pair[1]);
                let a_lo = a.lower.unwrap_or(f64::NEG_INFINITY);
                let b_lo = b.lower.unwrap_or(f64::NEG_INFINITY);
                let a_hi = a.upper.unwrap_or(f64::INFINITY);
                let b_hi = b.upper.unwrap_or(f64::INFINITY);
                prop_assert!(b_lo >= a_lo, "lower endpoint fell from q={} to q={}", a.q, b.q);
                prop_assert!(b_hi >= a_hi, "upper endpoint fell from q={} to q={}", a.q, b.q);
                prop_assert!(a_lo <= a_hi, "inverted interval at q={}", a.q);
            }
        }

        #[test]
        fn quantile_ci_contains_the_sample_quantile(
            xs in proptest::collection::vec(0.0_f64..1e3, 5..100),
            qi in 1_usize..10,
        ) {
            // The band is centred on the empirical CDF, so the sample
            // q-quantile (the ⌈nq⌉-th order statistic) always lies
            // inside its own band interval.
            let q = qi as f64 / 10.0;
            let band = CdfBand::from_samples(&xs, 0.9).unwrap();
            let ci = band.quantile_ci(q).unwrap();
            let mut sorted = xs.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            prop_assert!(ci.covers(sorted[rank - 1]));
        }

        #[test]
        fn cvar_bounds_are_ordered_and_within_support(
            xs in proptest::collection::vec(-1e3_f64..1e3, 2..120),
            ai in 1_usize..20,
        ) {
            let alpha = ai as f64 / 20.0;
            let band = CdfBand::from_samples(&xs, 0.9).unwrap();
            let cvar = band.cvar_ci(alpha).unwrap();
            for tail in [cvar.upper_tail, cvar.lower_tail] {
                prop_assert!(tail.lower <= tail.upper + 1e-9);
                prop_assert!(tail.lower >= band.min() - 1e-9);
                prop_assert!(tail.upper <= band.max() + 1e-9);
            }
            // The upper tail averages larger outcomes than the lower.
            prop_assert!(cvar.upper_tail.upper >= cvar.lower_tail.lower - 1e-9);
        }
    }
}
