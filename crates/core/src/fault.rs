//! Fault-tolerant sampling: fallible samplers, retry policies, and the
//! bookkeeping SPA needs to stay statistically honest when executions
//! fail.
//!
//! The paper's guarantees (§4.2–4.3) assume every requested execution
//! returns a metric, but real sampling substrates — simulator farms,
//! bare-metal runs, or `spa-sim` under fault injection — crash, hang,
//! and emit garbage. This module supplies the pieces the
//! [`Spa`](crate::spa::Spa) driver composes into a fault-tolerant
//! pipeline:
//!
//! * [`SampleError`] — the three ways one execution can fail
//!   (crash, timeout, non-finite metric),
//! * [`FallibleSampler`] — a [`Sampler`](crate::spa::Sampler) that may
//!   report failure instead of panicking or returning NaN,
//! * [`RetryPolicy`] — bounded retries with deterministic per-attempt
//!   seed derivation ([`derive_retry_seed`]) so populations remain
//!   replicable from `(config, seed)`, plus optional exponential
//!   backoff with deterministic jitter for external samplers,
//! * [`FailureCounts`] — per-kind failure accounting carried through to
//!   [`SpaReport`](crate::spa::SpaReport),
//! * [`SampleBatch`] — the outcome of a fault-tolerant collection pass.
//!
//! The statistically principled part — recomputing the *achieved*
//! confidence when fewer samples arrive than Eq. 8 requires — lives in
//! [`min_samples::achievable_confidence`](crate::min_samples::achievable_confidence)
//! and is applied by [`Spa::run_fallible`](crate::spa::Spa::run_fallible).

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::spa::Sampler;

/// Why one sample execution failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleError {
    /// The sampler crashed: a dead worker process, a simulator error, or
    /// a panic caught by the driver's isolation layer.
    Crash {
        /// Human-readable description of the crash.
        message: String,
    },
    /// The execution exceeded its time budget (either reported by the
    /// sampler itself or detected by the driver's soft timeout).
    Timeout,
    /// The sampler returned a non-finite metric (NaN or ±∞); admitting
    /// it would poison every downstream statistic.
    InvalidMetric {
        /// The rejected value.
        value: f64,
    },
}

impl std::fmt::Display for SampleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SampleError::Crash { message } => write!(f, "sampler crashed: {message}"),
            SampleError::Timeout => write!(f, "sampler timed out"),
            SampleError::InvalidMetric { value } => {
                write!(f, "sampler returned non-finite metric {value}")
            }
        }
    }
}

impl std::error::Error for SampleError {}

/// A source of sample executions that can fail.
///
/// Like [`Sampler`](crate::spa::Sampler), implementations are typically
/// simulator adapters; unlike it, they report crashes, timeouts, and
/// garbage metrics as values instead of panicking. The SPA driver calls
/// implementations from multiple threads, hence `Sync`, and additionally
/// wraps every call in `catch_unwind`, so even a panicking
/// implementation cannot take the batch loop down.
pub trait FallibleSampler: Sync {
    /// Runs one execution identified by `seed` and returns the metric of
    /// interest, or how the execution failed.
    fn sample(&self, seed: u64) -> std::result::Result<f64, SampleError>;
}

impl<F> FallibleSampler for F
where
    F: Fn(u64) -> std::result::Result<f64, SampleError> + Sync,
{
    fn sample(&self, seed: u64) -> std::result::Result<f64, SampleError> {
        self(seed)
    }
}

/// Adapts an infallible [`Sampler`] into a [`FallibleSampler`].
///
/// The adapter never reports `Crash` or `Timeout` itself (the driver's
/// panic isolation and soft timeout still apply), but it does convert
/// non-finite return values into [`SampleError::InvalidMetric`].
#[derive(Debug, Clone, Copy)]
pub struct Reliable<S>(pub S);

impl<S: Sampler> FallibleSampler for Reliable<S> {
    fn sample(&self, seed: u64) -> std::result::Result<f64, SampleError> {
        // The adapter is the scalar pipeline in miniature: the sampler is
        // the observation source, IdentityEvaluator the evaluation stage.
        crate::pipeline::Evaluator::evaluate(
            &crate::pipeline::IdentityEvaluator,
            &self.0.sample(seed),
        )
    }
}

/// Deterministically derives the execution seed for retry `attempt` of
/// base seed `seed`.
///
/// Attempt 0 is the original seed, so a population collected without
/// failures is byte-identical to one collected through the infallible
/// path. Retries (`attempt ≥ 1`) mix `(seed, attempt)` through a
/// SplitMix64-style finalizer; the mixing is a bijection for each fixed
/// `attempt`, so distinct attempts of one seed can never collide with
/// each other, and the whole population stays replicable from
/// `(config, seed)` alone — no wall-clock or thread-schedule dependence.
///
/// # Examples
///
/// ```
/// use spa_core::fault::derive_retry_seed;
/// assert_eq!(derive_retry_seed(42, 0), 42);
/// assert_eq!(derive_retry_seed(42, 3), derive_retry_seed(42, 3));
/// assert_ne!(derive_retry_seed(42, 1), derive_retry_seed(42, 2));
/// ```
pub fn derive_retry_seed(seed: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        return seed;
    }
    let mut z = seed ^ (attempt as u64).wrapping_mul(0xA076_1D64_78BD_642F);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z
}

/// How the driver retries failed executions.
///
/// A policy bounds the attempts per seed, optionally spaces retries with
/// exponential backoff (for external samplers whose failures are often
/// transient load), and optionally imposes a soft per-execution timeout.
/// Backoff jitter is derived deterministically from `(seed, attempt)`,
/// never from wall-clock entropy, so two runs of the same configuration
/// sleep identically.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use spa_core::fault::RetryPolicy;
///
/// // In-process sampler: 3 attempts, no delay.
/// let quick = RetryPolicy::new(3);
/// assert_eq!(quick.max_attempts(), 3);
/// assert!(quick.backoff_delay(7, 2).is_zero());
///
/// // External sampler: backoff 10ms, 20ms, 40ms … capped at 1s.
/// let farm = RetryPolicy::new(5)
///     .with_backoff(Duration::from_millis(10), Duration::from_secs(1));
/// assert!(farm.backoff_delay(7, 1) >= Duration::from_millis(5));
/// assert!(farm.backoff_delay(7, 1) <= Duration::from_millis(10));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    max_attempts: u32,
    base_delay: Duration,
    max_delay: Duration,
    jitter: bool,
    timeout: Option<Duration>,
}

impl Default for RetryPolicy {
    /// Three attempts per seed, no backoff, no timeout.
    fn default() -> Self {
        Self::new(3)
    }
}

impl RetryPolicy {
    /// A policy allowing `max_attempts` total attempts per seed
    /// (clamped to at least 1).
    pub fn new(max_attempts: u32) -> Self {
        Self {
            max_attempts: max_attempts.max(1),
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter: false,
            timeout: None,
        }
    }

    /// A single attempt per seed: failures are final.
    pub fn no_retry() -> Self {
        Self::new(1)
    }

    /// Enables exponential backoff before each retry: the `k`-th retry
    /// waits `base · 2^(k−1)` capped at `max`, scaled by a deterministic
    /// jitter factor in `[0.5, 1.0]`.
    pub fn with_backoff(mut self, base: Duration, max: Duration) -> Self {
        self.base_delay = base;
        self.max_delay = max.max(base);
        self.jitter = true;
        self
    }

    /// Disables (or re-enables) the jitter factor of
    /// [`with_backoff`](Self::with_backoff).
    pub fn with_jitter(mut self, jitter: bool) -> Self {
        self.jitter = jitter;
        self
    }

    /// Imposes a soft per-execution time budget: an execution observed
    /// to exceed it counts as [`SampleError::Timeout`] and is retried.
    /// "Soft" because the driver cannot preempt an in-process sampler;
    /// it classifies the attempt after the fact and discards the value.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Total attempts allowed per seed (≥ 1).
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// Whether another attempt fits the budget after `attempts_made`
    /// attempts have already run. The same arithmetic as the retry
    /// loop, exposed for callers that track attempts externally (the
    /// server's job-requeue supervisor).
    ///
    /// ```
    /// use spa_core::fault::RetryPolicy;
    /// let policy = RetryPolicy::new(3);
    /// assert!(policy.allows_retry(1));
    /// assert!(policy.allows_retry(2));
    /// assert!(!policy.allows_retry(3));
    /// ```
    pub fn allows_retry(&self, attempts_made: u32) -> bool {
        attempts_made < self.max_attempts
    }

    /// The soft per-execution time budget, if any.
    pub fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    /// The delay to sleep before running `attempt` (1-based for
    /// retries; attempt 0 never waits). Deterministic in
    /// `(seed, attempt)`.
    pub fn backoff_delay(&self, seed: u64, attempt: u32) -> Duration {
        if attempt == 0 || self.base_delay.is_zero() {
            return Duration::ZERO;
        }
        let exp = (attempt - 1).min(32);
        let raw = self
            .base_delay
            .saturating_mul(1u32 << exp.min(31))
            .min(self.max_delay);
        if !self.jitter {
            return raw;
        }
        // Deterministic jitter in [0.5, 1.0], derived from the same
        // mixer as retry seeds (offset so it is independent of them).
        let h = derive_retry_seed(seed ^ 0x5EED_BACC_0FF5_E75, attempt);
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        raw.mul_f64(0.5 + 0.5 * unit)
    }
}

/// Per-kind failure accounting for one collection pass, reported in
/// [`SpaReport`](crate::spa::SpaReport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureCounts {
    /// Attempts that crashed (sampler error or caught panic).
    pub crashes: u64,
    /// Attempts that exceeded the time budget.
    pub timeouts: u64,
    /// Attempts that returned a non-finite metric.
    pub invalid_metrics: u64,
    /// Retry attempts issued (attempts beyond the first, per seed).
    pub retries: u64,
    /// Seeds abandoned after exhausting their retry budget.
    pub abandoned_seeds: u64,
}

impl FailureCounts {
    /// Total failed attempts across all kinds.
    pub fn failed_attempts(&self) -> u64 {
        self.crashes + self.timeouts + self.invalid_metrics
    }

    /// Whether the pass completed without a single failure.
    pub fn is_clean(&self) -> bool {
        self.failed_attempts() == 0
    }

    /// Records one failed attempt under its kind.
    pub fn record(&mut self, error: &SampleError) {
        match error {
            SampleError::Crash { .. } => self.crashes += 1,
            SampleError::Timeout => self.timeouts += 1,
            SampleError::InvalidMetric { .. } => self.invalid_metrics += 1,
        }
    }

    /// Accumulates another count set into this one.
    pub fn merge(&mut self, other: &FailureCounts) {
        self.crashes += other.crashes;
        self.timeouts += other.timeouts;
        self.invalid_metrics += other.invalid_metrics;
        self.retries += other.retries;
        self.abandoned_seeds += other.abandoned_seeds;
    }
}

impl std::fmt::Display for FailureCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "crash={} timeout={} invalid={} (retries={}, abandoned={})",
            self.crashes, self.timeouts, self.invalid_metrics, self.retries, self.abandoned_seeds
        )
    }
}

/// The outcome of one fault-tolerant collection pass
/// ([`Spa::collect_samples_fallible`](crate::spa::Spa::collect_samples_fallible)).
#[derive(Debug, Clone, PartialEq)]
pub struct SampleBatch {
    /// Successfully collected metric samples, in base-seed order. May be
    /// shorter than `requested` when retry budgets were exhausted.
    pub samples: Vec<f64>,
    /// Per-kind failure counts for the pass.
    pub failures: FailureCounts,
    /// How many executions were requested.
    pub requested: u64,
}

impl SampleBatch {
    /// Whether every requested execution produced a sample.
    pub fn is_complete(&self) -> bool {
        self.samples.len() as u64 == self.requested
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sample_error_display() {
        let e = SampleError::Crash {
            message: "segfault".into(),
        };
        assert!(e.to_string().contains("segfault"));
        assert!(SampleError::Timeout.to_string().contains("timed out"));
        let e = SampleError::InvalidMetric { value: f64::NAN };
        assert!(e.to_string().contains("NaN"));
    }

    #[test]
    fn reliable_adapter_flags_non_finite() {
        let good = Reliable(|s: u64| s as f64);
        assert_eq!(good.sample(3), Ok(3.0));
        let bad = Reliable(|_: u64| f64::NAN);
        assert!(matches!(
            bad.sample(0),
            Err(SampleError::InvalidMetric { .. })
        ));
        let inf = Reliable(|_: u64| f64::INFINITY);
        assert!(matches!(
            inf.sample(0),
            Err(SampleError::InvalidMetric { .. })
        ));
    }

    #[test]
    fn retry_policy_clamps_and_defaults() {
        assert_eq!(RetryPolicy::new(0).max_attempts(), 1);
        assert_eq!(RetryPolicy::default().max_attempts(), 3);
        assert_eq!(RetryPolicy::no_retry().max_attempts(), 1);
        assert_eq!(RetryPolicy::default().timeout(), None);
        let t = RetryPolicy::default().with_timeout(Duration::from_secs(2));
        assert_eq!(t.timeout(), Some(Duration::from_secs(2)));
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy::new(10)
            .with_backoff(Duration::from_millis(10), Duration::from_millis(100))
            .with_jitter(false);
        assert_eq!(p.backoff_delay(1, 0), Duration::ZERO);
        assert_eq!(p.backoff_delay(1, 1), Duration::from_millis(10));
        assert_eq!(p.backoff_delay(1, 2), Duration::from_millis(20));
        assert_eq!(p.backoff_delay(1, 3), Duration::from_millis(40));
        // Capped at max from attempt 5 on.
        assert_eq!(p.backoff_delay(1, 5), Duration::from_millis(100));
        assert_eq!(p.backoff_delay(1, 30), Duration::from_millis(100));
    }

    #[test]
    fn jittered_backoff_is_deterministic_and_bounded() {
        let p =
            RetryPolicy::new(5).with_backoff(Duration::from_millis(100), Duration::from_secs(1));
        let a = p.backoff_delay(42, 1);
        let b = p.backoff_delay(42, 1);
        assert_eq!(a, b);
        assert!(a >= Duration::from_millis(50) && a <= Duration::from_millis(100));
        // Different seeds draw different jitter (with these constants).
        let c = p.backoff_delay(43, 1);
        assert_ne!(a, c);
    }

    #[test]
    fn failure_counts_record_and_display() {
        let mut f = FailureCounts::default();
        assert!(f.is_clean());
        f.record(&SampleError::Crash {
            message: "x".into(),
        });
        f.record(&SampleError::Timeout);
        f.record(&SampleError::InvalidMetric { value: f64::NAN });
        f.retries = 2;
        f.abandoned_seeds = 1;
        assert_eq!(f.failed_attempts(), 3);
        assert!(!f.is_clean());
        let mut g = FailureCounts::default();
        g.merge(&f);
        assert_eq!(g, f);
        let s = f.to_string();
        assert!(s.contains("crash=1") && s.contains("abandoned=1"), "{s}");
    }

    proptest! {
        #[test]
        fn derive_seed_is_deterministic(seed in any::<u64>(), attempt in 0u32..64) {
            prop_assert_eq!(
                derive_retry_seed(seed, attempt),
                derive_retry_seed(seed, attempt)
            );
        }

        #[test]
        fn derive_seed_attempt_zero_is_identity(seed in any::<u64>()) {
            prop_assert_eq!(derive_retry_seed(seed, 0), seed);
        }

        #[test]
        fn derive_seed_attempts_never_collide(seed in any::<u64>(),
                                              a in 1u32..1000, b in 1u32..1000) {
            // The mixer is a bijection for fixed attempt and the attempt
            // pre-mix is injective, so this holds exactly, not just with
            // high probability.
            prop_assume!(a != b);
            prop_assert_ne!(derive_retry_seed(seed, a), derive_retry_seed(seed, b));
        }

        #[test]
        fn backoff_delay_deterministic(seed in any::<u64>(), attempt in 0u32..16) {
            let p = RetryPolicy::new(16)
                .with_backoff(Duration::from_millis(7), Duration::from_millis(500));
            prop_assert_eq!(p.backoff_delay(seed, attempt), p.backoff_delay(seed, attempt));
            prop_assert!(p.backoff_delay(seed, attempt) <= Duration::from_millis(500));
        }
    }
}
