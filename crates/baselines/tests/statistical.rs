//! Statistical validation of the baseline CI constructions on analytic
//! populations: each method's empirical coverage is measured against
//! its own guarantee (or its known failure, which is the point of the
//! paper's comparison).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

use spa_baselines::bootstrap::{bca_ci, percentile_ci};
use spa_baselines::rank::{rank_ci_exact, rank_ci_normal};
use spa_baselines::zscore::z_ci;

/// Roughly normal population via the central limit of uniforms.
fn normalish_population(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let s: f64 = (0..12).map(|_| rng.gen::<f64>()).sum();
            50.0 + 4.0 * (s - 6.0) // mean 50, sd ≈ 4
        })
        .collect()
}

fn trials<F>(pop: &[f64], truth: f64, n: usize, count: usize, seed: u64, mut build: F) -> (f64, f64)
where
    F: FnMut(&[f64], &mut StdRng) -> Option<(f64, f64)>,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..pop.len()).collect();
    let mut covered = 0usize;
    let mut produced = 0usize;
    for _ in 0..count {
        let (chosen, _) = idx.partial_shuffle(&mut rng, n);
        let sample: Vec<f64> = chosen.iter().map(|&i| pop[i]).collect();
        if let Some((lo, hi)) = build(&sample, &mut rng) {
            produced += 1;
            if truth >= lo && truth <= hi {
                covered += 1;
            }
        }
    }
    (
        covered as f64 / produced.max(1) as f64,
        produced as f64 / count as f64,
    )
}

#[test]
fn z_interval_covers_the_mean_of_gaussian_data() {
    let pop = normalish_population(2000, 1);
    let mean = pop.iter().sum::<f64>() / pop.len() as f64;
    let (coverage, produced) = trials(&pop, mean, 22, 400, 2, |s, _| {
        z_ci(s, 0.9).ok().map(|c| (c.lower(), c.upper()))
    });
    assert_eq!(produced, 1.0);
    // Z on genuinely Gaussian data for its own target (the mean) works.
    assert!(coverage >= 0.85, "z coverage {coverage}");
}

#[test]
fn percentile_bootstrap_median_coverage_is_approximate() {
    let pop = normalish_population(2000, 3);
    let mut sorted = pop.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let median = sorted[sorted.len() / 2];
    let (coverage, produced) = trials(&pop, median, 22, 300, 4, |s, rng| {
        percentile_ci(s, 0.5, 0.9, 400, rng)
            .ok()
            .map(|c| (c.lower(), c.upper()))
    });
    assert_eq!(produced, 1.0);
    // Asymptotic method at n = 22: allow generous slack, but it should
    // not be wildly off on clean symmetric data.
    assert!(coverage >= 0.75, "bootstrap coverage {coverage}");
}

#[test]
fn exact_rank_interval_honors_its_guarantee() {
    let pop = normalish_population(2000, 5);
    let mut sorted = pop.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let median = sorted[sorted.len() / 2];
    let (coverage, _) = trials(&pop, median, 22, 400, 6, |s, _| {
        rank_ci_exact(s, 0.5, 0.9)
            .ok()
            .map(|c| (c.lower(), c.upper()))
    });
    assert!(
        coverage >= 0.87,
        "exact rank coverage {coverage} below guarantee"
    );
}

#[test]
fn normal_rank_interval_is_less_reliable_off_median() {
    // The paper's §2.4 point: the normal approximation degrades away
    // from the median. At q = 0.95 with 22 samples, no pair of order
    // statistics can reach 90 % coverage (even [x_(1), x_(22)] only
    // attains 1 − 0.95^22 ≈ 0.68), so the exact construction refuses
    // while the approximation happily reports an interval with
    // structurally deficient coverage.
    let pop = normalish_population(2000, 7);
    let mut sorted = pop.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let q95 = sorted[(0.95 * sorted.len() as f64) as usize];

    assert!(rank_ci_exact(&pop[..22], 0.95, 0.9).is_err());

    let (coverage, produced) = trials(&pop, q95, 22, 400, 8, |s, _| {
        rank_ci_normal(s, 0.95, 0.9)
            .ok()
            .map(|c| (c.lower(), c.upper()))
    });
    assert_eq!(produced, 1.0);
    // It produces *something*, but below the nominal confidence —
    // which is exactly why the paper restricts it to the median.
    assert!(
        coverage < 0.9,
        "normal rank coverage {coverage} unexpectedly met the guarantee at q = 0.95"
    );
}

#[test]
fn bca_and_percentile_agree_on_clean_data() {
    let pop = normalish_population(200, 9);
    let sample = &pop[..30];
    let mut rng = StdRng::seed_from_u64(10);
    let p = percentile_ci(sample, 0.5, 0.9, 2000, &mut rng).unwrap();
    let mut rng = StdRng::seed_from_u64(10);
    let b = bca_ci(sample, 0.5, 0.9, 2000, &mut rng).unwrap();
    // On symmetric data the bias correction is small: intervals overlap
    // heavily.
    let overlap = p.upper().min(b.upper()) - p.lower().max(b.lower());
    assert!(
        overlap > 0.5 * p.width(),
        "percentile {p} and BCa {b} barely overlap"
    );
}
