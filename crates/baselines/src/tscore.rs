//! The Student-t confidence interval — the "done carefully" variant of
//! the paper's Z-score baseline.
//!
//! `x̄ ± t_{n−1, (1+C)/2} · s / √n` replaces the normal quantile with
//! the t quantile, correcting for the estimated standard deviation at
//! small `n`. It widens the interval (at n = 22 and C = 0.9, by ~4 %)
//! but keeps the Gaussian distributional assumption — so it inherits
//! every failure mode the paper demonstrates for Z on skewed data. The
//! bench harness uses it to show that the paper's criticism is of the
//! *assumption*, not of a sloppy quantile choice.

use crate::{BaselineError, Result};
use spa_core::ci::ConfidenceInterval;
use spa_stats::descriptive::{mean, sample_stddev};
use spa_stats::student_t::StudentT;

/// Student-t CI at level `confidence`.
///
/// # Errors
///
/// * [`BaselineError::EmptyData`] for fewer than two data points,
/// * [`BaselineError::InvalidParameter`] for `confidence ∉ (0, 1)` or
///   NaN data.
///
/// # Examples
///
/// ```
/// use spa_baselines::{tscore::t_ci, zscore::z_ci};
/// let data: Vec<f64> = (0..22).map(|i| 10.0 + (i % 5) as f64).collect();
/// let t = t_ci(&data, 0.9)?;
/// let z = z_ci(&data, 0.9)?;
/// assert!(t.width() > z.width()); // t corrects Z's small-sample optimism
/// # Ok::<(), spa_baselines::BaselineError>(())
/// ```
pub fn t_ci(data: &[f64], confidence: f64) -> Result<ConfidenceInterval> {
    if data.len() < 2 {
        return Err(BaselineError::EmptyData);
    }
    if data.iter().any(|x| x.is_nan()) {
        return Err(BaselineError::InvalidParameter {
            name: "data",
            value: f64::NAN,
            expected: "no NaN values",
        });
    }
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(BaselineError::InvalidParameter {
            name: "confidence",
            value: confidence,
            expected: "a value in (0, 1)",
        });
    }
    let m = mean(data);
    let s = sample_stddev(data);
    let t = StudentT::new((data.len() - 1) as f64)?.inverse_cdf(0.5 + confidence / 2.0)?;
    let half = t * s / (data.len() as f64).sqrt();
    Ok(ConfidenceInterval::new(m - half, m + half, confidence, 0.5))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zscore::z_ci;

    #[test]
    fn validates_inputs() {
        assert!(t_ci(&[], 0.9).is_err());
        assert!(t_ci(&[1.0], 0.9).is_err());
        assert!(t_ci(&[1.0, 2.0], 1.0).is_err());
        assert!(t_ci(&[1.0, f64::NAN], 0.9).is_err());
    }

    #[test]
    fn wider_than_z_and_converging() {
        let small: Vec<f64> = (0..5).map(|i| i as f64).collect();
        let big: Vec<f64> = (0..500).map(|i| (i % 11) as f64).collect();
        let ratio = |d: &[f64]| t_ci(d, 0.9).unwrap().width() / z_ci(d, 0.9).unwrap().width();
        let r_small = ratio(&small);
        let r_big = ratio(&big);
        assert!(r_small > 1.25, "t/z at n=5: {r_small}");
        assert!(r_big > 1.0 && r_big < 1.01, "t/z at n=500: {r_big}");
    }

    #[test]
    fn centered_on_the_mean() {
        let data = [2.0, 4.0, 6.0, 8.0];
        let ci = t_ci(&data, 0.95).unwrap();
        assert!(((ci.lower() + ci.upper()) / 2.0 - 5.0).abs() < 1e-12);
        assert!(ci.contains(5.0));
    }

    #[test]
    fn textbook_value() {
        // n = 22, C = 0.9 → t_{21, 0.95} ≈ 1.7207 (vs z = 1.6449).
        let data: Vec<f64> = (0..22).map(|i| i as f64).collect();
        let t = t_ci(&data, 0.9).unwrap();
        let z = z_ci(&data, 0.9).unwrap();
        let ratio = t.width() / z.width();
        assert!((ratio - 1.7207 / 1.6449).abs() < 1e-3, "{ratio}");
    }
}
