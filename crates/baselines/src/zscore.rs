//! The Z-score (Gaussian-assumption) confidence interval.
//!
//! `x̄ ± z_{(1+C)/2} · s / √n` — "technically only used for Gaussian
//! distributed data" (§2.4) yet ubiquitous in the literature, which is
//! why the paper includes it. Note it is an interval for the *mean*;
//! when the population is skewed it covers the median/quantile ground
//! truth only by accident of its generous width (the 2.3–4.3× wider
//! intervals of Fig. 7).

use crate::{BaselineError, Result};
use spa_core::ci::ConfidenceInterval;
use spa_stats::descriptive::{mean, sample_stddev};
use spa_stats::normal::Normal;

/// Z-score CI at level `confidence`.
///
/// # Errors
///
/// * [`BaselineError::EmptyData`] for fewer than two data points (the
///   sample standard deviation is undefined),
/// * [`BaselineError::InvalidParameter`] for `confidence ∉ (0, 1)` or
///   NaN data.
///
/// # Examples
///
/// ```
/// use spa_baselines::zscore::z_ci;
/// let data: Vec<f64> = (0..22).map(|i| 10.0 + (i % 5) as f64).collect();
/// let ci = z_ci(&data, 0.9)?;
/// assert!(ci.contains(12.0)); // mean ≈ 11.95
/// # Ok::<(), spa_baselines::BaselineError>(())
/// ```
pub fn z_ci(data: &[f64], confidence: f64) -> Result<ConfidenceInterval> {
    if data.len() < 2 {
        return Err(BaselineError::EmptyData);
    }
    if data.iter().any(|x| x.is_nan()) {
        return Err(BaselineError::InvalidParameter {
            name: "data",
            value: f64::NAN,
            expected: "no NaN values",
        });
    }
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(BaselineError::InvalidParameter {
            name: "confidence",
            value: confidence,
            expected: "a value in (0, 1)",
        });
    }
    let m = mean(data);
    let s = sample_stddev(data);
    let z = Normal::standard()
        .inverse_cdf(0.5 + confidence / 2.0)
        .expect("confidence validated");
    let half = z * s / (data.len() as f64).sqrt();
    Ok(ConfidenceInterval::new(m - half, m + half, confidence, 0.5))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_inputs() {
        assert!(z_ci(&[], 0.9).is_err());
        assert!(z_ci(&[1.0], 0.9).is_err());
        assert!(z_ci(&[1.0, 2.0], 0.0).is_err());
        assert!(z_ci(&[1.0, 2.0], 1.0).is_err());
        assert!(z_ci(&[1.0, f64::NAN], 0.9).is_err());
    }

    #[test]
    fn symmetric_about_the_mean() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ci = z_ci(&data, 0.9).unwrap();
        assert!(((ci.lower() + ci.upper()) / 2.0 - 3.0).abs() < 1e-12);
        assert!(ci.contains(3.0));
    }

    #[test]
    fn known_width() {
        // s = sqrt(2.5), n = 5, z_0.95 = 1.6449: half-width ≈ 1.1629.
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ci = z_ci(&data, 0.9).unwrap();
        let expected_half = 1.6448536269514722 * (2.5f64).sqrt() / (5.0f64).sqrt();
        assert!((ci.width() / 2.0 - expected_half).abs() < 1e-6);
    }

    #[test]
    fn higher_confidence_widens() {
        let data: Vec<f64> = (0..30).map(|i| (i % 7) as f64).collect();
        let c90 = z_ci(&data, 0.90).unwrap();
        let c99 = z_ci(&data, 0.99).unwrap();
        assert!(c99.width() > c90.width());
    }

    #[test]
    fn zero_variance_collapses_to_point() {
        let data = [4.0, 4.0, 4.0];
        let ci = z_ci(&data, 0.9).unwrap();
        assert_eq!(ci.lower(), 4.0);
        assert_eq!(ci.upper(), 4.0);
        assert_eq!(ci.width(), 0.0);
    }
}
