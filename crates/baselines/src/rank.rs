//! Nonparametric rank (order-statistic) confidence intervals for
//! quantiles.
//!
//! A rank interval picks two order statistics `x₍l₎ ≤ x₍u₎` such that the
//! population `q`-quantile lies between them with the requested
//! confidence: `P(l ≤ B < u) ≥ C` where `B ~ Binom(n, q)` counts samples
//! below the quantile. The paper (§2.4) notes that prior work compares
//! the rank statistics through a *normal approximation* of that binomial
//! — accurate only asymptotically, which is precisely why it misbehaves
//! at the paper's 22-sample sizes. Both forms are provided:
//! [`rank_ci_normal`] (the baseline the paper evaluates) and
//! [`rank_ci_exact`] (binomial, no approximation).

use crate::{BaselineError, Result};
use spa_core::ci::ConfidenceInterval;
use spa_stats::binomial::Binomial;
use spa_stats::normal::Normal;

fn validate(data: &[f64], q: f64, confidence: f64) -> Result<()> {
    if data.is_empty() {
        return Err(BaselineError::EmptyData);
    }
    if data.iter().any(|x| x.is_nan()) {
        return Err(BaselineError::InvalidParameter {
            name: "data",
            value: f64::NAN,
            expected: "no NaN values",
        });
    }
    if !(q > 0.0 && q < 1.0) {
        return Err(BaselineError::InvalidParameter {
            name: "q",
            value: q,
            expected: "a value in (0, 1)",
        });
    }
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(BaselineError::InvalidParameter {
            name: "confidence",
            value: confidence,
            expected: "a value in (0, 1)",
        });
    }
    Ok(())
}

fn sorted(data: &[f64]) -> Vec<f64> {
    let mut s = data.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("NaN rejected in validate"));
    s
}

/// Rank CI for the `q`-quantile using the normal approximation to the
/// binomial (the form used by the prior work the paper compares
/// against).
///
/// Ranks are `l = ⌊nq − z·√(nq(1−q))⌋` and `u = ⌈nq + z·√(nq(1−q))⌉ + 1`
/// (1-based), clamped to the sample.
///
/// # Errors
///
/// [`BaselineError::EmptyData`] / [`BaselineError::InvalidParameter`] as
/// usual.
///
/// # Examples
///
/// ```
/// use spa_baselines::rank::rank_ci_normal;
/// let data: Vec<f64> = (1..=22).map(f64::from).collect();
/// let ci = rank_ci_normal(&data, 0.5, 0.9)?;
/// assert!(ci.contains(11.5));
/// # Ok::<(), spa_baselines::BaselineError>(())
/// ```
pub fn rank_ci_normal(data: &[f64], q: f64, confidence: f64) -> Result<ConfidenceInterval> {
    validate(data, q, confidence)?;
    let s = sorted(data);
    let n = s.len() as f64;
    let z = Normal::standard()
        .inverse_cdf(0.5 + confidence / 2.0)
        .expect("confidence validated");
    let center = n * q;
    let half = z * (n * q * (1.0 - q)).sqrt();
    // 1-based ranks, clamped into the sample.
    let l = (center - half).floor().max(1.0) as usize;
    let u = ((center + half).ceil() as usize + 1).min(s.len());
    let l = l.min(u);
    Ok(ConfidenceInterval::new(s[l - 1], s[u - 1], confidence, q))
}

/// Exact rank CI for the `q`-quantile: the narrowest pair of order
/// statistics whose binomial coverage reaches `confidence`.
///
/// # Errors
///
/// As [`rank_ci_normal`]; additionally fails with
/// [`BaselineError::EmptyData`] if no pair of order statistics achieves
/// the requested coverage (too few samples for the quantile).
pub fn rank_ci_exact(data: &[f64], q: f64, confidence: f64) -> Result<ConfidenceInterval> {
    validate(data, q, confidence)?;
    let s = sorted(data);
    let n = s.len();
    let binom = Binomial::new(n as u64, q)?;
    // Precompute the CDF once.
    let cdf: Vec<f64> = (0..=n as u64).map(|k| binom.cdf(k)).collect();
    // Coverage of [x_(l), x_(u)] (1-based) is P(l ≤ B ≤ u − 1)
    //   = cdf[u − 1] − cdf[l − 1] (with cdf[-1] = 0).
    let coverage = |l: usize, u: usize| -> f64 {
        let hi = cdf[u - 1];
        let lo = if l >= 2 { cdf[l - 2] } else { 0.0 };
        hi - lo
    };
    let mut best: Option<(usize, usize)> = None;
    for l in 1..=n {
        for u in l..=n {
            if coverage(l, u) >= confidence {
                let better = match best {
                    None => true,
                    Some((bl, bu)) => (u - l) < (bu - bl),
                };
                if better {
                    best = Some((l, u));
                }
                break; // wider u only loosens; move to next l
            }
        }
    }
    let Some((l, u)) = best else {
        return Err(BaselineError::EmptyData);
    };
    Ok(ConfidenceInterval::new(s[l - 1], s[u - 1], confidence, q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn validates_inputs() {
        assert!(rank_ci_normal(&[], 0.5, 0.9).is_err());
        assert!(rank_ci_normal(&[1.0], 0.0, 0.9).is_err());
        assert!(rank_ci_normal(&[1.0], 0.5, 1.0).is_err());
        assert!(rank_ci_normal(&[f64::NAN], 0.5, 0.9).is_err());
        assert!(rank_ci_exact(&[1.0, 2.0], 1.5, 0.9).is_err());
    }

    #[test]
    fn median_interval_brackets_median() {
        let data: Vec<f64> = (1..=22).map(f64::from).collect();
        let n = rank_ci_normal(&data, 0.5, 0.9).unwrap();
        assert!(n.contains(11.5), "{n}");
        let e = rank_ci_exact(&data, 0.5, 0.9).unwrap();
        assert!(e.contains(11.5), "{e}");
    }

    #[test]
    fn exact_interval_has_requested_coverage() {
        // Verify the chosen order statistics really cover with binomial
        // probability ≥ C.
        let data: Vec<f64> = (1..=22).map(f64::from).collect();
        let ci = rank_ci_exact(&data, 0.5, 0.9).unwrap();
        let l = data.iter().position(|&x| x == ci.lower()).unwrap() + 1;
        let u = data.iter().position(|&x| x == ci.upper()).unwrap() + 1;
        let binom = Binomial::new(22, 0.5).unwrap();
        let cover = binom.cdf(u as u64 - 1) - if l >= 2 { binom.cdf(l as u64 - 2) } else { 0.0 };
        assert!(cover >= 0.9, "coverage {cover}");
    }

    #[test]
    fn upper_quantile_needs_enough_samples() {
        // For q = 0.9 and only 5 samples, even [x_(1), x_(5)] covers with
        // probability 1 − 0.9^5 ≈ 0.41 < 0.9: exact construction fails.
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!(rank_ci_exact(&data, 0.9, 0.9).is_err());
        // The normal approximation happily reports *something* — the
        // paper's accuracy complaint in a nutshell.
        assert!(rank_ci_normal(&data, 0.9, 0.9).is_ok());
    }

    #[test]
    fn duplicates_are_tolerated() {
        let data = vec![2.0; 11]
            .into_iter()
            .chain(vec![3.0; 11])
            .collect::<Vec<_>>();
        let n = rank_ci_normal(&data, 0.5, 0.9).unwrap();
        assert!(n.lower() <= 3.0 && n.upper() >= 2.0);
        let e = rank_ci_exact(&data, 0.5, 0.9).unwrap();
        assert!(e.lower() <= e.upper());
    }

    proptest! {
        #[test]
        fn bounds_are_order_statistics(
            data in proptest::collection::vec(-1e3_f64..1e3, 5..60),
            q in 0.2_f64..0.8,
        ) {
            let ci = rank_ci_normal(&data, q, 0.9).unwrap();
            prop_assert!(data.contains(&ci.lower()));
            prop_assert!(data.contains(&ci.upper()));
            prop_assert!(ci.lower() <= ci.upper());
        }

        #[test]
        fn exact_no_wider_than_full_range(
            data in proptest::collection::vec(-1e3_f64..1e3, 10..60),
        ) {
            if let Ok(ci) = rank_ci_exact(&data, 0.5, 0.9) {
                let lo = data.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(ci.lower() >= lo && ci.upper() <= hi);
            }
        }
    }
}
