use std::fmt;

use spa_stats::StatsError;

/// Error type for baseline CI constructions.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// The method needs data but none (or too little) was provided.
    EmptyData,
    /// A parameter lies outside its domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable description of the accepted domain.
        expected: &'static str,
    },
    /// The BCa bootstrap failed to produce an interval — the "Null"
    /// outcome of the paper's §6.4, typically caused by duplicate data
    /// points making the bias correction or acceleration undefined.
    BootstrapDegenerate {
        /// Why the construction collapsed.
        reason: &'static str,
    },
    /// An underlying numerical computation failed.
    Stats(StatsError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::EmptyData => write!(f, "not enough data"),
            BaselineError::InvalidParameter {
                name,
                value,
                expected,
            } => write!(
                f,
                "invalid parameter `{name}` = {value}; expected {expected}"
            ),
            BaselineError::BootstrapDegenerate { reason } => {
                write!(f, "bootstrap failed to produce an interval: {reason}")
            }
            BaselineError::Stats(e) => write!(f, "numerical error: {e}"),
        }
    }
}

impl std::error::Error for BaselineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StatsError> for BaselineError {
    fn from(e: StatsError) -> Self {
        BaselineError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(BaselineError::EmptyData.to_string().contains("data"));
        let e = BaselineError::BootstrapDegenerate {
            reason: "all bootstrap replicates identical",
        };
        assert!(e.to_string().contains("identical"));
        let e = BaselineError::from(StatsError::EmptyData);
        assert!(std::error::Error::source(&e).is_some());
    }
}
