//! Statistical bootstrapping for quantile confidence intervals.
//!
//! The paper's comparison baseline (§5.4) is the bias-corrected and
//! accelerated (BCa) bootstrap of Efron & Tibshirani, "which offers
//! better accuracy for non-Gaussian data" but "struggles when there is
//! an excessive amount of duplicate data in the sample population —
//! leading to failure to generate any CI" (§6.4). Both the plain
//! percentile interval and BCa are implemented here; BCa reproduces the
//! failure mode as [`BaselineError::BootstrapDegenerate`].

use rand::Rng;

use crate::{BaselineError, Result};
use spa_core::ci::ConfidenceInterval;
use spa_stats::descriptive::{quantile_sorted, QuantileMethod};
use spa_stats::normal::Normal;

/// Number of bootstrap resamples used when the caller does not specify
/// one. Matches common SciPy practice at the sample sizes of the paper.
pub const DEFAULT_RESAMPLES: usize = 2000;

fn validate(data: &[f64], quantile_q: f64, confidence: f64) -> Result<()> {
    if data.len() < 2 {
        return Err(BaselineError::EmptyData);
    }
    if data.iter().any(|x| x.is_nan()) {
        return Err(BaselineError::InvalidParameter {
            name: "data",
            value: f64::NAN,
            expected: "no NaN values",
        });
    }
    if !(quantile_q > 0.0 && quantile_q < 1.0) {
        return Err(BaselineError::InvalidParameter {
            name: "quantile_q",
            value: quantile_q,
            expected: "a value in (0, 1)",
        });
    }
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(BaselineError::InvalidParameter {
            name: "confidence",
            value: confidence,
            expected: "a value in (0, 1)",
        });
    }
    Ok(())
}

/// The statistic being bootstrapped: the `q`-quantile with linear
/// interpolation (NumPy/SciPy default, i.e. what the paper's Python
/// tooling computed).
fn stat(sorted: &[f64], q: f64) -> f64 {
    quantile_sorted(sorted, q, QuantileMethod::Linear)
}

/// Draws bootstrap replicate statistics of the `q`-quantile.
fn replicates<R: Rng + ?Sized>(data: &[f64], q: f64, resamples: usize, rng: &mut R) -> Vec<f64> {
    let n = data.len();
    let mut out = Vec::with_capacity(resamples);
    let mut buf = vec![0.0f64; n];
    for _ in 0..resamples {
        for slot in buf.iter_mut() {
            *slot = data[rng.gen_range(0..n)];
        }
        buf.sort_by(|a, b| a.partial_cmp(b).expect("NaN rejected in validate"));
        out.push(stat(&buf, q));
    }
    out
}

/// Percentile bootstrap CI for the `q`-quantile at level `confidence`.
///
/// # Errors
///
/// * [`BaselineError::EmptyData`] for fewer than two data points,
/// * [`BaselineError::InvalidParameter`] for out-of-range `q`/
///   `confidence`, zero `resamples`, or NaN data.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use spa_baselines::bootstrap::percentile_ci;
///
/// let data: Vec<f64> = (0..22).map(|i| i as f64).collect();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let ci = percentile_ci(&data, 0.5, 0.9, 1000, &mut rng)?;
/// assert!(ci.contains(10.5));
/// # Ok::<(), spa_baselines::BaselineError>(())
/// ```
pub fn percentile_ci<R: Rng + ?Sized>(
    data: &[f64],
    quantile_q: f64,
    confidence: f64,
    resamples: usize,
    rng: &mut R,
) -> Result<ConfidenceInterval> {
    validate(data, quantile_q, confidence)?;
    if resamples == 0 {
        return Err(BaselineError::InvalidParameter {
            name: "resamples",
            value: 0.0,
            expected: "at least one resample",
        });
    }
    let mut reps = replicates(data, quantile_q, resamples, rng);
    reps.sort_by(|a, b| a.partial_cmp(b).expect("statistics are finite"));
    let alpha = 1.0 - confidence;
    let lower = quantile_sorted(&reps, alpha / 2.0, QuantileMethod::Linear);
    let upper = quantile_sorted(&reps, 1.0 - alpha / 2.0, QuantileMethod::Linear);
    Ok(ConfidenceInterval::new(
        lower, upper, confidence, quantile_q,
    ))
}

/// Bias-corrected and accelerated (BCa) bootstrap CI for the
/// `q`-quantile at level `confidence`.
///
/// # Errors
///
/// In addition to the [`percentile_ci`] error conditions, returns
/// [`BaselineError::BootstrapDegenerate`] — the paper's "Null" outcome —
/// when
///
/// * the data is constant (detected up front, before any RNG draw),
/// * every bootstrap replicate falls on one side of the point estimate
///   (the bias correction `z₀ = Φ⁻¹(prop)` is infinite),
/// * the jackknife values are all identical (the acceleration is 0/0), or
/// * the adjusted percentiles collapse to a zero-width or non-finite
///   interval.
///
/// All of these happen in practice exactly when the sample contains many
/// duplicate values (§6.4 / Fig. 15); a success therefore always carries
/// strictly positive width.
pub fn bca_ci<R: Rng + ?Sized>(
    data: &[f64],
    quantile_q: f64,
    confidence: f64,
    resamples: usize,
    rng: &mut R,
) -> Result<ConfidenceInterval> {
    validate(data, quantile_q, confidence)?;
    if resamples == 0 {
        return Err(BaselineError::InvalidParameter {
            name: "resamples",
            value: 0.0,
            expected: "at least one resample",
        });
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN rejected in validate"));
    // Constant data degenerates before any resampling: every replicate
    // and every jackknife value equals the single observed value, so
    // both z0 and the acceleration are undefined. Failing here keeps the
    // outcome deterministic (no RNG draw decides it).
    if sorted.first() == sorted.last() {
        return Err(BaselineError::BootstrapDegenerate {
            reason: "all data identical — the bootstrap distribution is a point mass",
        });
    }
    let theta_hat = stat(&sorted, quantile_q);

    let mut reps = replicates(data, quantile_q, resamples, rng);
    reps.sort_by(|a, b| a.partial_cmp(b).expect("statistics are finite"));

    // Bias correction z0 from the fraction of replicates below the point
    // estimate.
    let below = reps.iter().filter(|&&r| r < theta_hat).count();
    let prop = below as f64 / resamples as f64;
    if prop <= 0.0 || prop >= 1.0 {
        return Err(BaselineError::BootstrapDegenerate {
            reason: "all bootstrap replicates on one side of the estimate (duplicate-heavy data)",
        });
    }
    let std_normal = Normal::standard();
    let z0 = std_normal
        .inverse_cdf(prop)
        .expect("prop checked to be in (0, 1)");

    // Acceleration from the jackknife.
    let n = data.len();
    let mut jack = Vec::with_capacity(n);
    let mut buf = Vec::with_capacity(n - 1);
    for i in 0..n {
        buf.clear();
        buf.extend(
            data.iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &x)| x),
        );
        buf.sort_by(|a, b| a.partial_cmp(b).expect("NaN rejected in validate"));
        jack.push(stat(&buf, quantile_q));
    }
    let jack_mean = jack.iter().sum::<f64>() / n as f64;
    let num: f64 = jack.iter().map(|&j| (jack_mean - j).powi(3)).sum();
    let den: f64 = jack.iter().map(|&j| (jack_mean - j).powi(2)).sum();
    if den == 0.0 {
        return Err(BaselineError::BootstrapDegenerate {
            reason: "jackknife statistics all identical (duplicate-heavy data)",
        });
    }
    let accel = num / (6.0 * den.powf(1.5));

    // Adjusted percentile levels.
    let alpha = 1.0 - confidence;
    let z_lo = std_normal
        .inverse_cdf(alpha / 2.0)
        .expect("alpha/2 in (0,1)");
    let z_hi = std_normal
        .inverse_cdf(1.0 - alpha / 2.0)
        .expect("1-alpha/2 in (0,1)");
    let adjust = |z: f64| -> Result<f64> {
        let denom = 1.0 - accel * (z0 + z);
        if denom <= 0.0 {
            return Err(BaselineError::BootstrapDegenerate {
                reason: "BCa percentile adjustment left the unit interval",
            });
        }
        Ok(std_normal.cdf(z0 + (z0 + z) / denom))
    };
    let a_lo = adjust(z_lo)?;
    let a_hi = adjust(z_hi)?;
    if !(a_lo > 0.0 && a_lo < 1.0 && a_hi > 0.0 && a_hi < 1.0) || a_lo >= a_hi {
        return Err(BaselineError::BootstrapDegenerate {
            reason: "BCa adjusted levels degenerate",
        });
    }
    let lower = quantile_sorted(&reps, a_lo, QuantileMethod::Linear);
    let upper = quantile_sorted(&reps, a_hi, QuantileMethod::Linear);
    // On duplicate-heavy data the replicate distribution is nearly
    // discrete: both adjusted percentiles can land inside one flat run,
    // collapsing the interval to a point. Reporting a zero-width "CI"
    // would claim certainty the method does not have — surface it as the
    // same Null outcome the paper observes (§6.4).
    if !(lower.is_finite() && upper.is_finite()) || lower >= upper {
        return Err(BaselineError::BootstrapDegenerate {
            reason: "bootstrap distribution too discrete: adjusted percentiles collapse",
        });
    }
    Ok(ConfidenceInterval::new(
        lower, upper, confidence, quantile_q,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn validates_inputs() {
        let mut r = rng(1);
        assert!(percentile_ci(&[1.0], 0.5, 0.9, 100, &mut r).is_err());
        assert!(percentile_ci(&[1.0, 2.0], 0.0, 0.9, 100, &mut r).is_err());
        assert!(percentile_ci(&[1.0, 2.0], 0.5, 1.0, 100, &mut r).is_err());
        assert!(percentile_ci(&[1.0, 2.0], 0.5, 0.9, 0, &mut r).is_err());
        assert!(percentile_ci(&[1.0, f64::NAN], 0.5, 0.9, 10, &mut r).is_err());
        assert!(bca_ci(&[1.0], 0.5, 0.9, 100, &mut r).is_err());
    }

    #[test]
    fn percentile_ci_brackets_the_estimate() {
        let data: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let mut r = rng(42);
        let ci = percentile_ci(&data, 0.5, 0.9, 2000, &mut r).unwrap();
        assert!(ci.contains(24.5), "{ci}");
        assert!(ci.width() > 0.0 && ci.width() < 30.0);
    }

    #[test]
    fn bca_ci_brackets_the_estimate_on_clean_data() {
        // Distinct, irregularly spaced values: BCa must succeed.
        let data: Vec<f64> = (0..30)
            .map(|i| (i as f64).powf(1.3) + 0.1 * i as f64)
            .collect();
        let mut r = rng(7);
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let est = quantile_sorted(&sorted, 0.5, QuantileMethod::Linear);
        let ci = bca_ci(&data, 0.5, 0.9, 2000, &mut r).unwrap();
        assert!(ci.contains(est), "{ci} should contain {est}");
    }

    #[test]
    fn bca_fails_on_constant_data() {
        // The paper's §6.4 duplicate failure, in its most extreme form.
        let data = vec![5.0; 22];
        let mut r = rng(3);
        let err = bca_ci(&data, 0.5, 0.9, 500, &mut r).unwrap_err();
        assert!(matches!(err, BaselineError::BootstrapDegenerate { .. }));
    }

    #[test]
    fn bca_fails_on_duplicate_heavy_data() {
        // The paper's §6.4 scenario: a population dominated by two
        // duplicate values. With 12×1.0 and 10×2.0 the sample median is
        // 1.0, and no bootstrap replicate's median can fall *below* the
        // data minimum, so z₀'s defining proportion is exactly 0 — the
        // Null outcome is deterministic, not a matter of RNG luck.
        // Pin that: every seed must fail, with the typed error.
        let mut data = vec![1.0; 12];
        data.extend(vec![2.0; 10]);
        for seed in 0..10 {
            let mut r = rng(seed);
            let err = bca_ci(&data, 0.5, 0.9, 500, &mut r).unwrap_err();
            assert!(
                matches!(err, BaselineError::BootstrapDegenerate { .. }),
                "seed {seed}: expected a typed degenerate-data error, got {err}"
            );
        }
    }

    #[test]
    fn bca_constant_data_fails_without_touching_the_rng() {
        // The constant-data fast path must not consume RNG state: a
        // failed BCa attempt followed by a percentile run gives the same
        // answer as the percentile run alone.
        let constant = vec![5.0; 22];
        let data: Vec<f64> = (0..22).map(|i| i as f64).collect();
        let mut r1 = rng(13);
        let err = bca_ci(&constant, 0.5, 0.9, 500, &mut r1).unwrap_err();
        assert!(matches!(err, BaselineError::BootstrapDegenerate { .. }));
        let after_failure = percentile_ci(&data, 0.5, 0.9, 500, &mut r1).unwrap();
        let fresh = percentile_ci(&data, 0.5, 0.9, 500, &mut rng(13)).unwrap();
        assert_eq!(after_failure, fresh);
    }

    #[test]
    fn bca_never_returns_collapsed_bounds() {
        // Whatever the data, a successful BCa interval has strictly
        // positive width; duplicate-heavy inputs must fail typed instead
        // of collapsing.
        for (seed, dup) in [(1u64, 4usize), (2, 8), (3, 12), (4, 16), (5, 20)] {
            let mut data: Vec<f64> = (0..22 - dup).map(|i| i as f64 * 0.37 + 3.0).collect();
            data.extend(std::iter::repeat_n(1.5, dup));
            let mut r = rng(seed);
            match bca_ci(&data, 0.5, 0.9, 400, &mut r) {
                Ok(ci) => assert!(ci.width() > 0.0, "collapsed CI {ci} at dup={dup}"),
                Err(BaselineError::BootstrapDegenerate { .. }) => {}
                Err(other) => panic!("unexpected error kind: {other}"),
            }
        }
    }

    #[test]
    fn percentile_is_deterministic_given_seed() {
        let data: Vec<f64> = (0..22).map(|i| (i * i % 13) as f64).collect();
        let a = percentile_ci(&data, 0.5, 0.9, 500, &mut rng(9)).unwrap();
        let b = percentile_ci(&data, 0.5, 0.9, 500, &mut rng(9)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn higher_confidence_widens_percentile_ci() {
        let data: Vec<f64> = (0..40).map(|i| ((i * 37) % 100) as f64).collect();
        let c90 = percentile_ci(&data, 0.5, 0.90, 4000, &mut rng(5)).unwrap();
        let c99 = percentile_ci(&data, 0.5, 0.99, 4000, &mut rng(5)).unwrap();
        assert!(c99.width() >= c90.width());
    }

    #[test]
    fn nondefault_quantile() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ci = percentile_ci(&data, 0.9, 0.9, 2000, &mut rng(11)).unwrap();
        // The 0.9-quantile of 0..100 is ~89; CI should be in that region.
        assert!(ci.lower() > 70.0 && ci.upper() <= 99.0, "{ci}");
    }
}
