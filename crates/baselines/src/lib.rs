#![warn(missing_docs)]

//! Prior-art confidence-interval construction methods.
//!
//! The SPA paper (§2.4, §5.4, §6) compares its SMC-based confidence
//! intervals against the three techniques the computer-architecture
//! literature actually uses:
//!
//! * [`bootstrap`] — statistical bootstrapping, including the
//!   bias-corrected and accelerated (BCa) variant, whose failure on
//!   duplicate-heavy data (§6.4) this crate reproduces faithfully;
//! * [`rank`] — nonparametric rank (order-statistic) intervals for
//!   quantiles, in the normal-approximation form the paper attributes to
//!   prior work, plus an exact binomial variant;
//! * [`zscore`] — the Gaussian-assumption Z-score interval, plus
//!   [`tscore`] — its small-sample Student-t correction (an extension,
//!   used to show the paper's criticism targets the assumption rather
//!   than the quantile choice).
//!
//! All constructors return the same
//! [`ConfidenceInterval`](spa_core::ci::ConfidenceInterval) type SPA
//! produces, so the bench harness can compare them apples-to-apples.

pub mod bootstrap;
pub mod rank;
pub mod tscore;
pub mod zscore;

mod error;

pub use error::BaselineError;

/// Convenience alias used by fallible functions in this crate.
pub type Result<T> = std::result::Result<T, BaselineError>;
