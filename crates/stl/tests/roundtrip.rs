//! Seeded parse → pretty-print → parse round-trips: Table 1-shaped
//! formulas built from the `Stl` constructors, plus `ChaCha8Rng`-driven
//! random formula generation (deterministic, complementing the
//! proptest-based suite). Every formula must reparse to an identical AST
//! and produce bit-identical robustness on random traces.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use spa_stl::ast::{CmpOp, Interval, Predicate, Stl};
use spa_stl::eval::{robustness, satisfies};
use spa_stl::parser::parse;
use spa_stl::trace::Trace;

const SIGNALS: [&str; 3] = ["a", "b", "c"];

fn assert_round_trips(f: &Stl) {
    let text = f.to_string();
    let back = parse(&text).unwrap_or_else(|e| panic!("reparse of `{text}` failed: {e}"));
    assert_eq!(f, &back, "AST changed across `{text}`");
}

/// Robustness and satisfaction of the reparsed formula must be
/// bit-identical to the original's on the same trace.
fn assert_equal_semantics(f: &Stl, trace: &Trace) {
    let back = parse(&f.to_string()).unwrap();
    let r1 = robustness(f, trace, 0).unwrap();
    let r2 = robustness(&back, trace, 0).unwrap();
    assert_eq!(
        r1.to_bits(),
        r2.to_bits(),
        "robustness diverged for `{f}`: {r1} vs {r2}"
    );
    assert_eq!(
        satisfies(f, trace, 0).unwrap(),
        satisfies(&back, trace, 0).unwrap(),
        "satisfaction diverged for `{f}`"
    );
}

/// Formulas in the shape of the paper's Table 1 rows, expressed over
/// trace signals with the `Stl` constructors.
fn table1_formulas() -> Vec<Stl> {
    vec![
        // Row 1: metric op threshold.
        Stl::gt("a", 1.5),
        Stl::le("b", 40.0),
        // Row 2: B > metric > A as a conjunction of strict atoms.
        Stl::and(Stl::gt("a", 0.25), Stl::lt("a", 12.75)),
        // Row 3: the system stays in a state (time-in-state via G).
        Stl::globally(Interval::bounded(0, 30), Stl::ge("c", 0.5)),
        // Row 4: an event becomes common enough eventually.
        Stl::eventually(Interval::unbounded(), Stl::gt("b", 3.25)),
        // Rows 5 and 7: metric_a > A implies metric_b > B.
        Stl::implies(Stl::gt("a", 2.0), Stl::gt("b", 8.5)),
        // Row 6: every request is answered within a window.
        Stl::globally(
            Interval::unbounded(),
            Stl::implies(
                Stl::gt("a", 0.5),
                Stl::eventually(Interval::bounded(0, 16), Stl::gt("b", 0.5)),
            ),
        ),
        // Row 8: stay in a state until a release event.
        Stl::until(
            Interval::bounded(0, 25),
            Stl::ge("a", 1.0),
            Stl::gt("c", 2.5),
        ),
        // Row 9 flavour: nested temporal quantification.
        Stl::globally(
            Interval::bounded(0, 20),
            Stl::implies(
                Stl::ge("c", 0.75),
                Stl::eventually(Interval::bounded(0, 10), Stl::lt("a", 5.0)),
            ),
        ),
    ]
}

fn random_cmp(rng: &mut ChaCha8Rng) -> CmpOp {
    match rng.gen_range(0..4) {
        0 => CmpOp::Lt,
        1 => CmpOp::Le,
        2 => CmpOp::Gt,
        _ => CmpOp::Ge,
    }
}

fn random_interval(rng: &mut ChaCha8Rng) -> Interval {
    let lo = rng.gen_range(0..40);
    if rng.gen_bool(0.3) {
        Interval { lo, hi: None }
    } else {
        Interval::bounded(lo, lo + rng.gen_range(0..40))
    }
}

fn random_atom(rng: &mut ChaCha8Rng) -> Stl {
    let signal = SIGNALS[rng.gen_range(0..SIGNALS.len())];
    // Quarter-step thresholds: exactly representable, and exercise
    // fractional display/parse.
    let threshold = rng.gen_range(-200..200) as f64 * 0.25;
    Stl::Atom(Predicate::new(signal, random_cmp(rng), threshold))
}

fn random_formula(rng: &mut ChaCha8Rng, depth: usize) -> Stl {
    if depth == 0 || rng.gen_bool(0.3) {
        return match rng.gen_range(0..6) {
            0 => Stl::True,
            1 => Stl::False,
            _ => random_atom(rng),
        };
    }
    let d = depth - 1;
    match rng.gen_range(0..9) {
        0 => Stl::not(random_formula(rng, d)),
        1 => Stl::and(random_formula(rng, d), random_formula(rng, d)),
        2 => Stl::or(random_formula(rng, d), random_formula(rng, d)),
        3 => Stl::implies(random_formula(rng, d), random_formula(rng, d)),
        4 => Stl::globally(random_interval(rng), random_formula(rng, d)),
        5 => Stl::eventually(random_interval(rng), random_formula(rng, d)),
        6 => Stl::until(
            random_interval(rng),
            random_formula(rng, d),
            random_formula(rng, d),
        ),
        7 => Stl::weak_until(
            random_interval(rng),
            random_formula(rng, d),
            random_formula(rng, d),
        ),
        _ => Stl::release(
            random_interval(rng),
            random_formula(rng, d),
            random_formula(rng, d),
        ),
    }
}

fn random_trace(rng: &mut ChaCha8Rng) -> Trace {
    let mut t = Trace::new();
    let mut now = 0u64;
    for _ in 0..rng.gen_range(1..14) {
        for sig in SIGNALS {
            let v = rng.gen_range(-60..60) as f64 * 0.5;
            t.push(sig, now, v).expect("strictly increasing times");
        }
        now += rng.gen_range(1..10);
    }
    t
}

#[test]
fn table1_shapes_round_trip() {
    for f in table1_formulas() {
        assert_round_trips(&f);
    }
}

#[test]
fn table1_shapes_evaluate_identically_after_reparse() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x57A1_0001);
    for f in table1_formulas() {
        for _ in 0..20 {
            let trace = random_trace(&mut rng);
            assert_equal_semantics(&f, &trace);
        }
    }
}

#[test]
fn random_formulas_round_trip() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x57A1_0002);
    for _ in 0..500 {
        let f = random_formula(&mut rng, 3);
        assert_round_trips(&f);
    }
}

#[test]
fn random_formulas_evaluate_identically_after_reparse() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x57A1_0003);
    for _ in 0..200 {
        let f = random_formula(&mut rng, 3);
        let trace = random_trace(&mut rng);
        assert_equal_semantics(&f, &trace);
    }
}

#[test]
fn display_is_stable_across_a_reparse_cycle() {
    // display ∘ parse must be idempotent: the canonical text of the
    // reparsed AST equals the original canonical text.
    let mut rng = ChaCha8Rng::seed_from_u64(0x57A1_0004);
    for _ in 0..200 {
        let f = random_formula(&mut rng, 3);
        let once = f.to_string();
        let twice = parse(&once).unwrap().to_string();
        assert_eq!(once, twice);
    }
}
