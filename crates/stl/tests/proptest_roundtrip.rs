//! Property-based tests over randomly generated STL formulas:
//! `parse(display(f)) == f`, and evaluation coherence between boolean
//! and robustness semantics on random traces.

use proptest::prelude::*;

use spa_stl::ast::{CmpOp, Interval, Stl};
use spa_stl::eval::{robustness, satisfies};
use spa_stl::parser::parse;
use spa_stl::trace::Trace;

/// Signal names used by generated formulas and traces.
const SIGNALS: [&str; 3] = ["a", "b", "c"];

fn arb_cmp() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge)
    ]
}

fn arb_interval() -> impl Strategy<Value = Interval> {
    (0_u64..50, 0_u64..50, any::<bool>()).prop_map(|(lo, extra, bounded)| {
        if bounded {
            Interval::bounded(lo, lo + extra)
        } else {
            Interval { lo, hi: None }
        }
    })
}

fn arb_atom() -> impl Strategy<Value = Stl> {
    (0_usize..SIGNALS.len(), arb_cmp(), -50_i32..50)
        .prop_map(|(s, op, t)| Stl::Atom(spa_stl::ast::Predicate::new(SIGNALS[s], op, t as f64)))
}

fn arb_formula() -> impl Strategy<Value = Stl> {
    let leaf = prop_oneof![arb_atom(), Just(Stl::True), Just(Stl::False)];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Stl::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Stl::or(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Stl::implies(a, b)),
            inner.clone().prop_map(Stl::not),
            (arb_interval(), inner.clone()).prop_map(|(i, a)| Stl::globally(i, a)),
            (arb_interval(), inner.clone()).prop_map(|(i, a)| Stl::eventually(i, a)),
            (arb_interval(), inner.clone(), inner.clone())
                .prop_map(|(i, a, b)| Stl::until(i, a, b)),
            (arb_interval(), inner.clone(), inner.clone())
                .prop_map(|(i, a, b)| Stl::weak_until(i, a, b)),
            (arb_interval(), inner.clone(), inner).prop_map(|(i, a, b)| Stl::release(i, a, b)),
        ]
    })
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    // 3 signals, 1..12 samples each at strictly increasing times.
    proptest::collection::vec((1_u64..10, -60_i32..60, -60_i32..60, -60_i32..60), 1..12).prop_map(
        |rows| {
            let mut t = Trace::new();
            let mut now = 0u64;
            for (dt, a, b, c) in rows {
                for (sig, v) in [("a", a), ("b", b), ("c", c)] {
                    t.push(sig, now, v as f64).expect("strictly increasing");
                }
                now += dt;
            }
            t
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn display_parse_round_trip(f in arb_formula()) {
        let text = f.to_string();
        let back = parse(&text)
            .unwrap_or_else(|e| panic!("reparse of `{text}` failed: {e}"));
        prop_assert_eq!(f, back);
    }

    #[test]
    fn robustness_sign_matches_boolean(f in arb_formula(), t in arb_trace()) {
        let sat = satisfies(&f, &t, 0).expect("signals all defined");
        let rob = robustness(&f, &t, 0).expect("signals all defined");
        // Strictly positive robustness implies satisfaction; strictly
        // negative implies violation. Zero is the indeterminate boundary.
        if rob > 0.0 {
            prop_assert!(sat, "rob {rob} > 0 but not satisfied: {f}");
        } else if rob < 0.0 {
            prop_assert!(!sat, "rob {rob} < 0 but satisfied: {f}");
        }
    }

    #[test]
    fn negation_is_involutive(f in arb_formula(), t in arb_trace()) {
        let direct = satisfies(&f, &t, 0).unwrap();
        let doubled = satisfies(&Stl::not(Stl::not(f)), &t, 0).unwrap();
        prop_assert_eq!(direct, doubled);
    }

    #[test]
    fn weak_until_is_until_or_globally(
        a in arb_formula(),
        b in arb_formula(),
        t in arb_trace(),
        lo in 0_u64..20,
        len in 0_u64..20,
    ) {
        let i = Interval::bounded(lo, lo + len);
        let weak = satisfies(&Stl::weak_until(i, a.clone(), b.clone()), &t, 0).unwrap();
        let strong = satisfies(&Stl::until(i, a.clone(), b), &t, 0).unwrap();
        let globally = satisfies(&Stl::globally(i, a), &t, 0).unwrap();
        prop_assert_eq!(weak, strong || globally);
    }

    #[test]
    fn release_is_dual_of_until(
        a in arb_formula(),
        b in arb_formula(),
        t in arb_trace(),
        lo in 0_u64..20,
        len in 0_u64..20,
    ) {
        let i = Interval::bounded(lo, lo + len);
        let release = satisfies(&Stl::release(i, a.clone(), b.clone()), &t, 0).unwrap();
        let dual = !satisfies(&Stl::until(i, Stl::not(a), Stl::not(b)), &t, 0).unwrap();
        prop_assert_eq!(release, dual);
    }

    #[test]
    fn globally_implies_eventually(f in arb_formula(), t in arb_trace(), lo in 0_u64..20, len in 0_u64..20) {
        // On a non-empty window, G[I]φ ⇒ F[I]φ.
        let i = Interval::bounded(lo, lo + len);
        let g = satisfies(&Stl::globally(i, f.clone()), &t, 0).unwrap();
        let e = satisfies(&Stl::eventually(i, f), &t, 0).unwrap();
        prop_assert!(!g || e, "G held but F did not");
    }
}
