//! Piecewise-constant, multi-signal execution traces.
//!
//! A processor execution produces time-stamped observations: power at
//! cycle 10, core activity at cycle 57, and so on. STL formulas are
//! evaluated against such traces under the usual piecewise-constant
//! interpretation: a signal holds its most recent sampled value until the
//! next sample.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::{Result, StlError};

/// A time-stamped observation of one signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Time of the observation, in cycles.
    pub time: u64,
    /// Observed value.
    pub value: f64,
}

/// A multi-signal, piecewise-constant trace.
///
/// Each signal is a strictly time-ordered list of [`Sample`]s; between
/// samples the signal keeps its last value. Signal names are arbitrary
/// identifiers (`power`, `state_sprinting`, `l2_mshr_occupancy`, …).
///
/// # Examples
///
/// ```
/// use spa_stl::trace::Trace;
/// # fn main() -> Result<(), spa_stl::StlError> {
/// let mut t = Trace::new();
/// t.push("power", 0, 2.0)?;
/// t.push("power", 10, 5.5)?;
/// assert_eq!(t.value_at("power", 4)?, 2.0);
/// assert_eq!(t.value_at("power", 10)?, 5.5);
/// assert_eq!(t.end_time(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    signals: BTreeMap<String, Vec<Sample>>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample to `signal` at time `time`.
    ///
    /// # Errors
    ///
    /// Returns [`StlError::NonMonotonicTime`] if `time` is not strictly
    /// greater than the signal's last sample time.
    pub fn push(&mut self, signal: &str, time: u64, value: f64) -> Result<()> {
        let samples = self.signals.entry(signal.to_owned()).or_default();
        if let Some(last) = samples.last() {
            if time <= last.time {
                return Err(StlError::NonMonotonicTime {
                    signal: signal.to_owned(),
                    previous: last.time,
                    offered: time,
                });
            }
        }
        samples.push(Sample { time, value });
        Ok(())
    }

    /// Bulk-loads a signal from `(time, value)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`StlError::NonMonotonicTime`] on the first non-increasing
    /// timestamp; samples before the offending one are kept.
    pub fn push_series<I>(&mut self, signal: &str, series: I) -> Result<()>
    where
        I: IntoIterator<Item = (u64, f64)>,
    {
        for (t, v) in series {
            self.push(signal, t, v)?;
        }
        Ok(())
    }

    /// Names of all signals in the trace, in sorted order.
    pub fn signal_names(&self) -> impl Iterator<Item = &str> {
        self.signals.keys().map(String::as_str)
    }

    /// Whether the trace defines `signal`.
    pub fn has_signal(&self, signal: &str) -> bool {
        self.signals.contains_key(signal)
    }

    /// The raw samples of `signal`.
    ///
    /// # Errors
    ///
    /// Returns [`StlError::UnknownSignal`] if the signal does not exist.
    pub fn samples(&self, signal: &str) -> Result<&[Sample]> {
        self.signals
            .get(signal)
            .map(Vec::as_slice)
            .ok_or_else(|| StlError::UnknownSignal(signal.to_owned()))
    }

    /// Piecewise-constant value of `signal` at time `t`: the value of the
    /// latest sample at or before `t`.
    ///
    /// # Errors
    ///
    /// Returns [`StlError::UnknownSignal`] for an undefined signal and
    /// [`StlError::EmptyWindow`] if `t` precedes the first sample.
    pub fn value_at(&self, signal: &str, t: u64) -> Result<f64> {
        let samples = self.samples(signal)?;
        // Latest sample with time <= t.
        let idx = samples.partition_point(|s| s.time <= t);
        if idx == 0 {
            return Err(StlError::EmptyWindow {
                signal: signal.to_owned(),
            });
        }
        Ok(samples[idx - 1].value)
    }

    /// All distinct sample times across every signal that fall within
    /// `[lo, hi]`, in ascending order. STL evaluation over
    /// piecewise-constant signals only needs to inspect these instants.
    pub fn event_times(&self, lo: u64, hi: u64) -> Vec<u64> {
        let mut times: Vec<u64> = self
            .signals
            .values()
            .flat_map(|ss| ss.iter().map(|s| s.time))
            .filter(|&t| t >= lo && t <= hi)
            .collect();
        times.sort_unstable();
        times.dedup();
        times
    }

    /// The latest sample time across all signals (0 for an empty trace).
    pub fn end_time(&self) -> u64 {
        self.signals
            .values()
            .filter_map(|ss| ss.last().map(|s| s.time))
            .max()
            .unwrap_or(0)
    }

    /// The earliest sample time across all signals (0 for an empty trace).
    pub fn start_time(&self) -> u64 {
        self.signals
            .values()
            .filter_map(|ss| ss.first().map(|s| s.time))
            .min()
            .unwrap_or(0)
    }

    /// Fraction of `[lo, hi]` during which `predicate` holds on the
    /// signal's piecewise-constant value. Used by the "%time in state"
    /// template (Table 1 row 3).
    ///
    /// # Errors
    ///
    /// Returns [`StlError::UnknownSignal`] / [`StlError::EmptyWindow`]
    /// as [`value_at`](Self::value_at) does, and
    /// [`StlError::InvalidParameter`] if `hi < lo`.
    pub fn fraction_of_time<P>(&self, signal: &str, lo: u64, hi: u64, predicate: P) -> Result<f64>
    where
        P: Fn(f64) -> bool,
    {
        if hi < lo {
            return Err(StlError::InvalidParameter {
                name: "interval",
                expected: "hi >= lo",
            });
        }
        if hi == lo {
            return Ok(if predicate(self.value_at(signal, lo)?) {
                1.0
            } else {
                0.0
            });
        }
        let samples = self.samples(signal)?;
        if samples.is_empty() || samples[0].time > lo {
            return Err(StlError::EmptyWindow {
                signal: signal.to_owned(),
            });
        }
        // Walk the segments that intersect [lo, hi].
        let mut held = 0u64;
        let mut seg_start = lo;
        let mut seg_value = self.value_at(signal, lo)?;
        for s in samples.iter().filter(|s| s.time > lo && s.time <= hi) {
            if predicate(seg_value) {
                held += s.time - seg_start;
            }
            seg_start = s.time;
            seg_value = s.value;
        }
        if predicate(seg_value) {
            held += hi - seg_start;
        }
        Ok(held as f64 / (hi - lo) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Trace {
        let mut t = Trace::new();
        t.push_series("x", [(0, 1.0), (10, 2.0), (20, 3.0)])
            .unwrap();
        t
    }

    #[test]
    fn piecewise_constant_lookup() {
        let t = ramp();
        assert_eq!(t.value_at("x", 0).unwrap(), 1.0);
        assert_eq!(t.value_at("x", 9).unwrap(), 1.0);
        assert_eq!(t.value_at("x", 10).unwrap(), 2.0);
        assert_eq!(t.value_at("x", 100).unwrap(), 3.0);
    }

    #[test]
    fn lookup_before_first_sample_fails() {
        let mut t = Trace::new();
        t.push("x", 5, 1.0).unwrap();
        assert!(matches!(
            t.value_at("x", 0),
            Err(StlError::EmptyWindow { .. })
        ));
    }

    #[test]
    fn unknown_signal() {
        let t = ramp();
        assert!(matches!(
            t.value_at("y", 0),
            Err(StlError::UnknownSignal(_))
        ));
        assert!(t.samples("nope").is_err());
        assert!(t.has_signal("x"));
        assert!(!t.has_signal("y"));
    }

    #[test]
    fn monotonicity_enforced() {
        let mut t = Trace::new();
        t.push("x", 5, 1.0).unwrap();
        assert!(t.push("x", 5, 2.0).is_err());
        assert!(t.push("x", 4, 2.0).is_err());
        t.push("x", 6, 2.0).unwrap();
        // Other signals are independent.
        t.push("y", 0, 9.0).unwrap();
    }

    #[test]
    fn event_times_window() {
        let mut t = ramp();
        t.push_series("y", [(5, 0.0), (15, 1.0)]).unwrap();
        assert_eq!(t.event_times(0, 20), vec![0, 5, 10, 15, 20]);
        assert_eq!(t.event_times(6, 14), vec![10]);
        assert!(t.event_times(21, 30).is_empty());
    }

    #[test]
    fn start_end_times() {
        let t = ramp();
        assert_eq!(t.start_time(), 0);
        assert_eq!(t.end_time(), 20);
        assert_eq!(Trace::new().end_time(), 0);
    }

    #[test]
    fn fraction_of_time_full_window() {
        let t = ramp();
        // x < 2.5 on [0,20): true on [0,20) except [20,20]... walk:
        // [0,10): 1.0 true; [10,20): 2.0 true; at 20: 3.0 false → 20/20.
        let f = t.fraction_of_time("x", 0, 20, |v| v < 2.5).unwrap();
        assert!((f - 1.0).abs() < 1e-12);
        // x >= 2.0 holds on [10, 20] → 10/20.
        let f = t.fraction_of_time("x", 0, 20, |v| v >= 2.0).unwrap();
        assert!((f - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fraction_of_time_degenerate_interval() {
        let t = ramp();
        assert_eq!(t.fraction_of_time("x", 10, 10, |v| v == 2.0).unwrap(), 1.0);
        assert_eq!(t.fraction_of_time("x", 10, 10, |v| v == 1.0).unwrap(), 0.0);
        assert!(t.fraction_of_time("x", 10, 5, |_| true).is_err());
    }

    #[test]
    fn signal_names_sorted() {
        let mut t = Trace::new();
        t.push("zeta", 0, 0.0).unwrap();
        t.push("alpha", 0, 0.0).unwrap();
        let names: Vec<&str> = t.signal_names().collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
