//! Abstract syntax tree for the STL fragment used by SPA.
//!
//! Formulas are built either programmatically through the constructors
//! here or by [`crate::parser::parse`]. `Display` renders a formula back
//! to parseable text, so `parse(f.to_string())` round-trips.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::trace::Trace;
use crate::Result;

/// Comparison operator of an atomic predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the comparison.
    pub fn apply(self, lhs: f64, rhs: f64) -> bool {
        match self {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    /// The operator with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> Self {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// An atomic predicate `signal op threshold`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    /// Signal name the predicate inspects.
    pub signal: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Constant threshold.
    pub threshold: f64,
}

impl Predicate {
    /// Creates a predicate `signal op threshold`.
    pub fn new(signal: impl Into<String>, op: CmpOp, threshold: f64) -> Self {
        Self {
            signal: signal.into(),
            op,
            threshold,
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.signal, self.op, self.threshold)
    }
}

/// A (possibly right-unbounded) time interval `[lo, hi]` in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound; `None` means unbounded (evaluation clamps
    /// to the end of the trace).
    pub hi: Option<u64>,
}

impl Interval {
    /// A bounded interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo`.
    pub fn bounded(lo: u64, hi: u64) -> Self {
        assert!(hi >= lo, "interval upper bound below lower bound");
        Self { lo, hi: Some(hi) }
    }

    /// The unbounded interval `[0, ∞)`.
    pub fn unbounded() -> Self {
        Self { lo: 0, hi: None }
    }

    /// Shifts both bounds by `t` (the evaluation-time offset).
    pub fn offset(self, t: u64) -> Self {
        Self {
            lo: self.lo + t,
            hi: self.hi.map(|h| h + t),
        }
    }

    /// Clamps the upper bound to `end` (for unbounded intervals) and
    /// returns concrete `(lo, hi)` bounds.
    pub fn clamp_to(self, end: u64) -> (u64, u64) {
        (self.lo, self.hi.unwrap_or(end).min(end).max(self.lo))
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.hi {
            Some(hi) => write!(f, "[{},{}]", self.lo, hi),
            None => write!(f, "[{},inf]", self.lo),
        }
    }
}

/// An STL formula.
///
/// # Examples
///
/// ```
/// use spa_stl::ast::{Stl, Interval};
///
/// // G[0,100] (power < 5.0)
/// let f = Stl::globally(Interval::bounded(0, 100), Stl::lt("power", 5.0));
/// assert_eq!(f.to_string(), "G[0,100] (power < 5)");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stl {
    /// Constant truth.
    True,
    /// Constant falsehood.
    False,
    /// Atomic predicate on one signal.
    Atom(Predicate),
    /// Logical negation.
    Not(Box<Stl>),
    /// Conjunction.
    And(Box<Stl>, Box<Stl>),
    /// Disjunction.
    Or(Box<Stl>, Box<Stl>),
    /// Implication.
    Implies(Box<Stl>, Box<Stl>),
    /// `G[I] φ` — φ holds at every instant of the interval.
    Globally(Interval, Box<Stl>),
    /// `F[I] φ` — φ holds at some instant of the interval.
    Eventually(Interval, Box<Stl>),
    /// `φ U[I] ψ` — ψ eventually holds within the interval, and φ holds
    /// until then.
    Until(Interval, Box<Stl>, Box<Stl>),
    /// `φ W[I] ψ` — weak until: as [`Stl::Until`], except that ψ need
    /// never hold if φ holds throughout the interval
    /// (`φ W ψ ≡ (φ U ψ) ∨ G φ`).
    WeakUntil(Interval, Box<Stl>, Box<Stl>),
    /// `φ R[I] ψ` — release: ψ must hold up to and including the instant
    /// φ first holds; if φ never holds, ψ must hold throughout
    /// (`φ R ψ ≡ ¬(¬φ U ¬ψ)`).
    Release(Interval, Box<Stl>, Box<Stl>),
}

impl Stl {
    /// Atomic `signal < threshold`.
    pub fn lt(signal: impl Into<String>, threshold: f64) -> Self {
        Stl::Atom(Predicate::new(signal, CmpOp::Lt, threshold))
    }

    /// Atomic `signal <= threshold`.
    pub fn le(signal: impl Into<String>, threshold: f64) -> Self {
        Stl::Atom(Predicate::new(signal, CmpOp::Le, threshold))
    }

    /// Atomic `signal > threshold`.
    pub fn gt(signal: impl Into<String>, threshold: f64) -> Self {
        Stl::Atom(Predicate::new(signal, CmpOp::Gt, threshold))
    }

    /// Atomic `signal >= threshold`.
    pub fn ge(signal: impl Into<String>, threshold: f64) -> Self {
        Stl::Atom(Predicate::new(signal, CmpOp::Ge, threshold))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(inner: Stl) -> Self {
        Stl::Not(Box::new(inner))
    }

    /// Conjunction.
    pub fn and(lhs: Stl, rhs: Stl) -> Self {
        Stl::And(Box::new(lhs), Box::new(rhs))
    }

    /// Disjunction.
    pub fn or(lhs: Stl, rhs: Stl) -> Self {
        Stl::Or(Box::new(lhs), Box::new(rhs))
    }

    /// Implication.
    pub fn implies(lhs: Stl, rhs: Stl) -> Self {
        Stl::Implies(Box::new(lhs), Box::new(rhs))
    }

    /// Temporal `G[I] φ`.
    pub fn globally(interval: Interval, inner: Stl) -> Self {
        Stl::Globally(interval, Box::new(inner))
    }

    /// Temporal `F[I] φ`.
    pub fn eventually(interval: Interval, inner: Stl) -> Self {
        Stl::Eventually(interval, Box::new(inner))
    }

    /// Temporal `φ U[I] ψ`.
    pub fn until(interval: Interval, lhs: Stl, rhs: Stl) -> Self {
        Stl::Until(interval, Box::new(lhs), Box::new(rhs))
    }

    /// Temporal `φ W[I] ψ` (weak until).
    pub fn weak_until(interval: Interval, lhs: Stl, rhs: Stl) -> Self {
        Stl::WeakUntil(interval, Box::new(lhs), Box::new(rhs))
    }

    /// Temporal `φ R[I] ψ` (release).
    pub fn release(interval: Interval, lhs: Stl, rhs: Stl) -> Self {
        Stl::Release(interval, Box::new(lhs), Box::new(rhs))
    }

    /// Boolean satisfaction of the formula at the start of the trace.
    ///
    /// Shorthand for [`eval::satisfies`](crate::eval::satisfies) at
    /// `t = trace.start_time()`.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors (unknown signals, empty windows).
    pub fn satisfied_by(&self, trace: &Trace) -> Result<bool> {
        crate::eval::satisfies(self, trace, trace.start_time())
    }

    /// Names of all signals the formula mentions, deduplicated.
    pub fn signals(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_signals(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_signals<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Stl::True | Stl::False => {}
            Stl::Atom(p) => out.push(&p.signal),
            Stl::Not(a) => a.collect_signals(out),
            Stl::And(a, b) | Stl::Or(a, b) | Stl::Implies(a, b) => {
                a.collect_signals(out);
                b.collect_signals(out);
            }
            Stl::Globally(_, a) | Stl::Eventually(_, a) => a.collect_signals(out),
            Stl::Until(_, a, b) | Stl::WeakUntil(_, a, b) | Stl::Release(_, a, b) => {
                a.collect_signals(out);
                b.collect_signals(out);
            }
        }
    }
}

impl fmt::Display for Stl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stl::True => write!(f, "true"),
            Stl::False => write!(f, "false"),
            Stl::Atom(p) => write!(f, "{p}"),
            Stl::Not(a) => write!(f, "!({a})"),
            Stl::And(a, b) => write!(f, "({a}) & ({b})"),
            Stl::Or(a, b) => write!(f, "({a}) | ({b})"),
            Stl::Implies(a, b) => write!(f, "({a}) -> ({b})"),
            Stl::Globally(i, a) => write!(f, "G{i} ({a})"),
            Stl::Eventually(i, a) => write!(f, "F{i} ({a})"),
            Stl::Until(i, a, b) => write!(f, "({a}) U{i} ({b})"),
            Stl::WeakUntil(i, a, b) => write!(f, "({a}) W{i} ({b})"),
            Stl::Release(i, a, b) => write!(f, "({a}) R{i} ({b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_semantics() {
        assert!(CmpOp::Lt.apply(1.0, 2.0));
        assert!(!CmpOp::Lt.apply(2.0, 2.0));
        assert!(CmpOp::Le.apply(2.0, 2.0));
        assert!(CmpOp::Gt.apply(3.0, 2.0));
        assert!(CmpOp::Ge.apply(2.0, 2.0));
    }

    #[test]
    fn cmp_op_flip() {
        assert_eq!(CmpOp::Lt.flipped(), CmpOp::Gt);
        assert_eq!(CmpOp::Ge.flipped(), CmpOp::Le);
        // a op b == b op.flipped() a
        for op in [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            for (a, b) in [(1.0, 2.0), (2.0, 2.0), (3.0, 2.0)] {
                assert_eq!(op.apply(a, b), op.flipped().apply(b, a));
            }
        }
    }

    #[test]
    #[should_panic(expected = "upper bound below lower")]
    fn inverted_interval_panics() {
        let _ = Interval::bounded(5, 2);
    }

    #[test]
    fn interval_arithmetic() {
        let i = Interval::bounded(2, 8).offset(10);
        assert_eq!(i, Interval::bounded(12, 18));
        assert_eq!(i.clamp_to(15), (12, 15));
        assert_eq!(i.clamp_to(100), (12, 18));
        let u = Interval::unbounded().offset(5);
        assert_eq!(u.clamp_to(50), (5, 50));
        // clamp never returns hi < lo
        assert_eq!(Interval::bounded(10, 20).clamp_to(3), (10, 10));
    }

    #[test]
    fn display_round_trippable_format() {
        let f = Stl::implies(
            Stl::gt("power", 5.0),
            Stl::eventually(Interval::bounded(0, 10), Stl::lt("temp", 80.0)),
        );
        assert_eq!(f.to_string(), "(power > 5) -> (F[0,10] (temp < 80))");
        assert_eq!(Interval::unbounded().to_string(), "[0,inf]");
    }

    #[test]
    fn signal_collection() {
        let f = Stl::until(
            Interval::unbounded(),
            Stl::and(Stl::gt("a", 0.0), Stl::lt("b", 1.0)),
            Stl::or(Stl::ge("a", 2.0), Stl::not(Stl::le("c", 3.0))),
        );
        assert_eq!(f.signals(), vec!["a", "b", "c"]);
        assert!(Stl::True.signals().is_empty());
    }
}
