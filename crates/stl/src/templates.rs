//! The nine property templates of the paper's Table 1.
//!
//! Each template evaluates to one boolean per execution — the `φ(σ)` of
//! the paper's Eq. 2 — which is exactly what the SMC engine consumes.
//! Rows map as follows:
//!
//! | Row | Template | Example from the paper |
//! |-----|----------|------------------------|
//! | 1 | [`Template::MetricThreshold`]  | `performance > A` |
//! | 2 | [`Template::MetricBetween`]    | `A > performance > B` |
//! | 3 | [`Template::TimeInState`]      | `%time handling mispredictions < A` |
//! | 4 | [`Template::AvgCyclesPerEvent`]| `avg #cycles between TLB misses > A` |
//! | 5 | [`Template::MetricImplication`]| `power > A -> performance > B` |
//! | 6 | [`Template::EventWithinWindow`]| `if error occurs, Prob[second error within C cycles] < PB` |
//! | 7 | [`Template::LatencyImplication`]| `service time for R > A -> service time for S > B` |
//! | 8 | [`Template::StayInStateUntil`] | `if sprinting, Prob[stay until thermal alert] < PA` |
//! | 9 | [`Template::ConditionalEventProb`] | `Prob[new TLB miss when Prob[handling old miss] > PA] < PB` |
//!
//! Rows 6, 8 and 9 contain an *inner* probability over occurrences within
//! one execution (the paper's "Prob[...]"); the template computes that
//! empirical inner probability from the execution's event streams and
//! compares it against the template's threshold, yielding one boolean.
//! The *outer* probability over executions is SMC's job.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::ast::{CmpOp, Predicate, Stl};
use crate::execution::ExecutionData;
use crate::{Result, StlError};

/// A Table 1 property template, evaluating one execution to a boolean.
///
/// # Examples
///
/// ```
/// use spa_stl::ast::CmpOp;
/// use spa_stl::execution::ExecutionData;
/// use spa_stl::templates::Template;
///
/// # fn main() -> Result<(), spa_stl::StlError> {
/// let prop = Template::metric_threshold("ipc", CmpOp::Gt, 1.5);
/// let mut run = ExecutionData::new(1000);
/// run.set_metric("ipc", 1.8);
/// assert!(prop.evaluate(&run)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Template {
    /// Row 1: `metric op threshold`.
    MetricThreshold {
        /// Scalar metric name.
        metric: String,
        /// Comparison operator.
        op: CmpOp,
        /// Threshold.
        threshold: f64,
    },
    /// Row 2: `hi > metric > lo` (strict on both sides).
    MetricBetween {
        /// Scalar metric name.
        metric: String,
        /// Strict lower bound.
        lo: f64,
        /// Strict upper bound.
        hi: f64,
    },
    /// Row 3: the fraction of execution time during which `signal`
    /// satisfies `state_op state_value` compares `time_op` against
    /// `time_fraction`.
    TimeInState {
        /// Signal holding the state indicator.
        signal: String,
        /// State-membership comparison operator.
        state_op: CmpOp,
        /// State-membership comparison value.
        state_value: f64,
        /// How the measured fraction compares to the threshold.
        time_op: CmpOp,
        /// Threshold fraction in `[0, 1]`.
        time_fraction: f64,
    },
    /// Row 4: `duration / #occurrences(event) op threshold`.
    ///
    /// If the event never occurs, the average inter-event distance is
    /// treated as `+∞` (so `> A` holds and `< A` fails).
    AvgCyclesPerEvent {
        /// Event stream name.
        event: String,
        /// Comparison operator.
        op: CmpOp,
        /// Threshold in cycles.
        threshold: f64,
    },
    /// Rows 5 and 7: `metric_a op_a A → metric_b op_b B`.
    MetricImplication {
        /// Antecedent metric.
        metric_a: String,
        /// Antecedent operator.
        op_a: CmpOp,
        /// Antecedent threshold.
        a: f64,
        /// Consequent metric.
        metric_b: String,
        /// Consequent operator.
        op_b: CmpOp,
        /// Consequent threshold.
        b: f64,
    },
    /// Row 7 alias of [`Template::MetricImplication`] with latency
    /// metrics; constructed by [`Template::latency_implication`].
    LatencyImplication {
        /// Latency metric of the first event/request.
        latency_a: String,
        /// Antecedent operator.
        op_a: CmpOp,
        /// Antecedent threshold.
        a: f64,
        /// Latency metric of the second event/request.
        latency_b: String,
        /// Consequent operator.
        op_b: CmpOp,
        /// Consequent threshold.
        b: f64,
    },
    /// Row 6: among occurrences of `trigger`, the fraction followed by a
    /// `response` occurrence within `window` cycles compares `prob_op`
    /// against `prob`. Vacuously true when `trigger` never occurs.
    EventWithinWindow {
        /// Triggering event stream.
        trigger: String,
        /// Responding event stream.
        response: String,
        /// Window length `C` in cycles.
        window: u64,
        /// How the measured fraction compares to the threshold.
        prob_op: CmpOp,
        /// Probability threshold in `[0, 1]`.
        prob: f64,
    },
    /// Row 8: among occurrences of `enter`, the fraction for which
    /// `state_signal state_op state_value` holds continuously from the
    /// occurrence until the next `until_event` compares `prob_op`
    /// against `prob`. An `enter` with no later `until_event` counts as
    /// *not* staying. Vacuously true when `enter` never occurs.
    StayInStateUntil {
        /// Event marking state entry.
        enter: String,
        /// Signal holding the state indicator.
        state_signal: String,
        /// State-membership comparison operator.
        state_op: CmpOp,
        /// State-membership comparison value.
        state_value: f64,
        /// Event that releases the obligation.
        until_event: String,
        /// How the measured fraction compares to the threshold.
        prob_op: CmpOp,
        /// Probability threshold in `[0, 1]`.
        prob: f64,
    },
    /// Row 9: `Prob[event when Prob[state] inner_op inner_prob] outer_op
    /// outer_prob`. The inner probability is the execution's
    /// time-fraction spent in the state; when it satisfies `inner_op
    /// inner_prob`, the outer probability is the fraction of `event`
    /// occurrences that happen *while in the state*, compared with
    /// `outer_op outer_prob`. When the inner condition fails (or the
    /// event never occurs) the property is vacuously true.
    ConditionalEventProb {
        /// Event stream of interest.
        event: String,
        /// Signal holding the state indicator.
        state_signal: String,
        /// State-membership comparison operator.
        state_op: CmpOp,
        /// State-membership comparison value.
        state_value: f64,
        /// Inner comparison operator on the time-fraction in state.
        inner_op: CmpOp,
        /// Inner probability threshold in `[0, 1]`.
        inner_prob: f64,
        /// Outer comparison operator.
        outer_op: CmpOp,
        /// Outer probability threshold in `[0, 1]`.
        outer_prob: f64,
    },
}

impl Template {
    /// Row 1 constructor: `metric op threshold`.
    ///
    /// # Examples
    ///
    /// The constructed template's rendering parses back to the
    /// identical STL AST:
    ///
    /// ```
    /// use spa_stl::ast::CmpOp;
    /// use spa_stl::parser::parse;
    /// use spa_stl::templates::Template;
    ///
    /// let t = Template::metric_threshold("ipc", CmpOp::Gt, 1.5);
    /// assert_eq!(parse(&t.to_string())?, t.to_stl().unwrap());
    /// # Ok::<(), spa_stl::StlError>(())
    /// ```
    pub fn metric_threshold(metric: impl Into<String>, op: CmpOp, threshold: f64) -> Self {
        Template::MetricThreshold {
            metric: metric.into(),
            op,
            threshold,
        }
    }

    /// Row 2 constructor: `hi > metric > lo`.
    ///
    /// # Errors
    ///
    /// Returns [`StlError::InvalidParameter`] if `hi <= lo`.
    ///
    /// # Examples
    ///
    /// The chained-comparison rendering parses back to the identical
    /// STL AST:
    ///
    /// ```
    /// use spa_stl::parser::parse;
    /// use spa_stl::templates::Template;
    ///
    /// let t = Template::metric_between("runtime", 0.9, 1.1)?;
    /// assert_eq!(parse(&t.to_string())?, t.to_stl().unwrap());
    /// # Ok::<(), spa_stl::StlError>(())
    /// ```
    pub fn metric_between(metric: impl Into<String>, lo: f64, hi: f64) -> Result<Self> {
        if hi <= lo {
            return Err(StlError::InvalidParameter {
                name: "hi",
                expected: "hi > lo",
            });
        }
        Ok(Template::MetricBetween {
            metric: metric.into(),
            lo,
            hi,
        })
    }

    /// Row 5 constructor: `metric_a op_a A → metric_b op_b B`.
    ///
    /// # Examples
    ///
    /// The implication rendering parses back to the identical STL AST:
    ///
    /// ```
    /// use spa_stl::ast::CmpOp;
    /// use spa_stl::parser::parse;
    /// use spa_stl::templates::Template;
    ///
    /// let t = Template::metric_implication("power", CmpOp::Gt, 10.0, "ipc", CmpOp::Gt, 1.5);
    /// assert_eq!(parse(&t.to_string())?, t.to_stl().unwrap());
    /// # Ok::<(), spa_stl::StlError>(())
    /// ```
    pub fn metric_implication(
        metric_a: impl Into<String>,
        op_a: CmpOp,
        a: f64,
        metric_b: impl Into<String>,
        op_b: CmpOp,
        b: f64,
    ) -> Self {
        Template::MetricImplication {
            metric_a: metric_a.into(),
            op_a,
            a,
            metric_b: metric_b.into(),
            op_b,
            b,
        }
    }

    /// Row 7 constructor over latency metrics.
    ///
    /// # Examples
    ///
    /// The implication rendering parses back to the identical STL AST:
    ///
    /// ```
    /// use spa_stl::ast::CmpOp;
    /// use spa_stl::parser::parse;
    /// use spa_stl::templates::Template;
    ///
    /// let t = Template::latency_implication(
    ///     "lat_r", CmpOp::Gt, 100.0, "lat_s", CmpOp::Gt, 200.0,
    /// );
    /// assert_eq!(parse(&t.to_string())?, t.to_stl().unwrap());
    /// # Ok::<(), spa_stl::StlError>(())
    /// ```
    pub fn latency_implication(
        latency_a: impl Into<String>,
        op_a: CmpOp,
        a: f64,
        latency_b: impl Into<String>,
        op_b: CmpOp,
        b: f64,
    ) -> Self {
        Template::LatencyImplication {
            latency_a: latency_a.into(),
            op_a,
            a,
            latency_b: latency_b.into(),
            op_b,
            b,
        }
    }

    /// Evaluates the property on one execution.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown metrics/events/signals or probability
    /// thresholds outside `[0, 1]`.
    pub fn evaluate(&self, run: &ExecutionData) -> Result<bool> {
        match self {
            Template::MetricThreshold {
                metric,
                op,
                threshold,
            } => Ok(op.apply(run.metric(metric)?, *threshold)),
            Template::MetricBetween { metric, lo, hi } => {
                let v = run.metric(metric)?;
                Ok(v > *lo && v < *hi)
            }
            Template::TimeInState {
                signal,
                state_op,
                state_value,
                time_op,
                time_fraction,
            } => {
                check_prob("time_fraction", *time_fraction)?;
                let frac = run.trace().fraction_of_time(
                    signal,
                    run.trace().start_time(),
                    run.trace().end_time().max(run.duration()),
                    |v| state_op.apply(v, *state_value),
                )?;
                Ok(time_op.apply(frac, *time_fraction))
            }
            Template::AvgCyclesPerEvent {
                event,
                op,
                threshold,
            } => {
                let count = run.event_count(event);
                let avg = if count == 0 {
                    f64::INFINITY
                } else {
                    run.duration() as f64 / count as f64
                };
                Ok(op.apply(avg, *threshold))
            }
            Template::MetricImplication {
                metric_a,
                op_a,
                a,
                metric_b,
                op_b,
                b,
            } => {
                let antecedent = op_a.apply(run.metric(metric_a)?, *a);
                if !antecedent {
                    return Ok(true);
                }
                Ok(op_b.apply(run.metric(metric_b)?, *b))
            }
            Template::LatencyImplication {
                latency_a,
                op_a,
                a,
                latency_b,
                op_b,
                b,
            } => {
                let antecedent = op_a.apply(run.metric(latency_a)?, *a);
                if !antecedent {
                    return Ok(true);
                }
                Ok(op_b.apply(run.metric(latency_b)?, *b))
            }
            Template::EventWithinWindow {
                trigger,
                response,
                window,
                prob_op,
                prob,
            } => {
                check_prob("prob", *prob)?;
                let triggers = run.events(trigger)?;
                if triggers.is_empty() {
                    return Ok(true);
                }
                let responses = run.events(response)?;
                let mut followed = 0usize;
                for &t in triggers {
                    // First response strictly after the trigger.
                    let idx = responses.partition_point(|&r| r <= t);
                    if responses.get(idx).is_some_and(|&r| r - t <= *window) {
                        followed += 1;
                    }
                }
                let frac = followed as f64 / triggers.len() as f64;
                Ok(prob_op.apply(frac, *prob))
            }
            Template::StayInStateUntil {
                enter,
                state_signal,
                state_op,
                state_value,
                until_event,
                prob_op,
                prob,
            } => {
                check_prob("prob", *prob)?;
                let enters = run.events(enter)?;
                if enters.is_empty() {
                    return Ok(true);
                }
                let releases = run.events(until_event)?;
                let mut stayed = 0usize;
                for &t in enters {
                    let idx = releases.partition_point(|&r| r <= t);
                    let Some(&release) = releases.get(idx) else {
                        continue; // never released ⇒ did not stay-until
                    };
                    let frac = run
                        .trace()
                        .fraction_of_time(state_signal, t, release, |v| {
                            state_op.apply(v, *state_value)
                        })?;
                    if frac >= 1.0 {
                        stayed += 1;
                    }
                }
                let frac = stayed as f64 / enters.len() as f64;
                Ok(prob_op.apply(frac, *prob))
            }
            Template::ConditionalEventProb {
                event,
                state_signal,
                state_op,
                state_value,
                inner_op,
                inner_prob,
                outer_op,
                outer_prob,
            } => {
                check_prob("inner_prob", *inner_prob)?;
                check_prob("outer_prob", *outer_prob)?;
                let in_state_fraction = run.trace().fraction_of_time(
                    state_signal,
                    run.trace().start_time(),
                    run.trace().end_time().max(run.duration()),
                    |v| state_op.apply(v, *state_value),
                )?;
                if !inner_op.apply(in_state_fraction, *inner_prob) {
                    return Ok(true); // inner guard fails ⇒ vacuous
                }
                let occurrences = run.events(event)?;
                if occurrences.is_empty() {
                    return Ok(true);
                }
                let in_state = occurrences
                    .iter()
                    .filter(|&&t| {
                        run.trace()
                            .value_at(state_signal, t)
                            .map(|v| state_op.apply(v, *state_value))
                            .unwrap_or(false)
                    })
                    .count();
                let frac = in_state as f64 / occurrences.len() as f64;
                Ok(outer_op.apply(frac, *outer_prob))
            }
        }
    }

    /// The template as a plain STL formula, for rows expressible as
    /// pure STL over scalar-valued signals (1, 2, 5 and 7).
    ///
    /// The returned AST is exactly what [`crate::parser::parse`]
    /// produces for the template's [`Display`](fmt::Display) rendering,
    /// so templates and the text syntax stay interchangeable. Rows with
    /// an inner per-execution probability (3, 4, 6, 8, 9) have no plain
    /// STL equivalent and return `None`.
    pub fn to_stl(&self) -> Option<Stl> {
        match self {
            Template::MetricThreshold {
                metric,
                op,
                threshold,
            } => Some(Stl::Atom(Predicate::new(metric.clone(), *op, *threshold))),
            Template::MetricBetween { metric, lo, hi } => Some(Stl::and(
                Stl::lt(metric.clone(), *hi),
                Stl::gt(metric.clone(), *lo),
            )),
            Template::MetricImplication {
                metric_a,
                op_a,
                a,
                metric_b,
                op_b,
                b,
            } => Some(Stl::implies(
                Stl::Atom(Predicate::new(metric_a.clone(), *op_a, *a)),
                Stl::Atom(Predicate::new(metric_b.clone(), *op_b, *b)),
            )),
            Template::LatencyImplication {
                latency_a,
                op_a,
                a,
                latency_b,
                op_b,
                b,
            } => Some(Stl::implies(
                Stl::Atom(Predicate::new(latency_a.clone(), *op_a, *a)),
                Stl::Atom(Predicate::new(latency_b.clone(), *op_b, *b)),
            )),
            _ => None,
        }
    }

    /// Table 1 row number of this template (1–9).
    pub fn row(&self) -> u8 {
        match self {
            Template::MetricThreshold { .. } => 1,
            Template::MetricBetween { .. } => 2,
            Template::TimeInState { .. } => 3,
            Template::AvgCyclesPerEvent { .. } => 4,
            Template::MetricImplication { .. } => 5,
            Template::EventWithinWindow { .. } => 6,
            Template::LatencyImplication { .. } => 7,
            Template::StayInStateUntil { .. } => 8,
            Template::ConditionalEventProb { .. } => 9,
        }
    }
}

fn check_prob(name: &'static str, p: f64) -> Result<()> {
    if (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        Err(StlError::InvalidParameter {
            name,
            expected: "a probability in [0, 1]",
        })
    }
}

impl fmt::Display for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Template::MetricThreshold {
                metric,
                op,
                threshold,
            } => write!(f, "{metric} {op} {threshold}"),
            Template::MetricBetween { metric, lo, hi } => {
                write!(f, "{hi} > {metric} > {lo}")
            }
            Template::TimeInState {
                signal,
                state_op,
                state_value,
                time_op,
                time_fraction,
            } => write!(
                f,
                "%time[{signal} {state_op} {state_value}] {time_op} {time_fraction}"
            ),
            Template::AvgCyclesPerEvent {
                event,
                op,
                threshold,
            } => write!(f, "avg cycles/{event} {op} {threshold}"),
            Template::MetricImplication {
                metric_a,
                op_a,
                a,
                metric_b,
                op_b,
                b,
            } => write!(f, "{metric_a} {op_a} {a} -> {metric_b} {op_b} {b}"),
            Template::LatencyImplication {
                latency_a,
                op_a,
                a,
                latency_b,
                op_b,
                b,
            } => write!(f, "{latency_a} {op_a} {a} -> {latency_b} {op_b} {b}"),
            Template::EventWithinWindow {
                trigger,
                response,
                window,
                prob_op,
                prob,
            } => write!(
                f,
                "{trigger} -> Prob[{response} within {window}] {prob_op} {prob}"
            ),
            Template::StayInStateUntil {
                enter,
                state_signal,
                until_event,
                prob_op,
                prob,
                ..
            } => write!(
                f,
                "{enter} -> Prob[stay in {state_signal} until {until_event}] {prob_op} {prob}"
            ),
            Template::ConditionalEventProb {
                event,
                state_signal,
                inner_op,
                inner_prob,
                outer_op,
                outer_prob,
                ..
            } => write!(
                f,
                "Prob[{event} when Prob[{state_signal}] {inner_op} {inner_prob}] {outer_op} {outer_prob}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run() -> ExecutionData {
        let mut e = ExecutionData::new(1000);
        e.set_metric("performance", 2.0);
        e.set_metric("power", 15.0);
        e.set_metric("lat_r", 120.0);
        e.set_metric("lat_s", 250.0);
        // misprediction-handling indicator: active on [100, 200).
        e.trace_mut()
            .push_series("mispred", [(0, 0.0), (100, 1.0), (200, 0.0)])
            .unwrap();
        // sprint state active on [300, 600).
        e.trace_mut()
            .push_series("sprint", [(0, 0.0), (300, 1.0), (600, 0.0)])
            .unwrap();
        for t in [50, 400, 450, 800] {
            e.record_event("tlb_miss", t).unwrap();
        }
        for t in [100, 110, 500] {
            e.record_event("error", t).unwrap();
        }
        e.record_event("enter_sprint", 300).unwrap();
        e.record_event("thermal_alert", 550).unwrap();
        e
    }

    #[test]
    fn row1_metric_threshold() {
        let e = run();
        assert!(Template::metric_threshold("performance", CmpOp::Gt, 1.5)
            .evaluate(&e)
            .unwrap());
        assert!(!Template::metric_threshold("performance", CmpOp::Lt, 1.5)
            .evaluate(&e)
            .unwrap());
        assert!(Template::metric_threshold("nope", CmpOp::Gt, 0.0)
            .evaluate(&e)
            .is_err());
    }

    #[test]
    fn row2_between() {
        let e = run();
        assert!(Template::metric_between("performance", 1.0, 3.0)
            .unwrap()
            .evaluate(&e)
            .unwrap());
        assert!(!Template::metric_between("performance", 2.0, 3.0)
            .unwrap()
            .evaluate(&e)
            .unwrap()); // strict bound
        assert!(Template::metric_between("x", 3.0, 1.0).is_err());
    }

    #[test]
    fn row3_time_in_state() {
        let e = run();
        // mispred active 100 cycles of 1000 = 10% < 15%.
        let t = Template::TimeInState {
            signal: "mispred".into(),
            state_op: CmpOp::Ge,
            state_value: 1.0,
            time_op: CmpOp::Lt,
            time_fraction: 0.15,
        };
        assert!(t.evaluate(&e).unwrap());
        let t = Template::TimeInState {
            signal: "mispred".into(),
            state_op: CmpOp::Ge,
            state_value: 1.0,
            time_op: CmpOp::Lt,
            time_fraction: 0.05,
        };
        assert!(!t.evaluate(&e).unwrap());
    }

    #[test]
    fn row4_avg_cycles_per_event() {
        let e = run();
        // 1000 cycles / 4 tlb misses = 250.
        let t = Template::AvgCyclesPerEvent {
            event: "tlb_miss".into(),
            op: CmpOp::Gt,
            threshold: 200.0,
        };
        assert!(t.evaluate(&e).unwrap());
        // No occurrences ⇒ infinite average.
        let t = Template::AvgCyclesPerEvent {
            event: "never".into(),
            op: CmpOp::Gt,
            threshold: 1e12,
        };
        assert!(t.evaluate(&e).unwrap());
        let t = Template::AvgCyclesPerEvent {
            event: "never".into(),
            op: CmpOp::Lt,
            threshold: 1e12,
        };
        assert!(!t.evaluate(&e).unwrap());
    }

    #[test]
    fn row5_metric_implication() {
        let e = run();
        // power > 10 -> performance > 1.5 : antecedent true, consequent true.
        assert!(Template::metric_implication(
            "power",
            CmpOp::Gt,
            10.0,
            "performance",
            CmpOp::Gt,
            1.5
        )
        .evaluate(&e)
        .unwrap());
        // Antecedent false ⇒ vacuously true, consequent metric not needed.
        assert!(
            Template::metric_implication("power", CmpOp::Gt, 100.0, "missing", CmpOp::Gt, 0.0)
                .evaluate(&e)
                .unwrap()
        );
        // Antecedent true, consequent false.
        assert!(!Template::metric_implication(
            "power",
            CmpOp::Gt,
            10.0,
            "performance",
            CmpOp::Gt,
            5.0
        )
        .evaluate(&e)
        .unwrap());
    }

    #[test]
    fn row6_event_within_window() {
        let e = run();
        // error at 100 followed by error at 110 (within 50); error at 110
        // followed at 500? no; error at 500: none after. 1/3 followed.
        let t = Template::EventWithinWindow {
            trigger: "error".into(),
            response: "error".into(),
            window: 50,
            prob_op: CmpOp::Lt,
            prob: 0.5,
        };
        assert!(t.evaluate(&e).unwrap());
        let t = Template::EventWithinWindow {
            trigger: "error".into(),
            response: "error".into(),
            window: 50,
            prob_op: CmpOp::Gt,
            prob: 0.5,
        };
        assert!(!t.evaluate(&e).unwrap());
        // No triggers ⇒ vacuous truth.
        let mut e2 = ExecutionData::new(10);
        e2.record_event("error", 5).unwrap();
        let t = Template::EventWithinWindow {
            trigger: "quiet".into(),
            response: "error".into(),
            window: 1,
            prob_op: CmpOp::Lt,
            prob: 0.0,
        };
        assert!(t.evaluate(&e2).is_err()); // unknown trigger stream
    }

    #[test]
    fn row7_latency_implication() {
        let e = run();
        let t = Template::latency_implication("lat_r", CmpOp::Gt, 100.0, "lat_s", CmpOp::Gt, 200.0);
        assert!(t.evaluate(&e).unwrap());
        assert_eq!(t.row(), 7);
    }

    #[test]
    fn row8_stay_in_state_until() {
        let e = run();
        // Entered sprint at 300; alert at 550; sprint indicator holds on
        // [300, 550] ⇒ stayed. Fraction = 1.0.
        let t = Template::StayInStateUntil {
            enter: "enter_sprint".into(),
            state_signal: "sprint".into(),
            state_op: CmpOp::Ge,
            state_value: 1.0,
            until_event: "thermal_alert".into(),
            prob_op: CmpOp::Ge,
            prob: 0.9,
        };
        assert!(t.evaluate(&e).unwrap());

        // If the alert only comes at 800 (after sprint ends at 600), the
        // obligation is violated.
        let mut e2 = run();
        e2.record_event("late_alert", 800).unwrap();
        let t = Template::StayInStateUntil {
            enter: "enter_sprint".into(),
            state_signal: "sprint".into(),
            state_op: CmpOp::Ge,
            state_value: 1.0,
            until_event: "late_alert".into(),
            prob_op: CmpOp::Ge,
            prob: 0.9,
        };
        assert!(!t.evaluate(&e2).unwrap());
    }

    #[test]
    fn row9_conditional_event_prob() {
        let e = run();
        // Sprint occupies 30% of time. Guard: Prob[state] > 0.2 → active.
        // TLB misses at 400, 450 occur in sprint; 50, 800 do not → 50%.
        let t = Template::ConditionalEventProb {
            event: "tlb_miss".into(),
            state_signal: "sprint".into(),
            state_op: CmpOp::Ge,
            state_value: 1.0,
            inner_op: CmpOp::Gt,
            inner_prob: 0.2,
            outer_op: CmpOp::Lt,
            outer_prob: 0.6,
        };
        assert!(t.evaluate(&e).unwrap());
        // Guard fails (needs > 0.5 of time in sprint) ⇒ vacuously true.
        let t = Template::ConditionalEventProb {
            event: "tlb_miss".into(),
            state_signal: "sprint".into(),
            state_op: CmpOp::Ge,
            state_value: 1.0,
            inner_op: CmpOp::Gt,
            inner_prob: 0.5,
            outer_op: CmpOp::Lt,
            outer_prob: 0.0,
        };
        assert!(t.evaluate(&e).unwrap());
    }

    #[test]
    fn probability_domains_validated() {
        let e = run();
        let t = Template::EventWithinWindow {
            trigger: "error".into(),
            response: "error".into(),
            window: 50,
            prob_op: CmpOp::Lt,
            prob: 1.5,
        };
        assert!(matches!(
            t.evaluate(&e),
            Err(StlError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn rows_and_display() {
        let e = Template::metric_threshold("ipc", CmpOp::Gt, 1.0);
        assert_eq!(e.row(), 1);
        assert_eq!(e.to_string(), "ipc > 1");
        let b = Template::metric_between("ipc", 1.0, 2.0).unwrap();
        assert_eq!(b.row(), 2);
        assert_eq!(b.to_string(), "2 > ipc > 1");
    }

    #[test]
    fn scalar_templates_round_trip_through_the_parser() {
        use crate::parser::parse;
        let templates = [
            Template::metric_threshold("ipc", CmpOp::Ge, 1.25),
            Template::metric_between("runtime", 0.9, 1.1).unwrap(),
            Template::metric_implication("power", CmpOp::Gt, 10.0, "ipc", CmpOp::Gt, 1.5),
            Template::latency_implication("lat_r", CmpOp::Gt, 100.0, "lat_s", CmpOp::Le, 200.0),
        ];
        for t in templates {
            let ast = t.to_stl().expect("scalar row");
            assert_eq!(
                parse(&t.to_string()).unwrap(),
                ast,
                "template `{t}` must parse to its own AST"
            );
            // And the AST's own rendering round-trips too.
            assert_eq!(parse(&ast.to_string()).unwrap(), ast);
        }
    }

    #[test]
    fn probabilistic_templates_have_no_plain_stl_form() {
        let t = Template::AvgCyclesPerEvent {
            event: "tlb_miss".into(),
            op: CmpOp::Gt,
            threshold: 50.0,
        };
        assert!(t.to_stl().is_none());
    }
}
