//! Per-execution data consumed by property templates.
//!
//! One run of a benchmark on a (simulated or real) processor yields three
//! kinds of observations, all of which Table 1 properties need:
//!
//! * **scalar metrics** — runtime, IPC, cache miss rates (one number per
//!   execution),
//! * **signals** — time-stamped values such as power or an in-state
//!   indicator ([`Trace`]),
//! * **events** — streams of timestamps such as "TLB miss at cycle
//!   14 002".

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::trace::Trace;
use crate::{Result, StlError};

/// All observations from one execution.
///
/// # Examples
///
/// ```
/// use spa_stl::execution::ExecutionData;
/// # fn main() -> Result<(), spa_stl::StlError> {
/// let mut e = ExecutionData::new(1_000_000);
/// e.set_metric("runtime_seconds", 1.27);
/// e.record_event("tlb_miss", 500)?;
/// e.record_event("tlb_miss", 900)?;
/// assert_eq!(e.metric("runtime_seconds")?, 1.27);
/// assert_eq!(e.events("tlb_miss")?.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionData {
    duration: u64,
    metrics: BTreeMap<String, f64>,
    events: BTreeMap<String, Vec<u64>>,
    trace: Trace,
}

impl ExecutionData {
    /// Creates an empty execution record of `duration` cycles.
    pub fn new(duration: u64) -> Self {
        Self {
            duration,
            ..Self::default()
        }
    }

    /// Total length of the execution in cycles.
    pub fn duration(&self) -> u64 {
        self.duration
    }

    /// Sets (or overwrites) a scalar metric.
    pub fn set_metric(&mut self, name: &str, value: f64) {
        self.metrics.insert(name.to_owned(), value);
    }

    /// Reads a scalar metric.
    ///
    /// # Errors
    ///
    /// Returns [`StlError::UnknownMetric`] if absent.
    pub fn metric(&self, name: &str) -> Result<f64> {
        self.metrics
            .get(name)
            .copied()
            .ok_or_else(|| StlError::UnknownMetric(name.to_owned()))
    }

    /// Names of all scalar metrics, sorted.
    pub fn metric_names(&self) -> impl Iterator<Item = &str> {
        self.metrics.keys().map(String::as_str)
    }

    /// Appends an event occurrence at `time`.
    ///
    /// # Errors
    ///
    /// Returns [`StlError::NonMonotonicTime`] if `time` precedes the
    /// stream's last recorded occurrence (equal times are allowed: two
    /// events may share a cycle).
    pub fn record_event(&mut self, stream: &str, time: u64) -> Result<()> {
        let times = self.events.entry(stream.to_owned()).or_default();
        if let Some(&last) = times.last() {
            if time < last {
                return Err(StlError::NonMonotonicTime {
                    signal: stream.to_owned(),
                    previous: last,
                    offered: time,
                });
            }
        }
        times.push(time);
        Ok(())
    }

    /// Declares an event stream so that zero occurrences reads as an
    /// empty stream rather than an unknown one.
    pub fn declare_stream(&mut self, stream: &str) {
        self.events.entry(stream.to_owned()).or_default();
    }

    /// Occurrence times of an event stream (ascending).
    ///
    /// # Errors
    ///
    /// Returns [`StlError::UnknownEvent`] if the stream was never
    /// recorded nor declared.
    pub fn events(&self, stream: &str) -> Result<&[u64]> {
        self.events
            .get(stream)
            .map(Vec::as_slice)
            .ok_or_else(|| StlError::UnknownEvent(stream.to_owned()))
    }

    /// Number of occurrences of a stream, 0 if never recorded.
    pub fn event_count(&self, stream: &str) -> usize {
        self.events.get(stream).map_or(0, Vec::len)
    }

    /// Mutable access to the execution's signal trace.
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// The execution's signal trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_round_trip() {
        let mut e = ExecutionData::new(100);
        e.set_metric("ipc", 1.8);
        e.set_metric("ipc", 1.9); // overwrite
        assert_eq!(e.metric("ipc").unwrap(), 1.9);
        assert!(matches!(e.metric("nope"), Err(StlError::UnknownMetric(_))));
        assert_eq!(e.metric_names().collect::<Vec<_>>(), vec!["ipc"]);
        assert_eq!(e.duration(), 100);
    }

    #[test]
    fn events_are_ordered() {
        let mut e = ExecutionData::new(100);
        e.record_event("miss", 10).unwrap();
        e.record_event("miss", 10).unwrap(); // same-cycle duplicates ok
        e.record_event("miss", 20).unwrap();
        assert!(e.record_event("miss", 5).is_err());
        assert_eq!(e.events("miss").unwrap(), &[10, 10, 20]);
        assert_eq!(e.event_count("miss"), 3);
        assert_eq!(e.event_count("other"), 0);
        assert!(e.events("other").is_err());
    }

    #[test]
    fn declared_streams_read_as_empty() {
        let mut e = ExecutionData::new(10);
        e.declare_stream("quiet");
        assert_eq!(e.events("quiet").unwrap(), &[] as &[u64]);
        assert_eq!(e.event_count("quiet"), 0);
        assert!(e.events("undeclared").is_err());
    }

    #[test]
    fn trace_access() {
        let mut e = ExecutionData::new(100);
        e.trace_mut().push("power", 0, 3.0).unwrap();
        assert_eq!(e.trace().value_at("power", 50).unwrap(), 3.0);
    }
}
