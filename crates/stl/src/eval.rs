//! Boolean and quantitative (robustness) semantics for STL formulas.
//!
//! Signals are piecewise-constant, so the truth value of an atomic
//! predicate only changes at sample times. Temporal operators therefore
//! inspect the window's start instant plus every sample time inside the
//! window — for formulas whose temporal operators are not nested this is
//! exact; for nested temporal formulas it is the standard discrete-time
//! approximation at trace granularity (every instant the simulator
//! actually reported).

use crate::ast::{Interval, Stl};
use crate::trace::Trace;
use crate::Result;

/// Boolean satisfaction `(trace, t) ⊨ formula`.
///
/// # Errors
///
/// Returns an error if the formula mentions a signal the trace does not
/// define, or asks about an instant before the signal's first sample.
///
/// # Examples
///
/// ```
/// use spa_stl::{eval::satisfies, parser::parse, trace::Trace};
/// # fn main() -> Result<(), spa_stl::StlError> {
/// let mut t = Trace::new();
/// t.push_series("x", [(0, 1.0), (10, 9.0)])?;
/// let f = parse("F[0,10] x > 5")?;
/// assert!(satisfies(&f, &t, 0)?);
/// let g = parse("G[0,10] x > 5")?;
/// assert!(!satisfies(&g, &t, 0)?);
/// # Ok(())
/// # }
/// ```
pub fn satisfies(formula: &Stl, trace: &Trace, t: u64) -> Result<bool> {
    match formula {
        Stl::True => Ok(true),
        Stl::False => Ok(false),
        Stl::Atom(p) => Ok(p.op.apply(trace.value_at(&p.signal, t)?, p.threshold)),
        Stl::Not(a) => Ok(!satisfies(a, trace, t)?),
        Stl::And(a, b) => Ok(satisfies(a, trace, t)? && satisfies(b, trace, t)?),
        Stl::Or(a, b) => Ok(satisfies(a, trace, t)? || satisfies(b, trace, t)?),
        Stl::Implies(a, b) => Ok(!satisfies(a, trace, t)? || satisfies(b, trace, t)?),
        Stl::Globally(i, a) => {
            for u in check_times(trace, *i, t) {
                if !satisfies(a, trace, u)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Stl::Eventually(i, a) => {
            for u in check_times(trace, *i, t) {
                if satisfies(a, trace, u)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Stl::WeakUntil(..) | Stl::Release(..) => {
            satisfies(&desugar(formula).expect("derived operator"), trace, t)
        }
        Stl::Until(i, a, b) => {
            // ψ must hold at some u in the window, with φ holding at every
            // inspected instant from t up to (and excluding) u.
            let times = check_times(trace, *i, t);
            // φ must also hold on [t, window-start) for lo > 0.
            let (lo, _) = i.offset(t).clamp_to(trace.end_time().max(t));
            let mut phi_times: Vec<u64> = check_times(trace, Interval::bounded(0, lo - t), t);
            phi_times.extend(&times);
            phi_times.sort_unstable();
            phi_times.dedup();
            for &u in &times {
                if satisfies(b, trace, u)? {
                    let mut ok = true;
                    for &v in phi_times.iter().take_while(|&&v| v < u) {
                        if !satisfies(a, trace, v)? {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        return Ok(true);
                    }
                }
            }
            Ok(false)
        }
    }
}

/// Quantitative robustness `ρ(formula, trace, t)`.
///
/// Positive robustness implies boolean satisfaction; negative implies
/// violation; the magnitude says by how much the nearest signal could be
/// perturbed before the verdict flips (Donzé & Maler semantics).
///
/// # Errors
///
/// Same error conditions as [`satisfies`].
///
/// # Examples
///
/// ```
/// use spa_stl::{eval::robustness, parser::parse, trace::Trace};
/// # fn main() -> Result<(), spa_stl::StlError> {
/// let mut t = Trace::new();
/// t.push("x", 0, 3.0)?;
/// let f = parse("x < 5")?;
/// assert_eq!(robustness(&f, &t, 0)?, 2.0); // 5 − 3
/// # Ok(())
/// # }
/// ```
pub fn robustness(formula: &Stl, trace: &Trace, t: u64) -> Result<f64> {
    use crate::ast::CmpOp;
    match formula {
        Stl::True => Ok(f64::INFINITY),
        Stl::False => Ok(f64::NEG_INFINITY),
        Stl::Atom(p) => {
            let v = trace.value_at(&p.signal, t)?;
            Ok(match p.op {
                CmpOp::Lt | CmpOp::Le => p.threshold - v,
                CmpOp::Gt | CmpOp::Ge => v - p.threshold,
            })
        }
        Stl::Not(a) => Ok(-robustness(a, trace, t)?),
        Stl::And(a, b) => Ok(robustness(a, trace, t)?.min(robustness(b, trace, t)?)),
        Stl::Or(a, b) => Ok(robustness(a, trace, t)?.max(robustness(b, trace, t)?)),
        Stl::Implies(a, b) => Ok((-robustness(a, trace, t)?).max(robustness(b, trace, t)?)),
        Stl::Globally(i, a) => {
            let mut r = f64::INFINITY;
            for u in check_times(trace, *i, t) {
                r = r.min(robustness(a, trace, u)?);
            }
            Ok(r)
        }
        Stl::Eventually(i, a) => {
            let mut r = f64::NEG_INFINITY;
            for u in check_times(trace, *i, t) {
                r = r.max(robustness(a, trace, u)?);
            }
            Ok(r)
        }
        Stl::WeakUntil(..) | Stl::Release(..) => {
            robustness(&desugar(formula).expect("derived operator"), trace, t)
        }
        Stl::Until(i, a, b) => {
            // Mirror the boolean semantics exactly: φ is obliged from the
            // evaluation instant t (not just the window start) until ψ.
            let times = check_times(trace, *i, t);
            let (lo, _) = i.offset(t).clamp_to(trace.end_time().max(t));
            let mut phi_times: Vec<u64> = check_times(trace, Interval::bounded(0, lo - t), t);
            phi_times.extend(&times);
            phi_times.sort_unstable();
            phi_times.dedup();
            let mut best = f64::NEG_INFINITY;
            for &u in &times {
                let mut v = robustness(b, trace, u)?;
                for &w in phi_times.iter().take_while(|&&w| w < u) {
                    v = v.min(robustness(a, trace, w)?);
                }
                best = best.max(v);
            }
            Ok(best)
        }
    }
}

/// Rewrites a derived temporal operator into its core form:
/// `φ W ψ ≡ (φ U ψ) ∨ G φ` and `φ R ψ ≡ ¬(¬φ U ¬ψ)`.
fn desugar(formula: &Stl) -> Option<Stl> {
    match formula {
        Stl::WeakUntil(i, a, b) => Some(Stl::or(
            Stl::until(*i, (**a).clone(), (**b).clone()),
            Stl::globally(*i, (**a).clone()),
        )),
        Stl::Release(i, a, b) => Some(Stl::not(Stl::until(
            *i,
            Stl::not((**a).clone()),
            Stl::not((**b).clone()),
        ))),
        _ => None,
    }
}

/// Instants a temporal operator must inspect: the (offset, clamped)
/// window start plus every sample time inside the window.
fn check_times(trace: &Trace, interval: Interval, t: u64) -> Vec<u64> {
    let shifted = interval.offset(t);
    let (lo, hi) = shifted.clamp_to(trace.end_time().max(t));
    let mut times = trace.event_times(lo, hi);
    if times.first() != Some(&lo) {
        times.insert(0, lo);
    }
    times
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Interval;
    use crate::parser::parse;

    fn trace() -> Trace {
        let mut t = Trace::new();
        // x: 1 on [0,10), 9 on [10,20), 4 from 20 on.
        t.push_series("x", [(0, 1.0), (10, 9.0), (20, 4.0)])
            .unwrap();
        // y: 0 on [0,15), 1 from 15 on.
        t.push_series("y", [(0, 0.0), (15, 1.0)]).unwrap();
        t
    }

    #[test]
    fn atoms() {
        let t = trace();
        assert!(satisfies(&parse("x < 5").unwrap(), &t, 0).unwrap());
        assert!(!satisfies(&parse("x < 5").unwrap(), &t, 10).unwrap());
        assert!(satisfies(&parse("x <= 4").unwrap(), &t, 25).unwrap());
    }

    #[test]
    fn boolean_connectives() {
        let t = trace();
        assert!(satisfies(&parse("x < 5 & y < 1").unwrap(), &t, 0).unwrap());
        assert!(!satisfies(&parse("x < 5 & y >= 1").unwrap(), &t, 0).unwrap());
        assert!(satisfies(&parse("x < 5 | y >= 1").unwrap(), &t, 0).unwrap());
        assert!(satisfies(&parse("!(x > 5)").unwrap(), &t, 0).unwrap());
        // Implication with false antecedent.
        assert!(satisfies(&parse("x > 5 -> y >= 1").unwrap(), &t, 0).unwrap());
        // True antecedent, false consequent.
        assert!(!satisfies(&parse("x < 5 -> y >= 1").unwrap(), &t, 0).unwrap());
    }

    #[test]
    fn globally_and_eventually() {
        let t = trace();
        assert!(satisfies(&parse("G[0,9] x < 5").unwrap(), &t, 0).unwrap());
        assert!(!satisfies(&parse("G[0,10] x < 5").unwrap(), &t, 0).unwrap());
        assert!(satisfies(&parse("F[0,10] x > 5").unwrap(), &t, 0).unwrap());
        assert!(!satisfies(&parse("F[0,9] x > 5").unwrap(), &t, 0).unwrap());
        // Unbounded versions clamp to the trace end.
        assert!(satisfies(&parse("F y >= 1").unwrap(), &t, 0).unwrap());
        assert!(!satisfies(&parse("G y >= 1").unwrap(), &t, 0).unwrap());
    }

    #[test]
    fn evaluation_offset() {
        let t = trace();
        // From t = 20, x never exceeds 5 again.
        assert!(!satisfies(&parse("F[0,100] x > 5").unwrap(), &t, 20).unwrap());
        assert!(satisfies(&parse("G[0,100] x <= 4").unwrap(), &t, 20).unwrap());
    }

    #[test]
    fn until_semantics() {
        let t = trace();
        // x stays below 10 until y rises (y rises at 15, x < 10 throughout).
        assert!(satisfies(&parse("(x < 10) U (y >= 1)").unwrap(), &t, 0).unwrap());
        // x < 5 fails at 10 before y rises at 15.
        assert!(!satisfies(&parse("(x < 5) U (y >= 1)").unwrap(), &t, 0).unwrap());
        // ψ never happens in a short window.
        assert!(!satisfies(&parse("(x < 10) U[0,5] (y >= 1)").unwrap(), &t, 0).unwrap());
        // ψ already true at the start ⇒ until holds trivially.
        assert!(satisfies(&parse("(x > 100) U (y <= 0)").unwrap(), &t, 0).unwrap());
    }

    #[test]
    fn robustness_signs_agree_with_boolean() {
        let t = trace();
        for src in [
            "x < 5",
            "x > 5",
            "G[0,9] x < 5",
            "F[0,10] x > 5",
            "x < 5 & y < 1",
            "x > 5 -> y >= 0.5",
            "(x < 10) U (y >= 0.5)",
        ] {
            // Note: atoms with zero margin (e.g. `y >= 1` exactly when
            // y == 1) have robustness 0, which is indeterminate by STL
            // convention; the formulas above all have nonzero margins.
            let f = parse(src).unwrap();
            let sat = satisfies(&f, &t, 0).unwrap();
            let rob = robustness(&f, &t, 0).unwrap();
            assert_eq!(
                sat,
                rob > 0.0,
                "boolean/robustness disagreement for `{src}`: sat={sat} rob={rob}"
            );
        }
    }

    #[test]
    fn robustness_magnitudes() {
        let t = trace();
        let f = parse("x < 5").unwrap();
        assert_eq!(robustness(&f, &t, 0).unwrap(), 4.0);
        assert_eq!(robustness(&f, &t, 10).unwrap(), -4.0);
        // G over the whole trace: min margin of x < 10 is 10-9 = 1.
        let g = parse("G x < 10").unwrap();
        assert_eq!(robustness(&g, &t, 0).unwrap(), 1.0);
        // Constants.
        assert_eq!(robustness(&Stl::True, &t, 0).unwrap(), f64::INFINITY);
        assert_eq!(robustness(&Stl::False, &t, 0).unwrap(), f64::NEG_INFINITY);
    }

    #[test]
    fn unknown_signal_propagates() {
        let t = trace();
        assert!(satisfies(&parse("z < 5").unwrap(), &t, 0).is_err());
        assert!(robustness(&parse("G z < 5").unwrap(), &t, 0).is_err());
    }

    #[test]
    fn check_times_includes_window_start() {
        let t = trace();
        // Window [3, 12]: samples at 10; start 3 must be inspected too.
        let times = check_times(&t, Interval::bounded(3, 12), 0);
        assert_eq!(times, vec![3, 10]);
        // Offset shifts the window.
        let times = check_times(&t, Interval::bounded(0, 5), 10);
        assert_eq!(times, vec![10, 15]);
    }

    #[test]
    fn weak_until_and_release_semantics() {
        let t = trace();
        // x < 5 W y >= 1: x < 5 fails at 10 before y rises, and x < 5
        // does not hold globally either -> false (like strong until).
        assert!(!satisfies(&parse("(x < 5) W (y >= 1)").unwrap(), &t, 0).unwrap());
        // x < 100 W y >= 5: y never reaches 5, but x < 100 holds
        // globally -> true where strong until is false.
        assert!(!satisfies(&parse("(x < 100) U (y >= 5)").unwrap(), &t, 0).unwrap());
        assert!(satisfies(&parse("(x < 100) W (y >= 5)").unwrap(), &t, 0).unwrap());
        // Release: y >= 5 never "releases", so x < 100 must (and does)
        // hold forever; x < 5 does not.
        assert!(satisfies(&parse("(y >= 5) R (x < 100)").unwrap(), &t, 0).unwrap());
        assert!(!satisfies(&parse("(y >= 5) R (x < 5)").unwrap(), &t, 0).unwrap());
        // Robustness agrees in sign for a comfortable margin case.
        let f = parse("(y >= 5) R (x < 100)").unwrap();
        assert!(robustness(&f, &t, 0).unwrap() > 0.0);
    }

    #[test]
    fn empty_trace_errors_on_atoms_but_not_constants() {
        let t = Trace::new();
        // Any signal reference is an unknown-signal error…
        assert!(matches!(
            satisfies(&parse("x > 0").unwrap(), &t, 0),
            Err(crate::StlError::UnknownSignal(_))
        ));
        // …even under a temporal operator, because the clamped window
        // still inspects its start instant.
        assert!(satisfies(&parse("G[0,10] x > 0").unwrap(), &t, 0).is_err());
        assert!(robustness(&parse("F x > 0").unwrap(), &t, 0).is_err());
        // Signal-free formulas evaluate fine over an empty trace.
        assert!(satisfies(&Stl::globally(Interval::unbounded(), Stl::True), &t, 0).unwrap());
        assert_eq!(robustness(&Stl::True, &t, 0).unwrap(), f64::INFINITY);
    }

    #[test]
    fn single_sample_trace_extends_piecewise_constant() {
        let mut t = Trace::new();
        t.push("x", 0, 3.0).unwrap();
        // The lone sample's value holds at every later instant…
        assert!(satisfies(&parse("x < 5").unwrap(), &t, 0).unwrap());
        assert!(satisfies(&parse("x < 5").unwrap(), &t, 1_000_000).unwrap());
        assert_eq!(robustness(&parse("x < 5").unwrap(), &t, 500).unwrap(), 2.0);
        // …so temporal windows far past end_time() (= 0 here) still
        // evaluate, clamped to the single defined instant.
        assert!(satisfies(&parse("G[0,1000] x < 5").unwrap(), &t, 0).unwrap());
        assert!(!satisfies(&parse("F[0,1000] x > 5").unwrap(), &t, 0).unwrap());
        // An instant before the first sample is an empty window.
        let mut late = Trace::new();
        late.push("x", 10, 3.0).unwrap();
        assert!(matches!(
            satisfies(&parse("x < 5").unwrap(), &late, 5),
            Err(crate::StlError::EmptyWindow { .. })
        ));
    }

    #[test]
    fn interval_bounds_past_end_of_trace_clamp() {
        let t = trace(); // end_time() = 20, x holds 4 from 20 on.
                         // Window [50,100] lies entirely past the trace end; it clamps to
                         // the single instant 50, where x's held value is 4.
        assert!(satisfies(&parse("G[50,100] x < 5").unwrap(), &t, 0).unwrap());
        assert!(!satisfies(&parse("F[50,100] x > 5").unwrap(), &t, 0).unwrap());
        assert_eq!(
            robustness(&parse("G[50,100] x < 5").unwrap(), &t, 0).unwrap(),
            1.0
        );
        // A window straddling the end clamps its upper bound: only the
        // samples up to end_time() plus the window start are inspected.
        assert_eq!(check_times(&t, Interval::bounded(15, 100), 0), vec![15, 20]);
        assert!(satisfies(&parse("F[15,100] x <= 4").unwrap(), &t, 0).unwrap());
    }

    #[test]
    fn paper_row8_sprinting_example() {
        // "if we enter sprinting state, probability of staying there until
        //  thermal alert" — the per-execution STL check:
        //  sprint >= 1 -> (sprint >= 1 U alert >= 1)
        let mut t = Trace::new();
        t.push_series("sprint", [(0, 1.0), (40, 0.0)]).unwrap();
        t.push_series("alert", [(0, 0.0), (30, 1.0)]).unwrap();
        let f = parse("sprint >= 1 -> ((sprint >= 1) U (alert >= 1))").unwrap();
        assert!(satisfies(&f, &t, 0).unwrap());

        // Variant where sprinting ends before the alert: violated.
        let mut t2 = Trace::new();
        t2.push_series("sprint", [(0, 1.0), (20, 0.0)]).unwrap();
        t2.push_series("alert", [(0, 0.0), (30, 1.0)]).unwrap();
        assert!(!satisfies(&f, &t2, 0).unwrap());
    }
}
