//! Recursive-descent parser for the STL text syntax.
//!
//! Grammar, loosest-binding first:
//!
//! ```text
//! formula  := until ('->' formula)?          (implication, right-assoc)
//! until    := or (('U'|'W'|'R') interval? or)?
//! or       := and (('|' | '||') and)*
//! and      := unary (('&' | '&&') unary)*
//! unary    := '!' unary
//!           | 'G' interval? unary
//!           | 'F' interval? unary
//!           | primary
//! primary  := '(' formula ')' | 'true' | 'false' | comparison
//! comparison := operand cmp operand (cmp operand)?   (chained, as in `5 > x > 2`)
//! operand  := ident | number
//! interval := '[' number ',' (number | 'inf' | 'end') ']'
//! ```
//!
//! Exactly one side of a comparison must be a signal name; chained
//! comparisons (`A > metric > B`, Table 1 row 2) require the middle
//! operand to be the signal.

use crate::ast::{CmpOp, Interval, Predicate, Stl};
use crate::lexer::{tokenize, Token, TokenKind};
use crate::{Result, StlError};

/// Parses an STL formula from text.
///
/// # Errors
///
/// Returns [`StlError::Parse`] with the byte span of the offending
/// token and a message on any lexical or syntactic problem.
///
/// # Examples
///
/// ```
/// use spa_stl::parser::parse;
/// let f = parse("G[0,100] (power < 5 -> F[0,10] temp < 80)")?;
/// assert_eq!(f.signals(), vec!["power", "temp"]);
/// # Ok::<(), spa_stl::StlError>(())
/// ```
pub fn parse(src: &str) -> Result<Stl> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, idx: 0 };
    let formula = p.formula()?;
    p.expect(&TokenKind::Eof, "end of input")?;
    Ok(formula)
}

struct Parser {
    tokens: Vec<Token>,
    idx: usize,
}

/// One side of a comparison before we know which is the signal.
enum Operand {
    Signal(String),
    Constant(f64),
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.idx].kind
    }

    fn pos(&self) -> usize {
        self.tokens[self.idx].pos
    }

    fn len(&self) -> usize {
        self.tokens[self.idx].len
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.idx].kind.clone();
        if self.idx + 1 < self.tokens.len() {
            self.idx += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.error(format!("expected {what}")))
        }
    }

    fn error(&self, message: String) -> StlError {
        Self::error_at(self.pos(), self.len(), message)
    }

    fn error_at(position: usize, len: usize, message: String) -> StlError {
        StlError::Parse {
            position,
            len,
            message,
        }
    }

    fn formula(&mut self) -> Result<Stl> {
        let lhs = self.until()?;
        if self.eat(&TokenKind::Implies) {
            let rhs = self.formula()?; // right-associative
            Ok(Stl::implies(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn until(&mut self) -> Result<Stl> {
        let lhs = self.or()?;
        for (token, build) in [
            (TokenKind::Until, Stl::until as fn(_, _, _) -> Stl),
            (TokenKind::WeakUntil, Stl::weak_until as fn(_, _, _) -> Stl),
            (TokenKind::Release, Stl::release as fn(_, _, _) -> Stl),
        ] {
            if self.eat(&token) {
                let interval = self.optional_interval()?;
                let rhs = self.or()?;
                return Ok(build(interval, lhs, rhs));
            }
        }
        Ok(lhs)
    }

    fn or(&mut self) -> Result<Stl> {
        let mut lhs = self.and()?;
        while self.eat(&TokenKind::Or) {
            let rhs = self.and()?;
            lhs = Stl::or(lhs, rhs);
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Stl> {
        let mut lhs = self.unary()?;
        while self.eat(&TokenKind::And) {
            let rhs = self.unary()?;
            lhs = Stl::and(lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Stl> {
        match self.peek() {
            TokenKind::Not => {
                self.advance();
                Ok(Stl::not(self.unary()?))
            }
            TokenKind::Globally => {
                self.advance();
                let interval = self.optional_interval()?;
                Ok(Stl::globally(interval, self.unary()?))
            }
            TokenKind::Eventually => {
                self.advance();
                let interval = self.optional_interval()?;
                Ok(Stl::eventually(interval, self.unary()?))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Stl> {
        match self.peek().clone() {
            TokenKind::LParen => {
                self.advance();
                let inner = self.formula()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(inner)
            }
            TokenKind::Ident(name) if name == "true" => {
                self.advance();
                Ok(Stl::True)
            }
            TokenKind::Ident(name) if name == "false" => {
                self.advance();
                Ok(Stl::False)
            }
            TokenKind::Ident(_) | TokenKind::Number(_) => self.comparison(),
            _ => Err(self.error("expected a formula".into())),
        }
    }

    fn comparison(&mut self) -> Result<Stl> {
        let first = self.operand()?;
        let op1 = self.cmp_op()?;
        let second = self.operand()?;

        // Optional chained comparison: `A > metric > B`.
        let chain = matches!(
            self.peek(),
            TokenKind::Lt | TokenKind::Le | TokenKind::Gt | TokenKind::Ge
        );
        if chain {
            let op2 = self.cmp_op()?;
            let third = self.operand()?;
            let (lo_c, sig, hi_c) = match (first, second, third) {
                (Operand::Constant(a), Operand::Signal(s), Operand::Constant(b)) => (a, s, b),
                _ => {
                    return Err(self.error(
                        "chained comparison must be `constant op signal op constant`".into(),
                    ))
                }
            };
            let left = Stl::Atom(Predicate::new(sig.clone(), op1.flipped(), lo_c));
            let right = Stl::Atom(Predicate::new(sig, op2, hi_c));
            return Ok(Stl::and(left, right));
        }

        match (first, second) {
            (Operand::Signal(s), Operand::Constant(c)) => Ok(Stl::Atom(Predicate::new(s, op1, c))),
            (Operand::Constant(c), Operand::Signal(s)) => {
                Ok(Stl::Atom(Predicate::new(s, op1.flipped(), c)))
            }
            (Operand::Signal(_), Operand::Signal(_)) => {
                Err(self.error("comparison between two signals is not supported".into()))
            }
            (Operand::Constant(_), Operand::Constant(_)) => {
                Err(self.error("comparison between two constants".into()))
            }
        }
    }

    fn operand(&mut self) -> Result<Operand> {
        let (pos, len) = (self.pos(), self.len());
        match self.advance() {
            TokenKind::Ident(name) => Ok(Operand::Signal(name)),
            TokenKind::Number(v) => Ok(Operand::Constant(v)),
            _ => Err(Self::error_at(
                pos,
                len,
                "expected a signal name or number".into(),
            )),
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp> {
        let op = match self.peek() {
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            _ => return Err(self.error("expected a comparison operator".into())),
        };
        self.advance();
        Ok(op)
    }

    /// Parses `[lo, hi]` where `hi` may be `inf` or `end` (both mean
    /// "to the end of the trace"); absent interval means unbounded
    /// `[0, inf)`.
    fn optional_interval(&mut self) -> Result<Interval> {
        if !self.eat(&TokenKind::LBracket) {
            return Ok(Interval::unbounded());
        }
        let lo = self.time_bound()?;
        self.expect(&TokenKind::Comma, "`,`")?;
        let hi = match self.peek().clone() {
            TokenKind::Ident(w) if w == "inf" || w == "end" => {
                self.advance();
                None
            }
            _ => Some(self.time_bound()?),
        };
        self.expect(&TokenKind::RBracket, "`]`")?;
        if let Some(h) = hi {
            if h < lo {
                return Err(self.error(format!("interval [{lo},{h}] has hi < lo")));
            }
        }
        Ok(Interval { lo, hi })
    }

    fn time_bound(&mut self) -> Result<u64> {
        let (pos, len) = (self.pos(), self.len());
        match self.advance() {
            TokenKind::Number(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Ok(v as u64)
            }
            TokenKind::Number(v) => Err(Self::error_at(
                pos,
                len,
                format!("interval bound {v} must be a non-negative integer number of cycles"),
            )),
            _ => Err(Self::error_at(
                pos,
                len,
                "expected an interval bound".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Interval, Stl};

    #[test]
    fn parses_atoms_both_ways() {
        assert_eq!(parse("power < 5").unwrap(), Stl::lt("power", 5.0));
        assert_eq!(parse("5 > power").unwrap(), Stl::lt("power", 5.0));
        assert_eq!(parse("x >= 2.5").unwrap(), Stl::ge("x", 2.5));
        assert_eq!(parse("2.5 <= x").unwrap(), Stl::ge("x", 2.5));
    }

    #[test]
    fn parses_chained_comparison() {
        // Table 1 row 2: A > metric > B.
        let f = parse("5 > x > 2").unwrap();
        assert_eq!(f, Stl::and(Stl::lt("x", 5.0), Stl::gt("x", 2.0)));
    }

    #[test]
    fn rejects_bad_comparisons() {
        assert!(parse("a < b").is_err());
        assert!(parse("1 < 2").is_err());
        assert!(parse("1 < a < b").is_err());
        assert!(parse("a < 1 < 2").is_err());
    }

    #[test]
    fn parses_boolean_structure() {
        let f = parse("a < 1 & b > 2 | !c <= 3").unwrap();
        // `&` binds tighter than `|`; `!` applies to the comparison.
        assert_eq!(
            f,
            Stl::or(
                Stl::and(Stl::lt("a", 1.0), Stl::gt("b", 2.0)),
                Stl::not(Stl::le("c", 3.0))
            )
        );
    }

    #[test]
    fn implication_is_right_associative() {
        let f = parse("a < 1 -> b < 2 -> c < 3").unwrap();
        assert_eq!(
            f,
            Stl::implies(
                Stl::lt("a", 1.0),
                Stl::implies(Stl::lt("b", 2.0), Stl::lt("c", 3.0))
            )
        );
    }

    #[test]
    fn parses_temporal_operators() {
        let f = parse("G[0,100] power < 5").unwrap();
        assert_eq!(
            f,
            Stl::globally(Interval::bounded(0, 100), Stl::lt("power", 5.0))
        );
        let f = parse("F temp > 80").unwrap();
        assert_eq!(
            f,
            Stl::eventually(Interval::unbounded(), Stl::gt("temp", 80.0))
        );
        let f = parse("(a < 1) U[2,8] (b > 2)").unwrap();
        assert_eq!(
            f,
            Stl::until(
                Interval::bounded(2, 8),
                Stl::lt("a", 1.0),
                Stl::gt("b", 2.0)
            )
        );
    }

    #[test]
    fn parses_inf_interval() {
        let f = parse("G[5,inf] x < 1").unwrap();
        assert_eq!(
            f,
            Stl::globally(Interval { lo: 5, hi: None }, Stl::lt("x", 1.0))
        );
    }

    #[test]
    fn end_is_a_synonym_for_inf() {
        // `G[0,end] φ` reads "over the whole trace": evaluation clamps
        // the unbounded interval to the trace's end time.
        assert_eq!(
            parse("G[0,end] (ipc > 0.8)").unwrap(),
            parse("G[0,inf] (ipc > 0.8)").unwrap()
        );
        // Only as an interval bound — elsewhere `end` is a signal name.
        assert_eq!(parse("end > 1").unwrap(), Stl::gt("end", 1.0));
    }

    #[test]
    fn errors_carry_the_offending_token_span() {
        // A bad interval bound is reported under the bound itself
        // (`1.5` at byte 2, three bytes long), and trailing garbage
        // under the trailing token.
        match parse("G[1.5,2] x < 1") {
            Err(StlError::Parse { position, len, .. }) => {
                assert_eq!(position, 2);
                assert_eq!(len, 3);
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        match parse("a < 1 b") {
            Err(StlError::Parse { position, len, .. }) => {
                assert_eq!(position, 6);
                assert_eq!(len, 1);
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_intervals() {
        assert!(parse("G[5,2] x < 1").is_err());
        assert!(parse("G[1.5,2] x < 1").is_err());
        assert!(parse("G[-1,2] x < 1").is_err());
        assert!(parse("G[1 2] x < 1").is_err());
        assert!(parse("G[1,2 x < 1").is_err());
    }

    #[test]
    fn parses_constants() {
        assert_eq!(parse("true").unwrap(), Stl::True);
        assert_eq!(parse("false").unwrap(), Stl::False);
        assert_eq!(
            parse("true & false").unwrap(),
            Stl::and(Stl::True, Stl::False)
        );
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("a < 1 b").is_err());
        assert!(parse("").is_err());
        assert!(parse("(a < 1").is_err());
    }

    #[test]
    fn display_round_trips() {
        let sources = [
            "power < 5",
            "G[0,100] (power < 5)",
            "(a < 1) -> (F[0,10] (b > 2))",
            "((a < 1) & (b > 2)) | (!(c <= 3))",
            "(a < 1) U[2,8] (b >= 2)",
            "G[5,inf] (x < 1)",
        ];
        for src in sources {
            let f = parse(src).unwrap();
            let rendered = f.to_string();
            let reparsed = parse(&rendered).unwrap();
            assert_eq!(f, reparsed, "round-trip failed for `{src}` → `{rendered}`");
        }
    }

    #[test]
    fn paper_style_properties() {
        // The examples from Table 1 that map to plain STL.
        assert!(parse("performance > 1.5").is_ok()); // row 1
        assert!(parse("3 > performance > 1").is_ok()); // row 2
        assert!(parse("power > 10 -> performance > 2").is_ok()); // row 5
        assert!(parse("service_r > 100 -> service_s > 200").is_ok()); // row 7
    }
}
