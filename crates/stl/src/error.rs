use std::fmt;

/// Error type for STL parsing and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum StlError {
    /// The formula text could not be tokenized or parsed.
    Parse {
        /// Byte offset of the problem in the input.
        position: usize,
        /// Byte length of the offending token (0 at end of input), so
        /// renderers can place a caret span under the exact lexeme.
        len: usize,
        /// What went wrong.
        message: String,
    },
    /// A formula refers to a signal the trace does not define.
    UnknownSignal(String),
    /// A formula refers to an event stream the execution does not define.
    UnknownEvent(String),
    /// A formula refers to a scalar metric the execution does not define.
    UnknownMetric(String),
    /// Samples for a signal were pushed with non-increasing timestamps.
    NonMonotonicTime {
        /// The signal involved.
        signal: String,
        /// The timestamp of the previous sample.
        previous: u64,
        /// The rejected timestamp.
        offered: u64,
    },
    /// The trace is empty over the interval the formula asks about.
    EmptyWindow {
        /// The signal involved.
        signal: String,
    },
    /// A template parameter lies outside its domain (e.g. a probability
    /// threshold outside `[0, 1]`).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the accepted domain.
        expected: &'static str,
    },
}

impl fmt::Display for StlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StlError::Parse {
                position, message, ..
            } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            StlError::UnknownSignal(s) => write!(f, "unknown signal `{s}`"),
            StlError::UnknownEvent(e) => write!(f, "unknown event stream `{e}`"),
            StlError::UnknownMetric(m) => write!(f, "unknown metric `{m}`"),
            StlError::NonMonotonicTime {
                signal,
                previous,
                offered,
            } => write!(
                f,
                "non-monotonic sample time for `{signal}`: {offered} after {previous}"
            ),
            StlError::EmptyWindow { signal } => {
                write!(f, "no samples for `{signal}` in the evaluation window")
            }
            StlError::InvalidParameter { name, expected } => {
                write!(
                    f,
                    "invalid template parameter `{name}`; expected {expected}"
                )
            }
        }
    }
}

impl std::error::Error for StlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StlError::Parse {
            position: 7,
            len: 1,
            message: "expected `]`".into(),
        };
        assert!(e.to_string().contains("byte 7"));
        assert!(StlError::UnknownSignal("ipc".into())
            .to_string()
            .contains("ipc"));
        assert!(StlError::NonMonotonicTime {
            signal: "p".into(),
            previous: 5,
            offered: 3
        }
        .to_string()
        .contains("3 after 5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StlError>();
    }
}
