#![warn(missing_docs)]

//! Signal temporal logic (STL) for the SPA framework.
//!
//! The SPA paper (§3.3) expresses processor properties in STL so that
//! "SMC will never misunderstand a property": every formula parses into an
//! unambiguous tree with well-defined semantics. This crate provides
//!
//! * a [`Trace`](trace::Trace) type for piecewise-constant multi-signal
//!   executions (what a simulator or hardware counter dump produces),
//! * the STL abstract syntax tree ([`ast::Stl`]) with boolean *and*
//!   quantitative (robustness) semantics ([`eval`]),
//! * a text [`parser`] (`G[0,100] (power < 5 -> F[0,10] temp < 80)`), and
//! * typed builders for the nine property templates of the paper's
//!   Table 1 ([`templates`]), each of which evaluates to a single boolean
//!   per execution — exactly the `φ(σ)` that the SMC engine consumes.
//!
//! # Example
//!
//! ```
//! use spa_stl::parser::parse;
//! use spa_stl::trace::Trace;
//!
//! # fn main() -> Result<(), spa_stl::StlError> {
//! let formula = parse("G[0,10] power < 5.0")?;
//! let mut trace = Trace::new();
//! trace.push("power", 0, 3.0)?;
//! trace.push("power", 6, 4.5)?;
//! assert!(formula.satisfied_by(&trace)?);
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod eval;
pub mod execution;
pub mod parser;
pub mod templates;
pub mod trace;

mod error;
mod lexer;

pub use error::StlError;

/// Convenience alias used by fallible functions in this crate.
pub type Result<T> = std::result::Result<T, StlError>;
