//! Tokenizer for the STL text syntax.

use crate::{Result, StlError};

/// A lexical token with its byte span in the source.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Token {
    pub kind: TokenKind,
    /// Byte offset of the token's first character.
    pub pos: usize,
    /// Byte length of the token's lexeme (0 for [`TokenKind::Eof`]).
    pub len: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum TokenKind {
    /// Identifier: a signal name or the keywords `true` / `false` /
    /// `inf` / `end` (identified contextually).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Not,
    Implies,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    /// `G` (globally / always)
    Globally,
    /// `F` (eventually / finally)
    Eventually,
    /// `U` (until)
    Until,
    /// `W` (weak until)
    WeakUntil,
    /// `R` (release)
    Release,
    Eof,
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.'
}

/// Tokenizes `src` into a vector ending in [`TokenKind::Eof`].
pub(crate) fn tokenize(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut push = |kind: TokenKind, pos: usize, len: usize| {
        tokens.push(Token { kind, pos, len });
    };
    while i < bytes.len() {
        let c = bytes[i] as char;
        let pos = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '(' => {
                push(TokenKind::LParen, pos, 1);
                i += 1;
            }
            ')' => {
                push(TokenKind::RParen, pos, 1);
                i += 1;
            }
            '[' => {
                push(TokenKind::LBracket, pos, 1);
                i += 1;
            }
            ']' => {
                push(TokenKind::RBracket, pos, 1);
                i += 1;
            }
            ',' => {
                push(TokenKind::Comma, pos, 1);
                i += 1;
            }
            '!' => {
                push(TokenKind::Not, pos, 1);
                i += 1;
            }
            '&' => {
                let len = if bytes.get(i + 1) == Some(&b'&') {
                    2
                } else {
                    1
                };
                push(TokenKind::And, pos, len);
                i += len;
            }
            '|' => {
                let len = if bytes.get(i + 1) == Some(&b'|') {
                    2
                } else {
                    1
                };
                push(TokenKind::Or, pos, len);
                i += len;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(TokenKind::Le, pos, 2);
                    i += 2;
                } else {
                    push(TokenKind::Lt, pos, 1);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(TokenKind::Ge, pos, 2);
                    i += 2;
                } else {
                    push(TokenKind::Gt, pos, 1);
                    i += 1;
                }
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    push(TokenKind::Implies, pos, 2);
                    i += 2;
                } else if bytes
                    .get(i + 1)
                    .is_some_and(|&b| (b as char).is_ascii_digit() || b == b'.')
                {
                    // Negative number literal.
                    let (num, next) = lex_number(src, i)?;
                    push(TokenKind::Number(num), pos, next - pos);
                    i = next;
                } else {
                    return Err(StlError::Parse {
                        position: pos,
                        len: 1,
                        message: "stray `-` (expected `->` or a number)".into(),
                    });
                }
            }
            c if c.is_ascii_digit() || c == '.' => {
                let (num, next) = lex_number(src, i)?;
                push(TokenKind::Number(num), pos, next - pos);
                i = next;
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < bytes.len() && is_ident_continue(bytes[i] as char) {
                    i += 1;
                }
                let word = &src[start..i];
                let kind = match word {
                    // Single-letter temporal operators only count as
                    // operators when written as bare capitals.
                    "G" => TokenKind::Globally,
                    "F" => TokenKind::Eventually,
                    "U" => TokenKind::Until,
                    "W" => TokenKind::WeakUntil,
                    "R" => TokenKind::Release,
                    _ => TokenKind::Ident(word.to_owned()),
                };
                push(kind, pos, i - start);
            }
            other => {
                return Err(StlError::Parse {
                    position: pos,
                    len: 1,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        pos: src.len(),
        len: 0,
    });
    Ok(tokens)
}

fn lex_number(src: &str, start: usize) -> Result<(f64, usize)> {
    let bytes = src.as_bytes();
    let mut i = start;
    if bytes[i] == b'-' {
        i += 1;
    }
    let mut seen_dot = false;
    let mut seen_exp = false;
    while i < bytes.len() {
        match bytes[i] {
            b'0'..=b'9' => i += 1,
            b'.' if !seen_dot && !seen_exp => {
                seen_dot = true;
                i += 1;
            }
            b'e' | b'E' if !seen_exp => {
                seen_exp = true;
                i += 1;
                if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    src[start..i]
        .parse::<f64>()
        .map(|v| (v, i))
        .map_err(|_| StlError::Parse {
            position: start,
            len: i - start,
            message: format!("malformed number `{}`", &src[start..i]),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            kinds("< <= > >= & && | || ! ->"),
            vec![
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::And,
                TokenKind::And,
                TokenKind::Or,
                TokenKind::Or,
                TokenKind::Not,
                TokenKind::Implies,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_temporal_and_idents() {
        assert_eq!(
            kinds("G F U W R Gx power l1.miss"),
            vec![
                TokenKind::Globally,
                TokenKind::Eventually,
                TokenKind::Until,
                TokenKind::WeakUntil,
                TokenKind::Release,
                TokenKind::Ident("Gx".into()),
                TokenKind::Ident("power".into()),
                TokenKind::Ident("l1.miss".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("1 2.5 -3 1e3 2.5e-2 .5"),
            vec![
                TokenKind::Number(1.0),
                TokenKind::Number(2.5),
                TokenKind::Number(-3.0),
                TokenKind::Number(1000.0),
                TokenKind::Number(0.025),
                TokenKind::Number(0.5),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_interval_syntax() {
        assert_eq!(
            kinds("[0,10]"),
            vec![
                TokenKind::LBracket,
                TokenKind::Number(0.0),
                TokenKind::Comma,
                TokenKind::Number(10.0),
                TokenKind::RBracket,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("power @ 5").is_err());
        assert!(tokenize("a - b").is_err());
    }

    #[test]
    fn positions_are_byte_offsets() {
        let toks = tokenize("ab <= 5").unwrap();
        assert_eq!(toks[0].pos, 0);
        assert_eq!(toks[1].pos, 3);
        assert_eq!(toks[2].pos, 6);
    }

    #[test]
    fn lengths_span_the_lexeme() {
        let toks = tokenize("power <= 2.5e-2 -> (x)").unwrap();
        let spans: Vec<(usize, usize)> = toks.iter().map(|t| (t.pos, t.len)).collect();
        assert_eq!(
            spans,
            vec![
                (0, 5),  // power
                (6, 2),  // <=
                (9, 6),  // 2.5e-2
                (16, 2), // ->
                (19, 1), // (
                (20, 1), // x
                (21, 1), // )
                (22, 0), // Eof
            ]
        );
    }

    #[test]
    fn lexical_errors_carry_spans() {
        match tokenize("power @ 5") {
            Err(StlError::Parse { position, len, .. }) => {
                assert_eq!(position, 6);
                assert_eq!(len, 1);
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
